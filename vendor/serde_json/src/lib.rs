//! Offline stand-in for `serde_json`, built on the vendored `serde` value
//! model: renders [`serde::Value`] trees to JSON text and parses JSON text
//! back.
//!
//! Covers the API surface the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`from_value`] and the
//! re-exported [`Value`]. Numbers keep integer precision (`i64`/`u64`)
//! through a round trip; floats use Rust's shortest round-trippable `{}`
//! formatting.

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// A serialization or parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Renders a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Renders a value as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    v: &Value,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("cannot represent {x} in JSON")));
            }
            let text = x.to_string();
            out.push_str(&text);
            // Keep the float/integer distinction through a round trip.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(indent, level + 1, out);
                write_value(item, indent, level + 1, out)?;
            }
            if !items.is_empty() {
                write_sep(indent, level, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(indent, level + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, level + 1, out)?;
            }
            if !entries.is_empty() {
                write_sep(indent, level, out);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_sep(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid unicode escape".into()))?,
                            );
                            // parse_hex4 leaves pos past the digits; undo the
                            // generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(Error("invalid escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let text =
                        std::str::from_utf8(rest).map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = text.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated unicode escape".into()))?;
        let text =
            std::str::from_utf8(digits).map_err(|_| Error("invalid unicode escape".into()))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| Error("invalid unicode escape".into()))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let value = Value::Object(vec![
            ("name".into(), Value::Str("annulus(6,3)".into())),
            ("rounds".into(), Value::Int(42)),
            ("big".into(), Value::UInt(u64::MAX)),
            ("ratio".into(), Value::Float(1.5)),
            ("whole".into(), Value::Float(2.0)),
            ("ok".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
            (
                "phases".into(),
                Value::Array(vec![Value::Int(1), Value::Int(-2)]),
            ),
            ("escaped".into(), Value::Str("line\n\"quote\"\t\\".into())),
        ]);
        let compact = to_string(&value).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, value);
        let pretty = to_string_pretty(&value).unwrap();
        let parsed_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed_pretty, value);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn unicode_escapes_parse() {
        let parsed: String = from_str(r#""aA😀b""#).unwrap();
        assert_eq!(parsed, "aA\u{1F600}b");
    }

    #[test]
    fn typed_round_trip() {
        let data: Vec<(String, Vec<u64>)> = vec![("a".into(), vec![1, 2, 3]), ("b".into(), vec![])];
        let text = to_string(&data).unwrap();
        let back: Vec<(String, Vec<u64>)> = from_str(&text).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
