//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored value-tree `serde` without `syn`/`quote` (neither is available
//! offline): the item is parsed with a small hand-rolled token walker that
//! understands exactly the shapes this workspace derives on —
//!
//! * structs with named fields (optionally generic over type parameters),
//! * tuple structs (newtype and multi-field),
//! * unit structs,
//! * enums with unit, tuple and struct variants (discriminants allowed).
//!
//! Field and variant attributes (`#[default]`, doc comments, …) are skipped.
//! Exactly one `#[serde(...)]` customization is supported: `#[serde(skip)]`
//! on a named field, which omits the field from serialization and fills it
//! with `Default::default()` on deserialization — out-of-band instrumentation
//! (e.g. wall-clock profiles) rides along on serialized reports without
//! changing their wire bytes. Any other `#[serde(...)]` content is a
//! compile-time panic, never a silent misbehavior.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    /// Type-parameter identifiers (bounds in the definition are not
    /// supported — none of the workspace's derived types use them).
    generics: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// One named field: its identifier and whether `#[serde(skip)]` marked it.
#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Derives the vendored `serde::Serialize` (value-tree form).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize` (value-tree form).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_group(t: Option<&TokenTree>, d: Delimiter) -> bool {
    matches!(t, Some(TokenTree::Group(g)) if g.delimiter() == d)
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Advances past leading `#[...]` attributes.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while is_punct(toks.get(*i), '#') && is_group(toks.get(*i + 1), Delimiter::Bracket) {
        *i += 2;
    }
}

/// Advances past leading `#[...]` attributes, returning whether one of them
/// was `#[serde(skip)]`. Any other `#[serde(...)]` content panics — the
/// derive supports exactly this one customization.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while is_punct(toks.get(*i), '#') && is_group(toks.get(*i + 1), Delimiter::Bracket) {
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            skip |= attr_is_serde_skip(g);
        }
        *i += 2;
    }
    skip
}

/// Whether a `#[...]` bracket group's content is exactly `serde(skip)`.
fn attr_is_serde_skip(attr: &Group) -> bool {
    let toks: Vec<TokenTree> = attr.stream().into_iter().collect();
    let is_serde = matches!(toks.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return false;
    }
    let Some(TokenTree::Group(args)) = toks.get(1) else {
        panic!("#[serde] attribute without arguments is unsupported");
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    match args.as_slice() {
        [TokenTree::Ident(id)] if id.to_string() == "skip" => true,
        _ => panic!("only #[serde(skip)] is supported by the vendored derive"),
    }
}

/// Advances past `pub`, `pub(crate)`, `pub(in ...)` visibility.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if is_group(toks.get(*i), Delimiter::Parenthesis) {
            *i += 1;
        }
    }
}

/// Parses `<A, B, ...>` after the type name, collecting type-parameter
/// identifiers (lifetimes and const params are rejected — unused here).
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !is_punct(toks.get(*i), '<') {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut expect_param = true;
    while depth > 0 {
        let t = toks.get(*i).expect("unbalanced generics in derive input");
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
            TokenTree::Ident(id) if depth == 1 && expect_param => {
                params.push(id.to_string());
                expect_param = false;
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

/// Counts top-level comma-separated items in a token stream (tuple fields).
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut fields = 0usize;
    let mut in_field = false;
    for t in ts {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => in_field = false,
            _ => {
                if !in_field {
                    fields += 1;
                    in_field = true;
                }
            }
        }
    }
    fields
}

/// Parses `name: Type, ...` named fields, honoring `#[serde(skip)]` and
/// skipping visibility and the (ignored) type tokens.
fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0usize;
    let mut fields = Vec::new();
    while i < toks.len() {
        let skip = take_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let Some(t) = toks.get(i) else { break };
        let name = ident_of(t).expect("expected field name in derive input");
        i += 1;
        assert!(
            is_punct(toks.get(i), ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type up to the next top-level comma. Bracketed/parenthesized
        // types are single Group tokens; only `<`/`>` need depth tracking.
        let mut depth = 0usize;
        while let Some(t) = toks.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(Field { name, skip });
    }
    fields
}

/// Parses enum variants: `Name`, `Name(T, ...)`, `Name { f: T, ... }`,
/// optionally with a `= discriminant`.
fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0usize;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let Some(t) = toks.get(i) else { break };
        let name = ident_of(t).expect("expected variant name in derive input");
        i += 1;
        let fields = if let Some(TokenTree::Group(g)) = toks.get(i) {
            let fields = match g.delimiter() {
                Delimiter::Parenthesis => VariantFields::Tuple(count_tuple_fields(g.stream())),
                Delimiter::Brace => VariantFields::Named(parse_named_fields(g.stream())),
                other => panic!("unexpected {other:?} group in variant `{name}`"),
            };
            i += 1;
            fields
        } else {
            VariantFields::Unit
        };
        if is_punct(toks.get(i), '=') {
            // Skip the discriminant expression up to the next comma.
            while i < toks.len() && !is_punct(toks.get(i), ',') {
                i += 1;
            }
        }
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw =
        ident_of(toks.get(i).expect("empty derive input")).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_of(toks.get(i).expect("missing type name")).expect("expected type name");
    i += 1;
    let generics = parse_generics(&toks, &mut i);
    let kind = match (kw.as_str(), toks.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("struct", _) => Kind::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Enum(parse_variants(g.stream()))
        }
        _ => panic!("derive supports only structs and enums, got `{kw}`"),
    };
    Input {
        name,
        generics,
        kind,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<M: Bound> Trait for Name<M>` header pieces.
fn impl_header(item: &Input, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", item.name, item.generics.join(", ")),
        )
    }
}

fn gen_serialize(item: &Input) -> String {
    let (impl_generics, ty) = impl_header(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Array(::std::vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vname}({binders}) => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),",
                                binders = binders.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let kept: Vec<&str> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| f.name.as_str())
                                .collect();
                            let entries: Vec<String> = kept
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            // `..` absorbs any skipped fields (and is legal
                            // even when none are).
                            format!(
                                "{name}::{vname} {{ {fields} .. }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(::std::vec![{entries}]))]),",
                                fields = kept
                                    .iter()
                                    .map(|f| format!("{f}, "))
                                    .collect::<String>(),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl{impl_generics} ::serde::Serialize for {ty} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Input) -> String {
    let (impl_generics, ty) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default()", f.name)
                    } else {
                        let f = &f.name;
                        format!("{f}: ::serde::__field(__entries, \"{name}\", \"{f}\")?")
                    }
                })
                .collect();
            format!(
                "let __entries = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", \"{name}\", __v))?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().filter(|a| a.len() == {n}).ok_or_else(|| \
                 ::serde::DeError::expected(\"array of {n}\", \"{name}\", __v))?; \
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&__items[{k}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ let __items = __inner.as_array()\
                                 .filter(|a| a.len() == {n}).ok_or_else(|| \
                                 ::serde::DeError::expected(\"array of {n}\", \
                                 \"{name}::{vname}\", __inner))?; \
                                 ::std::result::Result::Ok({name}::{vname}({})) }}",
                                items.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    if f.skip {
                                        format!("{}: ::std::default::Default::default()", f.name)
                                    } else {
                                        let f = &f.name;
                                        format!(
                                            "{f}: ::serde::__field(__fields, \
                                             \"{name}::{vname}\", \"{f}\")?"
                                        )
                                    }
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ let __fields = __inner.as_object()\
                                 .ok_or_else(|| ::serde::DeError::expected(\"object\", \
                                 \"{name}::{vname}\", __inner))?; \
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ \
                   {unit_arms} \
                   __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                     \"unknown variant `{{}}` of {name}\", __other))), \
                 }}, \
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{ \
                   let (__tag, __inner) = &__entries[0]; \
                   match __tag.as_str() {{ \
                     {data_arms} \
                     __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                       \"unknown variant `{{}}` of {name}\", __other))), \
                   }} \
                 }}, \
                 __other => ::std::result::Result::Err(::serde::DeError::expected(\
                   \"variant string or single-entry object\", \"{name}\", __other)), \
                 }}",
                unit_arms = unit_arms.join(" "),
                data_arms = data_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl{impl_generics} ::serde::Deserialize for {ty} {{ \
         #[allow(unused_variables)] \
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}
