//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework under the familiar names:
//! [`Serialize`]/[`Deserialize`] traits, `#[derive(Serialize, Deserialize)]`
//! macros (from the sibling `serde_derive` stub), and an in-memory
//! [`Value`] tree that `serde_json` (also vendored) renders to and parses
//! from JSON text.
//!
//! Differences from real serde, by design:
//!
//! * Serialization goes through the [`Value`] tree rather than a streaming
//!   `Serializer`/`Deserializer` pair — simpler, and fast enough for the
//!   report/table payloads this workspace produces.
//! * Maps serialize as arrays of `[key, value]` pairs, so non-string keys
//!   (e.g. `HashMap<Point, _>`) round-trip losslessly.
//! * Enums use externally-tagged form: unit variants as `"Name"`, data
//!   variants as `{"Name": ...}` — the same shape real serde produces.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

/// An in-memory serialization tree (the JSON data model, with integers kept
/// exact).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A signed integer (all integers that fit in `i64`).
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved so struct output is stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A "expected X while deserializing Y, found Z" error.
    pub fn expected(what: &str, context: &str, found: &Value) -> DeError {
        DeError(format!(
            "expected {what} while deserializing {context}, found {}",
            found.kind()
        ))
    }

    /// A missing-field error.
    pub fn missing_field(context: &str, field: &str) -> DeError {
        DeError(format!("missing field `{field}` of {context}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// The value tree of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Support function used by derived `Deserialize` impls: extracts and
/// deserializes one named field of an object.
pub fn __field<T: Deserialize>(
    entries: &[(String, Value)],
    context: &str,
    name: &str,
) -> Result<T, DeError> {
    let v = entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::missing_field(context, name))?;
    T::from_value(v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(DeError::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u128;
                if wide <= i64::MAX as u128 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(DeError::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", "char", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// `&'static str` deserializes by leaking the parsed string. This exists so
/// that derived impls on structs with `&'static str` fields (algorithm names)
/// compile and round-trip; the leak is a few bytes per report, acceptable for
/// the analysis payloads this workspace handles.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<&'static str, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::expected("string", "&str", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

fn seq_to_value<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    Value::Array(items.map(Serialize::to_value).collect())
}

fn seq_from_value<T: Deserialize>(v: &Value, context: &str) -> Result<Vec<T>, DeError> {
    v.as_array()
        .ok_or_else(|| DeError::expected("array", context, v))?
        .iter()
        .map(T::from_value)
        .collect()
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        seq_from_value(v, "Vec")
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<VecDeque<T>, DeError> {
        Ok(seq_from_value(v, "VecDeque")?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items: Vec<T> = seq_from_value(v, "array")?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<BTreeSet<T>, DeError> {
        Ok(seq_from_value(v, "BTreeSet")?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<HashSet<T>, DeError> {
        Ok(seq_from_value(v, "HashSet")?.into_iter().collect())
    }
}

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Array(
        entries
            .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

fn map_from_value<K: Deserialize, V: Deserialize>(
    v: &Value,
    context: &str,
) -> Result<Vec<(K, V)>, DeError> {
    v.as_array()
        .ok_or_else(|| DeError::expected("array of pairs", context, v))?
        .iter()
        .map(|pair| {
            let items = pair
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| DeError::expected("[key, value] pair", context, pair))?;
            Ok((K::from_value(&items[0])?, V::from_value(&items[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<HashMap<K, V>, DeError> {
        Ok(map_from_value(v, "HashMap")?.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, DeError> {
        Ok(map_from_value(v, "BTreeMap")?.into_iter().collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                let items = v
                    .as_array()
                    .filter(|a| a.len() == LEN)
                    .ok_or_else(|| DeError::expected("tuple array", "tuple", v))?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok(String::from("hi")));
        assert_eq!(u64::from_value(&u64::MAX.to_value()), Ok(u64::MAX));
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn composite_round_trips() {
        let v: Vec<(u32, bool)> = vec![(1, true), (2, false)];
        assert_eq!(Vec::<(u32, bool)>::from_value(&v.to_value()), Ok(v));
        let arr = [true, false, true];
        assert_eq!(<[bool; 3]>::from_value(&arr.to_value()), Ok(arr));
        let mut map = HashMap::new();
        map.insert((1i32, 2i32), "x".to_string());
        assert_eq!(
            HashMap::<(i32, i32), String>::from_value(&map.to_value()),
            Ok(map)
        );
        let none: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&none.to_value()), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Some(3u8).to_value()), Ok(Some(3)));
    }
}
