//! Offline stand-in for `proptest`.
//!
//! Provides the subset of proptest's API this workspace uses — the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, integer-range and
//! tuple strategies, [`any`], [`Just`], `proptest::collection::vec`, the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]/
//! [`prop_oneof!`] macros and [`ProptestConfig::with_cases`] — on top of a
//! deterministic per-test RNG (seeded from the test's name, so failures
//! reproduce across runs).
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics with
//! the generated inputs' debug representation unavailable, so tests should
//! include context in their assertion messages (the workspace's tests do).

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};
use std::ops::Range;

/// The deterministic RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from an arbitrary string (the test name), so each
    /// test gets its own reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut seed = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform index below `bound` (which must be nonzero).
    pub fn index(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound)
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Test-runner configuration (subset of proptest's).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator (subset of proptest's `Strategy`; no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-weighted type-erased strategies (the
/// expansion of [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.index(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
}

/// Full-range values of a primitive type (subset of proptest's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors whose length is drawn from `len` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.index(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Rejects the current case (it does not count towards the case budget)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// block runs `cases` times with fresh generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    // `#[test]` is captured as one of the `$meta` attributes and re-emitted
    // on the generated zero-argument wrapper.
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest `{}`: too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name),
                            accepted,
                            config.cases
                        );
                    }
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "proptest `{}` failed on case {}: {}",
                                stringify!($name),
                                accepted + 1,
                                message
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let x = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let (a, b) = ((-5i32..5), (0u8..3)).generate(&mut rng);
            assert!((-5..5).contains(&a));
            assert!(b < 3);
        }
    }

    #[test]
    fn oneof_and_collection_work() {
        let mut rng = TestRng::deterministic("oneof");
        let strategy = prop_oneof![
            (0u32..10).prop_map(|x| x * 2),
            (100u32..110).prop_map(|x| x + 1),
        ];
        let mut low = false;
        let mut high = false;
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            if v < 20 {
                low = true;
            } else {
                high = true;
            }
        }
        assert!(low && high, "both branches of the union must be exercised");
        let vecs = crate::collection::vec(0u8..3, 1..5).generate(&mut rng);
        assert!((1..5).contains(&vecs.len()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs(x in 0u64..1000, (a, b) in (0u8..10, 0u8..10)) {
            prop_assume!(x != 999);
            prop_assert!(x < 1000);
            prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16);
            prop_assert_ne!(x, 1000);
        }
    }
}
