//! Offline stand-in for `criterion`.
//!
//! Benches keep their upstream-criterion shape (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `bench_with_input`, `b.iter(..)`)
//! but run on a tiny wall-clock harness: each benchmark executes a warmup
//! iteration plus `sample_size` timed iterations (capped so `cargo bench`
//! stays quick) and prints min/median timings. There is no statistical
//! analysis, no HTML report, and no saved baselines — regressions are read
//! off the printed medians.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Maximum timed iterations per benchmark, regardless of `sample_size`.
const MAX_SAMPLES: usize = 15;

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A named benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations (capped internally).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for upstream compatibility; the stub ignores the target
    /// measurement time and always runs a fixed number of iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.sample_size.min(MAX_SAMPLES),
        };
        f(&mut bencher, input);
        bencher.report(&id.0);
        self
    }

    /// Runs a benchmark without an input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.sample_size.min(MAX_SAMPLES),
        };
        f(&mut bencher);
        bencher.report(&id.to_string());
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Runs `f` once as warmup and `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.budget {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.samples.sort();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        println!(
            "{id:<40} min {:>12.3?}   median {:>12.3?}   ({} samples)",
            min,
            median,
            self.samples.len()
        );
    }
}

/// Declares a bench group function, upstream-compatible.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, upstream-compatible (requires
/// `harness = false` on the `[[bench]]` target).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass flags like `--bench`; the stub
            // has no options, so they are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(1));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, n| {
            b.iter(|| {
                runs += 1;
                n + 1
            })
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(runs, 4, "one warmup + three samples");
    }
}
