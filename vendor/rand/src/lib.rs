//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the *small* part of `rand`'s API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! half-open integer ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but with the same contract the
//! workspace relies on: high-quality, deterministic output for a given seed.

use std::ops::Range;

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core source of randomness (subset of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from a half-open integer range. Panics on an empty
    /// range, like upstream.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        // 53 random bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integer types uniformly sampleable from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// A uniform sample from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is negligible for the span sizes used here
                // (all far below 2^64).
                let offset = (rng.next_u64() as u128 % span) as i128;
                (range.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the upstream `StdRng` stream, but the workspace only requires
    /// determinism-given-seed, which this provides.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl StdRng {
        /// The generator's internal state words, for external persistence.
        ///
        /// Upstream `rand` has no such accessor; this vendored stand-in
        /// exposes one so the workspace can snapshot a mid-stream generator
        /// and later resume the *identical* stream via [`StdRng::from_state`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words captured by
        /// [`StdRng::state`]. The restored generator continues the exact
        /// output stream of the captured one.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_round_trip_resumes_the_identical_stream() {
        let mut original = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            original.next_u64();
        }
        let mut resumed = StdRng::from_state(original.state());
        for _ in 0..100 {
            assert_eq!(original.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is almost surely nontrivial"
        );
    }
}
