//! Umbrella crate re-exporting the programmable-matter workspace.
//!
//! This workspace reproduces *"Efficient Deterministic Leader Election for
//! Programmable Matter"* (Dufoulon, Kutten, Moses Jr., PODC 2021). The crates
//! are:
//!
//! * [`grid`] (`pm-grid`) — triangular-grid geometry, shapes, boundaries,
//!   v-nodes, erosion predicates and metric toolkit.
//! * [`amoebot`] (`pm-amoebot`) — the amoebot particle-system simulator:
//!   particles, atomic activations, schedulers, shape generators and an ASCII
//!   renderer.
//! * [`leader_election`] (`pm-core`) — the paper's algorithms: DLE, Collect
//!   (OMP/PRP/SDP), the Outer-Boundary Detection primitive, and the composed
//!   pipeline.
//! * [`baselines`] (`pm-baselines`) — the comparison algorithms of Table 1.
//! * [`analysis`] (`pm-analysis`) — experiment harness regenerating the
//!   paper's table and the scaling figures.
//!
//! # Quickstart
//!
//! ```
//! use programmable_matter::amoebot::generators::hexagon;
//! use programmable_matter::amoebot::scheduler::RoundRobin;
//! use programmable_matter::leader_election::pipeline::{ElectionConfig, elect_leader};
//!
//! let shape = hexagon(4);
//! let outcome = elect_leader(&shape, &ElectionConfig::default(), &mut RoundRobin::default())
//!     .expect("election succeeds on a connected shape");
//! assert!(outcome.leader.is_some());
//! assert!(outcome.final_shape_connected);
//! ```

pub use pm_amoebot as amoebot;
pub use pm_analysis as analysis;
pub use pm_baselines as baselines;
pub use pm_core as leader_election;
pub use pm_grid as grid;
