//! Compares the paper's algorithm against the Table 1 baselines on a single
//! shape with holes — a one-shot, human-readable version of experiment T1.
//!
//! Run with `cargo run --example baseline_comparison [radius]`.

use programmable_matter::amoebot::scheduler::RoundRobin;
use programmable_matter::analysis::ShapeStats;
use programmable_matter::baselines::{
    run_erosion_le, run_quadratic_boundary, run_randomized_boundary, BaselineError,
};
use programmable_matter::grid::builder::swiss_cheese;
use programmable_matter::leader_election::pipeline::{elect_leader, ElectionConfig};

fn main() {
    let radius = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6u32);
    let shape = swiss_cheese(radius, 3);
    let stats = ShapeStats::compute(&shape);
    println!(
        "Swiss-cheese hexagon: n = {}, holes = {}, D_A = {}, L_out + D = {}\n",
        stats.n,
        stats.holes,
        stats.d_a,
        stats.lout_plus_d()
    );

    let with_knowledge = elect_leader(
        &shape,
        &ElectionConfig::with_boundary_knowledge(),
        &mut RoundRobin,
    )
    .expect("election succeeds");
    let without = elect_leader(&shape, &ElectionConfig::default(), &mut RoundRobin)
        .expect("election succeeds");
    println!(
        "this paper, O(D_A) variant      : {:>6} rounds (unique leader: {})",
        with_knowledge.total_rounds,
        with_knowledge.predicate_holds()
    );
    println!(
        "this paper, O(L_out+D) variant  : {:>6} rounds (unique leader: {})",
        without.total_rounds,
        without.predicate_holds()
    );

    match run_erosion_le(&shape, RoundRobin) {
        Ok(o) => println!("erosion baseline [22]           : {:>6} rounds", o.rounds),
        Err(BaselineError::Stuck { after_rounds }) => println!(
            "erosion baseline [22]           :  stuck after {after_rounds} rounds (cannot handle holes)"
        ),
        Err(e) => println!("erosion baseline [22]           :  error: {e}"),
    }
    let randomized = run_randomized_boundary(&shape, 7).expect("runs");
    println!(
        "randomized boundary [10]        : {:>6} rounds (randomized)",
        randomized.rounds
    );
    let quadratic = run_quadratic_boundary(&shape).expect("runs");
    println!(
        "quadratic boundary [3]          : {:>6} rounds ({} leaders)",
        quadratic.rounds, quadratic.leaders
    );
}
