//! Walkthrough of disconnection and reconnection (Figures 1–4): run DLE on a
//! thin annulus until the system disconnects, inspect the breadcrumb trail
//! (Lemma 19), then run Algorithm Collect phase by phase.
//!
//! Run with `cargo run --example collect_walkthrough`.

use programmable_matter::amoebot::ascii::render_shape;
use programmable_matter::amoebot::scheduler::SeededRandom;
use programmable_matter::grid::builder::annulus;
use programmable_matter::grid::Shape;
use programmable_matter::leader_election::collect::CollectSimulator;
use programmable_matter::leader_election::dle::run_dle;

fn main() {
    // A thin annulus: DLE's inward march leaves a sparse, disconnected
    // breadcrumb trail behind.
    let shape = annulus(8, 7);
    println!("Initial thin annulus ({} particles):", shape.len());
    println!("{}", render_shape(&shape));

    let dle = run_dle(&shape, SeededRandom::new(0), true).expect("DLE terminates");
    println!(
        "DLE finished in {} rounds; unique leader at {:?}; system ever disconnected: {}; \
         final configuration connected: {:?}",
        dle.stats.rounds,
        dle.leader_point,
        dle.stats.ever_disconnected,
        dle.stats.final_connected
    );
    let after_dle = Shape::from_points(dle.final_positions.iter().copied());
    println!("\nConfiguration after DLE (note the gaps — the breadcrumb trail):");
    println!("{}", render_shape(&after_dle));

    // Lemma 19: one particle at every grid distance up to eps_G(l).
    let l = dle.leader_point;
    let eps = dle
        .final_positions
        .iter()
        .map(|p| l.grid_distance(*p))
        .max()
        .unwrap();
    println!("Breadcrumbs: eps_G(l) = {eps}; particles per distance from the leader:");
    for d in 0..=eps {
        let count = dle
            .final_positions
            .iter()
            .filter(|p| l.grid_distance(**p) == d)
            .count();
        println!("  distance {d:>2}: {count} particle(s)");
    }

    // Algorithm Collect: phases of the rotating stem.
    let mut sim = CollectSimulator::new(l, &dle.final_positions);
    assert!(sim.has_breadcrumbs());
    let outcome = sim.run();
    println!("\nCollect phases (stem doubles each phase, Corollary 22):");
    for phase in &outcome.phases {
        println!(
            "  phase {}: stem {:>3} -> {:>3}, collected {:>3} particles, {:>4} rounds",
            phase.index, phase.stem_start, phase.stem_end, phase.newly_collected, phase.rounds
        );
    }
    println!(
        "Collect finished in {} rounds; final configuration connected: {}",
        outcome.rounds, outcome.final_connected
    );
    println!("\nFinal configuration (stem east of the leader, branches behind it):");
    println!("{}", render_shape(&outcome.final_shape()));
}
