//! Quickstart: elect a leader on a shape with a hole and reconnect the
//! system.
//!
//! Run with `cargo run --example quickstart`.

use programmable_matter::amoebot::ascii::render_shape;
use programmable_matter::amoebot::scheduler::RoundRobin;
use programmable_matter::grid::builder::annulus;
use programmable_matter::leader_election::pipeline::{elect_leader, ElectionConfig};

fn main() {
    // An annulus: a shape with a hole. Previous deterministic leader-election
    // algorithms either assume hole-free shapes or pay Omega(n^2) rounds;
    // the paper's algorithm is linear in the diameter.
    let shape = annulus(6, 3);
    println!("Initial configuration ({} particles, 1 hole):", shape.len());
    println!("{}", render_shape(&shape));

    // Full pipeline: OBD (outer-boundary detection), DLE (disconnecting
    // leader election), Collect (reconnection).
    let outcome = elect_leader(&shape, &ElectionConfig::default(), &mut RoundRobin)
        .expect("a connected shape always elects a leader");

    let (obd, dle, collect) = outcome.phase_rounds();
    println!("Leader elected at {:?}", outcome.leader.unwrap());
    println!("Rounds: OBD = {obd}, DLE = {dle}, Collect = {collect}, total = {}", outcome.total_rounds);
    println!(
        "Unique leader: {}, final configuration connected: {}",
        outcome.dle.predicate_holds(),
        outcome.final_shape_connected
    );

    println!("\nFinal configuration (stem and branches around the leader):");
    println!("{}", render_shape(&outcome.final_shape()));
}
