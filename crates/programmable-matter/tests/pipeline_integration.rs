//! Cross-crate integration tests: generators → OBD → DLE → Collect →
//! verification, plus the relative ordering of the paper's algorithm and the
//! baselines — all through the unified `Election`/`LeaderElection` API.

use programmable_matter::amoebot::scheduler::{
    DoubleActivation, ReverseRoundRobin, RoundRobin, SeededRandom,
};
use programmable_matter::analysis::ShapeStats;
use programmable_matter::baselines::{QuadraticBoundary, RandomizedBoundary};
use programmable_matter::grid::Shape;
use programmable_matter::leader_election::api::phase;
use programmable_matter::leader_election::obd::run_obd;
use programmable_matter::scenarios::generators::{self, random_blob, random_holey_hexagon};
use programmable_matter::Election;

/// A representative mix of workloads spanning every structural class.
fn workload_mix() -> Vec<(String, Shape)> {
    vec![
        ("hexagon(5)".into(), generators::hexagon(5)),
        ("annulus(6,3)".into(), generators::annulus(6, 3)),
        ("thin-annulus(7,6)".into(), generators::annulus(7, 6)),
        ("swiss(6)".into(), generators::swiss_cheese(6, 3)),
        ("comb(5,5)".into(), generators::comb(5, 5)),
        ("spiral(80)".into(), generators::spiral(80)),
        ("dumbbell(3,12)".into(), generators::dumbbell(3, 12)),
        ("blob(150)".into(), random_blob(150, 3)),
        ("holey(6)".into(), random_holey_hexagon(6, 0.1, 5)),
        ("line(25)".into(), generators::line(25)),
    ]
}

#[test]
fn full_pipeline_elects_unique_leader_and_reconnects_on_all_workloads() {
    for (label, shape) in workload_mix() {
        let n = shape.len();
        let report = Election::on(&shape)
            .scheduler(RoundRobin)
            .run()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(report.predicate_holds(), "{label}: predicate violated");
        assert!(report.rounds_consistent(), "{label}: inconsistent report");
        assert_eq!(report.final_positions.len(), n, "{label}: particle lost");
        assert!(
            report.final_shape().is_connected(),
            "{label}: not reconnected"
        );
    }
}

#[test]
fn pipeline_is_robust_to_the_scheduler() {
    let shape = generators::annulus(6, 3);
    let reference = Election::on(&shape).scheduler(RoundRobin).run().unwrap();
    assert!(reference.predicate_holds());
    for report in [
        Election::on(&shape)
            .scheduler(ReverseRoundRobin)
            .run()
            .unwrap(),
        Election::on(&shape)
            .scheduler(SeededRandom::new(99))
            .run()
            .unwrap(),
        Election::on(&shape)
            .scheduler(DoubleActivation)
            .run()
            .unwrap(),
    ] {
        assert!(report.predicate_holds());
        // The elected leader may differ, but the predicate and particle count
        // must not.
        assert_eq!(report.final_positions.len(), shape.len());
    }
}

#[test]
fn obd_flags_match_dle_input_assumption() {
    // The OBD primitive must compute exactly the outer[0..5] flags that the
    // known-boundary variant of DLE assumes as input.
    for seed in 0..3u64 {
        let shape = random_holey_hexagon(6, 0.1, seed);
        let sim = programmable_matter::leader_election::obd::ObdSimulator::new(&shape);
        let outcome = sim.run();
        assert!(outcome.unique_outer());
        assert_eq!(outcome.outer_flags, sim.ground_truth_flags(), "seed {seed}");
    }
}

#[test]
fn paper_beats_quadratic_baseline_and_matches_randomized_asymptotics() {
    // Table 1 ordering on growing hexagons: the paper's deterministic
    // algorithm stays within a constant factor of the randomized one and its
    // advantage over the quadratic deterministic baseline grows with n.
    let mut gaps = Vec::new();
    for radius in [4u32, 8, 12] {
        let shape = generators::hexagon(radius);
        let paper = Election::on(&shape)
            .scheduler(RoundRobin)
            .run()
            .unwrap()
            .total_rounds as f64;
        let quadratic = Election::on(&shape)
            .algorithm(&QuadraticBoundary)
            .run()
            .unwrap()
            .total_rounds as f64;
        let randomized = Election::on(&shape)
            .algorithm(&RandomizedBoundary)
            .run()
            .unwrap()
            .total_rounds as f64;
        gaps.push(quadratic / paper);
        // Same asymptotics as the randomized algorithm: bounded ratio.
        assert!(
            paper < 80.0 * randomized + 1000.0,
            "radius {radius}: paper {paper} vs randomized {randomized}"
        );
    }
    assert!(
        gaps.windows(2).all(|w| w[1] > w[0] * 0.9) && gaps.last().unwrap() > gaps.first().unwrap(),
        "advantage over the quadratic baseline must grow: {gaps:?}"
    );
}

#[test]
fn dle_round_counts_track_area_diameter_not_particle_count() {
    // Two shapes with similar particle counts but very different D_A: the
    // dumbbell (huge diameter) takes many more rounds than the hexagon.
    let hexagon = generators::hexagon(6); // n = 127, D_A = 12
    let dumbbell = generators::dumbbell(3, 60); // n ~ 135, D_A ~ 73
    let hex_stats = ShapeStats::compute(&hexagon);
    let dumb_stats = ShapeStats::compute(&dumbbell);
    assert!(dumb_stats.d_a > 3 * hex_stats.d_a);
    let dle_rounds = |shape: &Shape| {
        Election::on(shape)
            .scheduler(SeededRandom::new(5))
            .assume_boundary_known()
            .skip_reconnection()
            .run()
            .unwrap()
            .phase_rounds(phase::DLE)
    };
    let hex_rounds = dle_rounds(&hexagon);
    let dumb_rounds = dle_rounds(&dumbbell);
    assert!(
        dumb_rounds > hex_rounds,
        "rounds must grow with D_A: hexagon {hex_rounds} vs dumbbell {dumb_rounds}"
    );
}

#[test]
fn obd_rounds_grow_with_boundary_length_not_area() {
    // A thin annulus and a filled hexagon of the same outer radius: similar
    // L_out (+D), so similar OBD rounds despite very different particle
    // counts.
    let filled = generators::hexagon(10);
    let thin = generators::annulus(10, 8);
    let filled_rounds = run_obd(&filled).rounds as f64;
    let thin_rounds = run_obd(&thin).rounds as f64;
    let ratio = filled_rounds / thin_rounds;
    assert!(
        (0.2..=5.0).contains(&ratio),
        "OBD rounds should be comparable ({filled_rounds} vs {thin_rounds})"
    );
}

#[test]
fn single_particle_and_two_particle_systems() {
    for shape in [generators::line(1), generators::line(2)] {
        let report = Election::on(&shape).scheduler(RoundRobin).run().unwrap();
        assert!(report.predicate_holds());
    }
}
