//! `RunReport` must serialize to and from JSON losslessly, so `pm-analysis`
//! tables and future `BENCH_*.json` artifacts can consume reports directly.

use programmable_matter::amoebot::scheduler::SeededRandom;
use programmable_matter::baselines::{
    ErosionLeaderElection, QuadraticBoundary, RandomizedBoundary,
};
use programmable_matter::grid::builder::{annulus, hexagon, line};
use programmable_matter::leader_election::PaperPipeline;
use programmable_matter::{Election, LeaderElection, RunOptions, RunReport};

fn roundtrip(report: &RunReport) -> RunReport {
    let json = serde_json::to_string(report).expect("report serializes");
    serde_json::from_str(&json).expect("report parses back")
}

#[test]
fn pipeline_report_roundtrips_losslessly() {
    // Exercise every field: OBD + DLE + Collect phases, connectivity
    // tracking on, movement counters nonzero.
    let report = Election::on(&annulus(5, 2))
        .scheduler(SeededRandom::new(7))
        .track_connectivity()
        .run()
        .unwrap();
    assert_eq!(roundtrip(&report), report);
}

#[test]
fn reports_of_every_algorithm_roundtrip() {
    let shape = hexagon(4);
    let algorithms: [&dyn LeaderElection; 4] = [
        &PaperPipeline,
        &ErosionLeaderElection,
        &RandomizedBoundary,
        &QuadraticBoundary,
    ];
    for algorithm in algorithms {
        let report = Election::on(&shape)
            .algorithm(algorithm)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", algorithm.name()));
        assert_eq!(
            roundtrip(&report),
            report,
            "lossy round trip for {}",
            algorithm.name()
        );
    }
}

#[test]
fn pretty_and_compact_json_parse_identically() {
    let report = Election::on(&line(9)).run().unwrap();
    let compact = serde_json::to_string(&report).unwrap();
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    assert_ne!(compact, pretty);
    let from_compact: RunReport = serde_json::from_str(&compact).unwrap();
    let from_pretty: RunReport = serde_json::from_str(&pretty).unwrap();
    assert_eq!(from_compact, from_pretty);
    assert_eq!(from_compact, report);
}

#[test]
fn json_shape_is_stable_for_external_consumers() {
    // pm-analysis and future bench artifacts read these fields by name; the
    // test pins the top-level schema.
    let report = Election::on(&hexagon(3)).run().unwrap();
    let json = serde_json::to_string(&report).unwrap();
    for field in [
        "\"algorithm\"",
        "\"scheduler\"",
        "\"n\"",
        "\"leader\"",
        "\"leaders\"",
        "\"followers\"",
        "\"undecided\"",
        "\"phases\"",
        "\"total_rounds\"",
        "\"activations\"",
        "\"moves\"",
        "\"peak_memory_bits\"",
        "\"connectivity\"",
        "\"final_connected\"",
        "\"final_positions\"",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
}

#[test]
fn run_options_roundtrip() {
    let opts = RunOptions {
        assume_outer_boundary_known: true,
        reconnect: false,
        track_connectivity: true,
        round_budget: Some(123),
        seed: 42,
        occupancy: programmable_matter::amoebot::OccupancyBackend::Hashed,
    };
    let json = serde_json::to_string(&opts).unwrap();
    let back: RunOptions = serde_json::from_str(&json).unwrap();
    assert_eq!(back, opts);
    // The None branch of round_budget must survive as well.
    let defaults = RunOptions::default();
    let back: RunOptions =
        serde_json::from_str(&serde_json::to_string(&defaults).unwrap()).unwrap();
    assert_eq!(back, defaults);
}
