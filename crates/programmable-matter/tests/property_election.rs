//! Property-based tests of the leader-election algorithms on random
//! workloads: the problem predicate, the breadcrumb invariant, the round
//! bounds and the OBD correctness — all driven through the unified
//! `Election` API.

use programmable_matter::amoebot::scheduler::SeededRandom;
use programmable_matter::analysis::ShapeStats;
use programmable_matter::grid::Shape;
use programmable_matter::leader_election::api::phase;
use programmable_matter::leader_election::collect::CollectSimulator;
use programmable_matter::leader_election::obd::ObdSimulator;
use programmable_matter::scenarios::generators::{random_blob, random_holey_hexagon};
use programmable_matter::Election;
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = (Shape, u64)> {
    prop_oneof![
        (20usize..150, any::<u64>()).prop_map(|(n, seed)| random_blob(n, seed)),
        (3u32..7, any::<u64>()).prop_map(|(r, seed)| random_holey_hexagon(r, 0.1, seed)),
    ]
    .prop_flat_map(|shape| (Just(shape), any::<u64>()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full pipeline always elects a unique leader, keeps every particle,
    /// ends connected, reports consistent phase totals, and stays within a
    /// generous linear round budget in L_out + D.
    #[test]
    fn pipeline_predicate_and_round_budget((shape, sched_seed) in workload_strategy()) {
        let stats = ShapeStats::compute(&shape);
        let report = Election::on(&shape)
            .scheduler(SeededRandom::new(sched_seed))
            .run()
            .unwrap();
        prop_assert!(report.predicate_holds());
        prop_assert!(report.rounds_consistent());
        prop_assert_eq!(report.final_positions.len(), shape.len());
        // Generous linear budget: every phase is linear with moderate
        // constants (OBD <= ~15x, DLE <= ~8x, Collect <= ~140x of its own
        // parameter, all bounded by L_out + D).
        let budget = 200 * stats.lout_plus_d() as u64 + 500;
        prop_assert!(
            report.total_rounds <= budget,
            "rounds {} exceed linear budget {} (L_out+D = {})",
            report.total_rounds, budget, stats.lout_plus_d()
        );
    }

    /// Lemma 19 (breadcrumbs) holds after DLE under random schedulers, and
    /// Collect always reconnects from it.
    #[test]
    fn breadcrumbs_and_reconnection((shape, sched_seed) in workload_strategy()) {
        let dle = Election::on(&shape)
            .scheduler(SeededRandom::new(sched_seed))
            .assume_boundary_known()
            .skip_reconnection()
            .run()
            .unwrap();
        prop_assert!(dle.unique_leader());
        let l = dle.leader;
        let initial_eps = shape.iter().map(|p| l.grid_distance(p)).max().unwrap();
        let final_eps = dle.final_positions.iter().map(|p| l.grid_distance(*p)).max().unwrap();
        prop_assert!(final_eps <= initial_eps, "no particle beyond eps_G(l)");
        for d in 0..=final_eps {
            prop_assert!(
                dle.final_positions.iter().any(|p| l.grid_distance(*p) == d),
                "missing breadcrumb at distance {}", d
            );
        }
        let mut sim = CollectSimulator::new(l, &dle.final_positions);
        prop_assert!(sim.has_breadcrumbs());
        let collect = sim.run();
        prop_assert!(collect.final_connected);
        prop_assert_eq!(collect.final_positions.len(), shape.len());
        prop_assert_eq!(collect.uncollected_remaining, 0);
    }

    /// DLE stays within a small multiple of D_A rounds (Theorem 18) under
    /// random schedulers.
    #[test]
    fn dle_rounds_linear_in_area_diameter((shape, sched_seed) in workload_strategy()) {
        let stats = ShapeStats::compute(&shape);
        let report = Election::on(&shape)
            .scheduler(SeededRandom::new(sched_seed))
            .assume_boundary_known()
            .skip_reconnection()
            .run()
            .unwrap();
        prop_assert!(
            report.phase_rounds(phase::DLE) <= 10 * stats.d_a as u64 + 16,
            "rounds {} not O(D_A) for D_A = {}",
            report.phase_rounds(phase::DLE), stats.d_a
        );
    }

    /// OBD computes exactly the geometric outer-face flags and declares
    /// exactly one outer boundary.
    #[test]
    fn obd_matches_ground_truth((shape, _) in workload_strategy()) {
        let sim = ObdSimulator::new(&shape);
        let outcome = sim.run();
        prop_assert!(outcome.unique_outer());
        prop_assert_eq!(outcome.outer_flags, sim.ground_truth_flags());
        for decision in &outcome.decisions {
            prop_assert!(matches!(decision.stable_segments, 1 | 2 | 3 | 6));
        }
    }
}
