//! Property-based tests of the geometric substrate, driven by randomly
//! generated connected shapes.

use programmable_matter::grid::{boundary_rings, sce_points, ErosionProcess, Metric, Point, Shape};
use programmable_matter::scenarios::generators::{
    random_blob, random_holey_hexagon, random_simply_connected_blob,
};
use proptest::prelude::*;

fn blob_strategy() -> impl Strategy<Value = Shape> {
    (10usize..120, any::<u64>()).prop_map(|(n, seed)| random_blob(n, seed))
}

fn simply_connected_strategy() -> impl Strategy<Value = Shape> {
    (10usize..100, any::<u64>()).prop_map(|(n, seed)| random_simply_connected_blob(n, seed))
}

fn holey_strategy() -> impl Strategy<Value = Shape> {
    (3u32..7, any::<u64>()).prop_map(|(r, seed)| random_holey_hexagon(r, 0.12, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Observation 1: D >= D_A, n <= 3D(D+1)+1 and L_out >= D for
    /// simply-connected shapes.
    #[test]
    fn observation_1_holds_on_random_blobs(shape in blob_strategy()) {
        let metric = Metric::new(&shape);
        prop_assert!(metric.check_observation_1().is_ok());
    }

    /// Observation 4: every boundary ring's counts sum to +6 (outer) or -6
    /// (inner), for any shape with at least two points.
    #[test]
    fn observation_4_ring_sums(shape in holey_strategy()) {
        prop_assume!(shape.len() >= 2);
        for ring in boundary_rings(&shape) {
            let expected = if ring.is_outer() { 6 } else { -6 };
            prop_assert_eq!(ring.count_sum(), expected);
        }
    }

    /// The area contains the shape, has no holes, and adds exactly the hole
    /// points.
    #[test]
    fn area_fills_holes(shape in holey_strategy()) {
        let analysis = shape.analyze();
        let area = shape.area();
        prop_assert!(area.is_simply_connected());
        prop_assert_eq!(area.len(), shape.len() + analysis.hole_points().len());
        for p in shape.iter() {
            prop_assert!(area.contains(p));
        }
    }

    /// Proposition 7: every simply-connected shape with at least two points
    /// has an SCE point, and (Observation 5) the erosion process reaches a
    /// single point.
    #[test]
    fn proposition_7_and_erosion_termination(shape in simply_connected_strategy()) {
        prop_assume!(shape.len() >= 2);
        prop_assert!(!sce_points(&shape).is_empty());
        let n = shape.len();
        let mut erosion = ErosionProcess::new(shape);
        let last = erosion.run();
        prop_assert!(last.is_some());
        prop_assert_eq!(erosion.removal_order().len(), n - 1);
    }

    /// Boundary classification is consistent: every shape point is interior
    /// or on a boundary; hole points are not on the outer face; boundary
    /// rings cover exactly the boundary points.
    #[test]
    fn boundary_classification_consistency(shape in blob_strategy()) {
        let analysis = shape.analyze();
        let rings = boundary_rings(&shape);
        let ring_points: std::collections::BTreeSet<Point> = rings
            .iter()
            .flat_map(|r| r.vnodes().iter().map(|v| v.point))
            .collect();
        for p in shape.iter() {
            let on_boundary = shape.is_boundary_point(p);
            prop_assert_eq!(on_boundary, ring_points.contains(&p));
            prop_assert_eq!(!on_boundary, shape.is_interior_point(p));
        }
        for hole in analysis.holes() {
            for h in hole {
                prop_assert!(!analysis.is_outer_face_point(*h));
                prop_assert!(!shape.contains(*h));
            }
        }
    }

    /// Grid distance is a metric consistent with BFS on the full grid, and
    /// restricted distances only grow: dist_S >= dist_SA >= dist_G.
    #[test]
    fn restricted_distances_dominate_grid_distance(shape in holey_strategy(), idx in 0usize..1000) {
        prop_assume!(shape.len() >= 2);
        let points: Vec<Point> = shape.iter().collect();
        let a = points[idx % points.len()];
        let b = points[(idx * 7 + 3) % points.len()];
        let metric = Metric::new(&shape);
        let grid = metric.grid_distance(a, b);
        if let Some(area) = metric.distance_in_area(a, b) {
            prop_assert!(area >= grid);
            if let Some(in_shape) = metric.distance_in_shape(a, b) {
                prop_assert!(in_shape >= area);
            }
        }
    }
}
