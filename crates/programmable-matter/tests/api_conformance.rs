//! Trait-conformance suite of the unified `LeaderElection` API: every
//! implementation runs over a shared scenario × scheduler matrix and must
//! uphold the unique-leader predicate and the report-consistency invariants.
//!
//! The matrix spans every structural class (hole-free, holey, thin, huge
//! diameter, single particle, random) and all four fair strong schedulers;
//! expected assumption violations (erosion on shapes with holes) must surface
//! as `ElectionError::Stuck`, not as wrong answers.

use programmable_matter::amoebot::scheduler::{
    DoubleActivation, ReverseRoundRobin, RoundRobin, Scheduler, SeededRandom,
};
use programmable_matter::baselines::{
    ErosionLeaderElection, QuadraticBoundary, RandomizedBoundary, SelfStabMaxElection,
};
use programmable_matter::grid::builder::{annulus, comb, hexagon, line, swiss_cheese};
use programmable_matter::grid::Shape;
use programmable_matter::leader_election::PaperPipeline;
use programmable_matter::scenarios::generators::{dumbbell, random_blob};
use programmable_matter::{Election, ElectionError, LeaderElection, RunReport};

/// The shared scenario matrix: `(label, shape, has_holes)`.
fn scenarios() -> Vec<(String, Shape, bool)> {
    let mut scenarios = vec![
        ("hexagon(4)".to_string(), hexagon(4), false),
        ("annulus(5,2)".to_string(), annulus(5, 2), true),
        ("comb(5,4)".to_string(), comb(5, 4), false),
        ("swiss-cheese(5,3)".to_string(), swiss_cheese(5, 3), true),
        ("dumbbell(3,10)".to_string(), dumbbell(3, 10), false),
        ("single-particle".to_string(), line(1), false),
    ];
    for seed in 0..2u64 {
        let blob = random_blob(80, seed);
        let has_holes = !blob.is_simply_connected();
        scenarios.push((format!("blob(80,{seed})"), blob, has_holes));
    }
    scenarios
}

/// A labelled scheduler factory (fresh instance per run, so random streams
/// don't leak across scenarios).
type SchedulerFactory = (&'static str, fn() -> Box<dyn Scheduler + Send>);

/// The scheduler matrix.
fn schedulers() -> [SchedulerFactory; 4] {
    [
        ("round-robin", || Box::new(RoundRobin)),
        ("reverse-round-robin", || Box::new(ReverseRoundRobin)),
        ("seeded-random", || Box::new(SeededRandom::new(7))),
        ("double-activation", || Box::new(DoubleActivation)),
    ]
}

/// Every algorithm behind the unified API.
fn algorithms() -> [&'static dyn LeaderElection; 5] {
    [
        &PaperPipeline,
        &ErosionLeaderElection,
        &RandomizedBoundary,
        &QuadraticBoundary,
        &SelfStabMaxElection,
    ]
}

/// The invariants every successful report must satisfy, regardless of the
/// algorithm that produced it.
fn assert_report_invariants(report: &RunReport, shape: &Shape, context: &str) {
    assert!(
        report.rounds_consistent(),
        "{context}: total_rounds {} != sum of phase rounds",
        report.total_rounds
    );
    assert_eq!(report.n, shape.len(), "{context}: wrong particle count");
    assert_eq!(
        report.final_positions.len(),
        shape.len(),
        "{context}: particles created or destroyed"
    );
    assert!(report.leaders >= 1, "{context}: no leader elected");
    assert_eq!(
        report.leaders + report.followers + report.undecided,
        shape.len(),
        "{context}: status counts do not partition the particles"
    );
    assert_eq!(report.undecided, 0, "{context}: undecided particles remain");
    assert!(
        report.final_shape().contains(report.leader) || shape.area().contains(report.leader),
        "{context}: leader {:?} not in the final configuration",
        report.leader
    );
    assert!(
        report.peak_memory_bits > 0,
        "{context}: memory accounting missing"
    );
    assert_eq!(
        report.activations,
        report.phases.iter().map(|p| p.activations).sum::<u64>(),
        "{context}: activation totals inconsistent"
    );
    assert_eq!(
        report.moves,
        report.phases.iter().map(|p| p.moves).sum::<u64>(),
        "{context}: move totals inconsistent"
    );
    // Reconnection ran for every algorithm here (the pipeline's default
    // options reconnect; the baselines never disconnect), so the final
    // configuration must be connected.
    assert!(
        report.final_connected && report.final_shape().is_connected(),
        "{context}: final configuration disconnected"
    );
}

#[test]
fn every_algorithm_conforms_on_the_scenario_matrix() {
    for (scenario, shape, has_holes) in scenarios() {
        for (scheduler_name, make_scheduler) in schedulers() {
            for algorithm in algorithms() {
                let context = format!("{} on {scenario} under {scheduler_name}", algorithm.name());
                let mut scheduler = make_scheduler();
                let result = Election::on(&shape)
                    .algorithm(algorithm)
                    .scheduler(&mut *scheduler)
                    .run();
                match result {
                    Ok(report) => {
                        assert_eq!(report.algorithm, algorithm.name(), "{context}");
                        assert_eq!(report.scheduler, scheduler_name, "{context}");
                        assert_report_invariants(&report, &shape, &context);
                        if algorithm.name() == "quadratic-boundary" {
                            // The [3]-style baseline legitimately elects up
                            // to six leaders (one per surviving segment).
                            assert!(
                                (1..=6).contains(&report.leaders),
                                "{context}: {} leaders",
                                report.leaders
                            );
                        } else {
                            assert!(
                                report.unique_leader(),
                                "{context}: {} leaders",
                                report.leaders
                            );
                        }
                    }
                    Err(ElectionError::Stuck { .. }) => {
                        // The only permitted stall: erosion-style election on
                        // a shape with holes (Table 1's assumption column).
                        assert_eq!(
                            algorithm.name(),
                            "erosion-le",
                            "{context}: unexpected stall"
                        );
                        assert!(has_holes, "{context}: stalled on a hole-free shape");
                    }
                    Err(e) => panic!("{context}: {e}"),
                }
            }
        }
    }
}

#[test]
fn deterministic_algorithms_reproduce_reports_exactly() {
    let shape = swiss_cheese(5, 2);
    for algorithm in algorithms() {
        if algorithm.name() == "erosion-le" {
            continue; // stuck on holes
        }
        let run = || {
            Election::on(&shape)
                .algorithm(algorithm)
                .scheduler(SeededRandom::new(13))
                .seed(13)
                .run()
                .unwrap()
        };
        assert_eq!(run(), run(), "{} must be reproducible", algorithm.name());
    }
}

#[test]
fn stuck_errors_carry_the_exhausted_budget() {
    let holey = annulus(4, 1);
    let result = Election::on(&holey)
        .algorithm(&ErosionLeaderElection)
        .scheduler(RoundRobin)
        .round_budget(24)
        .run();
    match result {
        Err(ElectionError::Stuck { after_rounds }) => assert_eq!(after_rounds, 24),
        other => panic!("expected Stuck, got {other:?}"),
    }
}
