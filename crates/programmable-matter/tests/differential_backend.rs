//! Differential property test of the dense indexed-grid fast path: every
//! election run on the dense occupancy backend must produce a `RunReport`
//! **bit-identical** to the same run on the legacy `HashMap` backend, across
//! all four algorithms and all four fair strong schedulers, on random
//! connected shapes (with and without holes).
//!
//! This is the proof obligation of the fast-path refactor: the dense
//! `GridIndex`/occupancy representation is an implementation detail that may
//! never change observable behaviour — leaders, round counts, phase
//! statistics, final positions, connectivity observations.

use pm_amoebot::system::OccupancyBackend;
use pm_baselines::{
    ErosionLeaderElection, QuadraticBoundary, RandomizedBoundary, SelfStabMaxElection,
};
use pm_core::api::{ElectionError, LeaderElection, PaperPipeline, RunOptions, RunReport};
use pm_core::batch::SchedulerSpec;
use pm_grid::random::{random_blob, random_holey_hexagon};
use pm_grid::Shape;
use proptest::prelude::*;

const ALGORITHMS: [(&str, &(dyn LeaderElection + Sync)); 5] = [
    ("dle+collect", &PaperPipeline),
    ("erosion-le", &ErosionLeaderElection),
    ("randomized-boundary", &RandomizedBoundary),
    ("quadratic-boundary", &QuadraticBoundary),
    ("self-stab-max", &SelfStabMaxElection),
];

fn scheduler_specs(seed: u64) -> [SchedulerSpec; 4] {
    [
        SchedulerSpec::RoundRobin,
        SchedulerSpec::ReverseRoundRobin,
        SchedulerSpec::SeededRandom(seed),
        SchedulerSpec::DoubleActivation,
    ]
}

/// Runs one algorithm on one shape under one scheduler with the given
/// occupancy backend.
fn run(
    algorithm: &dyn LeaderElection,
    shape: &Shape,
    spec: SchedulerSpec,
    backend: OccupancyBackend,
) -> Result<RunReport, ElectionError> {
    let opts = RunOptions {
        occupancy: backend,
        track_connectivity: true,
        ..RunOptions::default()
    };
    algorithm.elect(shape, &mut *spec.build(), &opts)
}

/// Asserts dense ≡ hashed for the whole algorithm × scheduler grid on one
/// shape.
fn assert_backends_agree(shape: &Shape, seed: u64) -> Result<(), TestCaseError> {
    for (name, algorithm) in ALGORITHMS {
        for spec in scheduler_specs(seed) {
            let dense = run(algorithm, shape, spec, OccupancyBackend::Dense);
            let hashed = run(algorithm, shape, spec, OccupancyBackend::Hashed);
            match (dense, hashed) {
                (Ok(dense), Ok(hashed)) => {
                    prop_assert_eq!(
                        dense,
                        hashed,
                        "{} under {:?} diverged between backends",
                        name,
                        spec
                    );
                }
                (Err(dense), Err(hashed)) => {
                    prop_assert_eq!(
                        dense,
                        hashed,
                        "{} under {:?}: errors diverged between backends",
                        name,
                        spec
                    );
                }
                (dense, hashed) => {
                    return Err(TestCaseError::Fail(format!(
                        "{name} under {spec:?}: one backend failed, the other did not \
                         (dense: {dense:?}, hashed: {hashed:?})"
                    )));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random Eden-growth blobs (may contain holes, so the erosion baseline
    /// exercises its `Stuck` path too).
    #[test]
    fn backends_agree_on_random_blobs(n in 8usize..48, seed in 0u64..1_000) {
        let shape = random_blob(n, seed);
        assert_backends_agree(&shape, seed)?;
    }

    /// Randomly perforated hexagons: guaranteed holes, all algorithms.
    #[test]
    fn backends_agree_on_holey_hexagons(radius in 3u32..6, seed in 0u64..1_000) {
        let shape = random_holey_hexagon(radius, 0.1, seed);
        assert_backends_agree(&shape, seed)?;
    }
}

/// Satellite: mid-run particle *additions*. The dense occupancy backend
/// resizes/overflows on points outside its initial `GridRect`, so regrow
/// events exercise a code path removals never touch; both backends must
/// still agree byte-for-byte on runs whose shape grows between rounds.
#[test]
fn backends_agree_under_midrun_regrow_additions() {
    use pm_faults::{FaultKind, FaultPlan, FaultProcess, RecoveryDriver};
    use pm_grid::builder::hexagon;

    // Periodic regrow: two fresh particles every other round over the fault
    // window, with a removal process mixed in so additions land on a shape
    // that has also shrunk.
    let plan = FaultPlan::new(29)
        .process(FaultProcess::periodic(FaultKind::Regrow, 1, 2, 9, 2))
        .process(FaultProcess::once(FaultKind::Removals, 4, 2));
    let run = |backend: OccupancyBackend, seed: u64| {
        let opts = RunOptions {
            occupancy: backend,
            track_connectivity: true,
            ..RunOptions::default()
        };
        RecoveryDriver::new(plan.clone())
            .run(
                &SelfStabMaxElection,
                &hexagon(3),
                &mut *SchedulerSpec::SeededRandom(seed).build(),
                &opts,
            )
            .unwrap()
    };
    for seed in [1, 7, 23] {
        let (dense_recovery, dense_report) = run(OccupancyBackend::Dense, seed);
        let (hashed_recovery, hashed_report) = run(OccupancyBackend::Hashed, seed);
        assert_eq!(
            dense_report, hashed_report,
            "regrow run diverged between backends at seed {seed}"
        );
        assert_eq!(dense_recovery, hashed_recovery);
        assert!(
            dense_recovery.added > 0,
            "regrow never fired at seed {seed}"
        );
        assert!(dense_recovery.recovered, "{dense_recovery:?}");
    }
}

/// The fixed workloads of the conformance suite, checked exhaustively (not
/// property-based, so failures name the workload directly).
#[test]
fn backends_agree_on_fixed_workloads() {
    use pm_grid::builder::{annulus, hexagon, line, spiral, swiss_cheese};
    for shape in [
        line(1),
        line(9),
        hexagon(3),
        annulus(5, 2),
        annulus(6, 5),
        swiss_cheese(5, 3),
        spiral(40),
    ] {
        assert_backends_agree(&shape, 7).unwrap();
    }
}
