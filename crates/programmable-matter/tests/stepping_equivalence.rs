//! Differential suite for the steppable `Execution` API: driving a run
//! through `start()` + `step_round()` to completion must produce a
//! **byte-identical** `RunReport` to the eager `elect()` path — for every
//! algorithm, under every scheduler, and for every scenario of the
//! committed smoke corpus. Error paths must agree too (erosion's stall on
//! holes surfaces as the same `Stuck` from whichever driver hits it).

use programmable_matter::amoebot::scheduler::{
    DoubleActivation, ReverseRoundRobin, RoundRobin, Scheduler, SeededRandom,
};
use programmable_matter::baselines::{
    ErosionLeaderElection, QuadraticBoundary, RandomizedBoundary, SelfStabMaxElection,
};
use programmable_matter::grid::builder::{annulus, hexagon, line, swiss_cheese};
use programmable_matter::grid::Shape;
use programmable_matter::leader_election::api::{
    ElectionError, ExecutionStatus, PaperPipeline, RunOptions, RunReport, StepOutcome,
};
use programmable_matter::scenarios::{load_embedded, select};
use programmable_matter::LeaderElection;

type SchedulerFactory = (&'static str, fn() -> Box<dyn Scheduler + Send>);

fn schedulers() -> [SchedulerFactory; 4] {
    [
        ("round-robin", || Box::new(RoundRobin)),
        ("reverse-round-robin", || Box::new(ReverseRoundRobin)),
        ("seeded-random", || Box::new(SeededRandom::new(7))),
        ("double-activation", || Box::new(DoubleActivation)),
    ]
}

fn algorithms() -> [&'static dyn LeaderElection; 5] {
    [
        &PaperPipeline,
        &ErosionLeaderElection,
        &RandomizedBoundary,
        &QuadraticBoundary,
        &SelfStabMaxElection,
    ]
}

/// Drives `start()` + `step_round()` to completion, checking status
/// monotonicity along the way.
fn stepped(
    algorithm: &dyn LeaderElection,
    shape: &Shape,
    scheduler: &mut (dyn Scheduler + Send),
    opts: &RunOptions,
) -> Result<RunReport, ElectionError> {
    let mut execution = algorithm.start(shape, scheduler, opts)?;
    let mut last: Option<ExecutionStatus> = None;
    loop {
        let outcome = execution.step_round()?;
        let status = execution.status();
        if let Some(last) = &last {
            assert!(
                status.total_rounds >= last.total_rounds,
                "{}: total rounds regressed",
                algorithm.name()
            );
        }
        if let StepOutcome::Finished(report) = outcome {
            assert!(status.finished);
            return Ok(report);
        }
        assert!(!status.finished);
        last = Some(status);
    }
}

#[test]
fn stepping_equals_eager_for_all_algorithms_and_schedulers() {
    let shapes = [
        ("hexagon(4)", hexagon(4)),
        ("annulus(5,2)", annulus(5, 2)),
        ("swiss-cheese(4,2)", swiss_cheese(4, 2)),
        ("line(15)", line(15)),
    ];
    for algorithm in algorithms() {
        for (scheduler_label, make_scheduler) in schedulers() {
            for (shape_label, shape) in &shapes {
                let context = format!("{} / {scheduler_label} / {shape_label}", algorithm.name());
                let opts = RunOptions::default();
                let eager = algorithm.elect(shape, &mut *make_scheduler(), &opts);
                let step = stepped(algorithm, shape, &mut *make_scheduler(), &opts);
                match (eager, step) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "{context}: reports diverged"),
                    (Err(a), Err(b)) => assert_eq!(a, b, "{context}: errors diverged"),
                    (a, b) => {
                        panic!("{context}: one path failed, the other did not: {a:?} vs {b:?}")
                    }
                }
            }
        }
    }
}

#[test]
fn stepping_equals_eager_for_pipeline_variants() {
    // The RunOptions axis: boundary knowledge, no reconnection, tracking,
    // hashed occupancy.
    let shape = annulus(5, 3);
    let variants = [
        RunOptions::with_boundary_knowledge(),
        RunOptions {
            reconnect: false,
            track_connectivity: true,
            ..RunOptions::default()
        },
        RunOptions {
            occupancy: programmable_matter::amoebot::system::OccupancyBackend::Hashed,
            ..RunOptions::default()
        },
    ];
    for (i, opts) in variants.iter().enumerate() {
        let eager = PaperPipeline
            .elect(&shape, &mut SeededRandom::new(11), opts)
            .unwrap();
        let step = stepped(&PaperPipeline, &shape, &mut SeededRandom::new(11), opts).unwrap();
        assert_eq!(eager, step, "variant {i}");
    }
}

#[test]
fn stepping_equals_eager_across_the_smoke_corpus() {
    // Every fault-free smoke scenario: the committed corpus exercises the
    // full generator × algorithm × scheduler × options surface. (Perturbed
    // scenarios have no eager equivalent — the golden-file suite pins
    // those.)
    let corpus = load_embedded().expect("committed corpus parses");
    let smoke = select(&corpus, "smoke");
    let mut compared = 0;
    for spec in smoke {
        if spec.is_adversarial() {
            continue;
        }
        let shape = spec.build_shape();
        let algorithm = spec.algorithm.instance();
        let eager = algorithm.elect(&shape, &mut *spec.scheduler.build(), &spec.options);
        let step = stepped(
            algorithm,
            &shape,
            &mut *spec.scheduler.build(),
            &spec.options,
        );
        match (eager, step) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{}: reports diverged", spec.name),
            (Err(a), Err(b)) => assert_eq!(a, b, "{}: errors diverged", spec.name),
            (a, b) => panic!(
                "{}: one path failed, the other did not: {a:?} vs {b:?}",
                spec.name
            ),
        }
        compared += 1;
    }
    assert!(compared >= 15, "only {compared} smoke scenarios compared");
}

#[test]
fn erosion_stall_surfaces_identically_from_both_drivers() {
    let holey = annulus(4, 1);
    let eager = ErosionLeaderElection.elect(&holey, &mut RoundRobin, &RunOptions::default());
    let step = stepped(
        &ErosionLeaderElection,
        &holey,
        &mut RoundRobin,
        &RunOptions::default(),
    );
    assert!(matches!(eager, Err(ElectionError::Stuck { .. })));
    assert_eq!(eager.unwrap_err(), step.unwrap_err());
}

#[test]
fn finish_resumes_a_partially_stepped_execution() {
    // Hand-stepping part of the run and then calling finish() must land on
    // the same report as either pure driver.
    let shape = hexagon(3);
    let opts = RunOptions::default();
    let eager = PaperPipeline
        .elect(&shape, &mut SeededRandom::new(2), &opts)
        .unwrap();
    let mut scheduler = SeededRandom::new(2);
    let mut execution = PaperPipeline.start(&shape, &mut scheduler, &opts).unwrap();
    for _ in 0..5 {
        execution.step_round().unwrap();
    }
    assert_eq!(execution.finish().unwrap(), eager);
}
