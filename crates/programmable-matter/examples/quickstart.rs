//! Quickstart: elect a leader on a shape with a hole and reconnect the
//! system, through the unified `Election` builder.
//!
//! Run with `cargo run --example quickstart`.

use programmable_matter::amoebot::ascii::render_shape;
use programmable_matter::amoebot::scheduler::RoundRobin;
use programmable_matter::grid::builder::annulus;
use programmable_matter::leader_election::api::phase;
use programmable_matter::Election;

fn main() {
    // An annulus: a shape with a hole. Previous deterministic leader-election
    // algorithms either assume hole-free shapes or pay Omega(n^2) rounds;
    // the paper's algorithm is linear in the diameter.
    let shape = annulus(6, 3);
    println!("Initial configuration ({} particles, 1 hole):", shape.len());
    println!("{}", render_shape(&shape));

    // Full pipeline: OBD (outer-boundary detection), DLE (disconnecting
    // leader election), Collect (reconnection).
    let report = Election::on(&shape)
        .scheduler(RoundRobin)
        .run()
        .expect("a connected shape always elects a leader");

    println!("Leader elected at {:?}", report.leader);
    println!(
        "Rounds: OBD = {}, DLE = {}, Collect = {}, total = {}",
        report.phase_rounds(phase::OBD),
        report.phase_rounds(phase::DLE),
        report.phase_rounds(phase::COLLECT),
        report.total_rounds
    );
    println!(
        "Unique leader: {}, final configuration connected: {}",
        report.unique_leader(),
        report.final_connected
    );

    println!("\nFinal configuration (stem and branches around the leader):");
    println!("{}", render_shape(&report.final_shape()));
}
