//! Compares the paper's algorithm against the Table 1 baselines on a single
//! shape with holes — a one-shot, human-readable version of experiment T1.
//! All contenders run through one `&dyn LeaderElection` loop.
//!
//! Run with `cargo run --example baseline_comparison [radius]`.

use programmable_matter::amoebot::scheduler::RoundRobin;
use programmable_matter::analysis::ShapeStats;
use programmable_matter::baselines::{
    ErosionLeaderElection, QuadraticBoundary, RandomizedBoundary,
};
use programmable_matter::grid::builder::swiss_cheese;
use programmable_matter::leader_election::PaperPipeline;
use programmable_matter::{Election, ElectionError, LeaderElection, RunOptions};

fn main() {
    let radius = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6u32);
    let shape = swiss_cheese(radius, 3);
    let stats = ShapeStats::compute(&shape);
    println!(
        "Swiss-cheese hexagon: n = {}, holes = {}, D_A = {}, L_out + D = {}\n",
        stats.n,
        stats.holes,
        stats.d_a,
        stats.lout_plus_d()
    );

    let contenders: [(&str, &dyn LeaderElection, RunOptions); 5] = [
        (
            "this paper, O(D_A) variant      ",
            &PaperPipeline,
            RunOptions::with_boundary_knowledge(),
        ),
        (
            "this paper, O(L_out+D) variant  ",
            &PaperPipeline,
            RunOptions::default(),
        ),
        (
            "erosion baseline [22]           ",
            &ErosionLeaderElection,
            RunOptions::default(),
        ),
        (
            "randomized boundary [10]        ",
            &RandomizedBoundary,
            RunOptions::default(),
        ),
        (
            "quadratic boundary [3]          ",
            &QuadraticBoundary,
            RunOptions::default(),
        ),
    ];

    for (label, algorithm, opts) in contenders {
        let result = Election::on(&shape)
            .algorithm(algorithm)
            .scheduler(RoundRobin)
            .options(opts)
            .run();
        match result {
            Ok(report) => println!(
                "{label}: {:>6} rounds ({} leader{})",
                report.total_rounds,
                report.leaders,
                if report.leaders == 1 { "" } else { "s" }
            ),
            Err(ElectionError::Stuck { after_rounds }) => {
                println!("{label}:  stuck after {after_rounds} rounds (cannot handle holes)")
            }
            Err(e) => println!("{label}:  error: {e}"),
        }
    }
}
