//! Walkthrough of disconnection and reconnection (Figures 1–4): run DLE on a
//! thin annulus until the system disconnects, inspect the breadcrumb trail
//! (Lemma 19), then run Algorithm Collect phase by phase.
//!
//! Run with `cargo run --example collect_walkthrough`.

use programmable_matter::amoebot::ascii::render_shape;
use programmable_matter::amoebot::scheduler::SeededRandom;
use programmable_matter::grid::builder::annulus;
use programmable_matter::leader_election::api::phase;
use programmable_matter::leader_election::collect::CollectSimulator;
use programmable_matter::Election;

fn main() {
    // A thin annulus: DLE's inward march leaves a sparse, disconnected
    // breadcrumb trail behind.
    let shape = annulus(8, 7);
    println!("Initial thin annulus ({} particles):", shape.len());
    println!("{}", render_shape(&shape));

    // Stop the pipeline after DLE: `skip_reconnection` yields the raw
    // breadcrumb configuration the Collect phase would repair.
    let dle = Election::on(&shape)
        .scheduler(SeededRandom::new(0))
        .assume_boundary_known()
        .skip_reconnection()
        .track_connectivity()
        .run()
        .expect("DLE terminates");
    println!(
        "DLE finished in {} rounds; unique leader at {:?}; system ever disconnected: {}; \
         final configuration connected: {}",
        dle.phase_rounds(phase::DLE),
        dle.leader,
        dle.connectivity.ever_disconnected,
        dle.final_connected
    );
    println!("\nConfiguration after DLE (note the gaps — the breadcrumb trail):");
    println!("{}", render_shape(&dle.final_shape()));

    // Lemma 19: one particle at every grid distance up to eps_G(l).
    let l = dle.leader;
    let eps = dle
        .final_positions
        .iter()
        .map(|p| l.grid_distance(*p))
        .max()
        .unwrap();
    println!("Breadcrumbs: eps_G(l) = {eps}; particles per distance from the leader:");
    for d in 0..=eps {
        let count = dle
            .final_positions
            .iter()
            .filter(|p| l.grid_distance(**p) == d)
            .count();
        println!("  distance {d:>2}: {count} particle(s)");
    }

    // Algorithm Collect: phases of the rotating stem.
    let mut sim = CollectSimulator::new(l, &dle.final_positions);
    assert!(sim.has_breadcrumbs());
    let outcome = sim.run();
    println!("\nCollect phases (stem doubles each phase, Corollary 22):");
    for phase in &outcome.phases {
        println!(
            "  phase {}: stem {:>3} -> {:>3}, collected {:>3} particles, {:>4} rounds",
            phase.index, phase.stem_start, phase.stem_end, phase.newly_collected, phase.rounds
        );
    }
    println!(
        "Collect finished in {} rounds; final configuration connected: {}",
        outcome.rounds, outcome.final_connected
    );
}
