//! A tour of the paper's geometric definitions (Figures 5–8): shapes, holes,
//! areas, boundary counts, v-node rings and erodable points.
//!
//! Run with `cargo run --example geometry_tour`.

use programmable_matter::amoebot::ascii::render_shape;
use programmable_matter::grid::builder::{annulus, hexagon};
use programmable_matter::grid::{
    boundary_rings, is_erodable, is_sce, LocalBoundary, Metric, Point, Shape,
};

fn main() {
    // Figure 5: a shape with a hole, its area, and its boundaries.
    let shape = annulus(4, 1);
    let analysis = shape.analyze();
    println!("A shape with one hole (holes render as 'o'):");
    println!("{}", render_shape(&shape));
    println!(
        "n = {}, outer boundary = {} points, inner boundary = {} points, hole = {} points",
        shape.len(),
        analysis.outer_boundary_len(),
        analysis.inner_boundary(0).len(),
        analysis.holes()[0].len()
    );
    let metric = Metric::new(&shape);
    println!(
        "D = {:?}, D_A = {:?}, D_G = {} (Observation 1: D >= D_A >= D_G)\n",
        metric.diameter().unwrap(),
        metric.area_diameter().unwrap(),
        metric.grid_diameter()
    );

    // Figure 6: boundary counts and erodable points on a small irregular
    // shape.
    let mut small = hexagon(2);
    small.remove(Point::new(2, 0));
    small.remove(Point::new(1, 1));
    let small_analysis = small.analyze();
    println!("Boundary counts on an irregular simply-connected shape:");
    println!("{}", render_shape(&small));
    for p in small.iter() {
        let lbs = LocalBoundary::of_point(&small, p);
        if lbs.is_empty() {
            continue;
        }
        let counts: Vec<i32> = lbs.iter().map(|b| b.count()).collect();
        println!(
            "  {p}: counts {counts:?}, erodable = {}, SCE = {}",
            is_erodable(&small, &small_analysis, p),
            is_sce(&small, &small_analysis, p)
        );
    }

    // Figure 7 / Observation 4: v-node rings and their count sums.
    println!("\nBoundary rings of the annulus (Observation 4: sums are +6 / -6):");
    for ring in boundary_rings(&shape) {
        println!(
            "  {:?}: {} v-nodes over {} points, count sum = {}",
            ring.kind(),
            ring.len(),
            ring.point_len(),
            ring.count_sum()
        );
    }

    // Proposition 7: every simply-connected shape has an SCE point.
    let sc: Shape = hexagon(3);
    let sc_analysis = sc.analyze();
    let sce_count = sc.iter().filter(|p| is_sce(&sc, &sc_analysis, *p)).count();
    println!("\nhexagon(3) has {sce_count} SCE points (Proposition 7 guarantees at least one).");
}
