//! Traces Algorithm DLE round by round on a perforated shape, rendering the
//! configuration after each round: `#` undecided, `f` follower, `L` leader,
//! `H`/`T` the head/tail of a particle that is currently expanded (mid-march
//! into a hole).
//!
//! Uses `Runner::run_observed` — the same per-round hook the unified API's
//! `RunObserver` is built on — to render without hand-rolling the run loop.
//!
//! Run with `cargo run --example dle_trace`.

use programmable_matter::amoebot::ascii::render_with;
use programmable_matter::amoebot::scheduler::{Runner, SeededRandom};
use programmable_matter::amoebot::system::ParticleSystem;
use programmable_matter::grid::builder::swiss_cheese;
use programmable_matter::leader_election::dle::{DleAlgorithm, Status};

fn main() {
    let shape = swiss_cheese(4, 2);
    let system = ParticleSystem::from_shape(&shape, &DleAlgorithm);
    let mut runner = Runner::new(system, DleAlgorithm, SeededRandom::new(2));

    println!(
        "Tracing DLE on a perforated hexagon ({} particles):\n",
        shape.len()
    );
    let stats = runner
        .run_observed(200, |system, stats| {
            let frame = render_with(system, |particle, point| {
                if particle.is_expanded() {
                    if particle.head() == point {
                        'H'
                    } else {
                        'T'
                    }
                } else {
                    match particle.memory().status {
                        Status::Leader => 'L',
                        Status::Follower => 'f',
                        Status::Undecided => '#',
                    }
                }
            });
            println!("after round {}:\n{frame}", stats.rounds);
        })
        .expect("DLE terminates well within the round budget");
    println!("DLE terminated in {} rounds.", stats.rounds);
}
