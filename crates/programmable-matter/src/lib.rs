//! Umbrella crate re-exporting the programmable-matter workspace.
//!
//! This workspace reproduces *"Efficient Deterministic Leader Election for
//! Programmable Matter"* (Dufoulon, Kutten, Moses Jr., PODC 2021). The crates
//! are:
//!
//! * [`grid`] (`pm-grid`) — triangular-grid geometry, shapes, boundaries,
//!   v-nodes, erosion predicates and metric toolkit.
//! * [`amoebot`] (`pm-amoebot`) — the amoebot particle-system simulator:
//!   particles, atomic activations, schedulers, shape generators and an ASCII
//!   renderer.
//! * [`leader_election`] (`pm-core`) — the paper's algorithms: DLE, Collect
//!   (OMP/PRP/SDP), the Outer-Boundary Detection primitive — and the
//!   **unified execution API** (`pm_core::api`): the [`LeaderElection`]
//!   trait, the [`Election`] builder and the serializable [`RunReport`].
//! * [`baselines`] (`pm-baselines`) — the comparison algorithms of Table 1,
//!   all behind the same [`LeaderElection`] trait.
//! * [`scenarios`] (`pm-scenarios`) — the declarative scenario subsystem:
//!   the generator registry, serializable `ScenarioSpec`s with perturbation
//!   scripts, the committed corpus and the `pm-scenarios` CLI.
//! * [`analysis`] (`pm-analysis`) — experiment harness regenerating the
//!   paper's table and the scaling figures over `&dyn LeaderElection`.
//!
//! # Quickstart
//!
//! ```
//! use programmable_matter::amoebot::scheduler::RoundRobin;
//! use programmable_matter::grid::builder::hexagon;
//! use programmable_matter::Election;
//!
//! let shape = hexagon(4);
//! let report = Election::on(&shape)
//!     .scheduler(RoundRobin)
//!     .run()
//!     .expect("election succeeds on a connected shape");
//! assert!(report.unique_leader());
//! assert!(report.final_connected);
//! ```
//!
//! Comparing algorithms through the trait:
//!
//! ```
//! use programmable_matter::baselines::RandomizedBoundary;
//! use programmable_matter::grid::builder::annulus;
//! use programmable_matter::leader_election::PaperPipeline;
//! use programmable_matter::{Election, LeaderElection};
//!
//! let shape = annulus(4, 1);
//! let algorithms: [&dyn LeaderElection; 2] = [&PaperPipeline, &RandomizedBoundary];
//! for algorithm in algorithms {
//!     let report = Election::on(&shape).algorithm(algorithm).run().unwrap();
//!     assert!(report.unique_leader(), "{}", report.algorithm);
//! }
//! ```
//!
//! Driving a run round by round through the steppable [`Execution`] handle
//! (pause, inspect, mutate, resume):
//!
//! ```
//! use programmable_matter::amoebot::scheduler::SeededRandom;
//! use programmable_matter::grid::builder::hexagon;
//! use programmable_matter::leader_election::PaperPipeline;
//! use programmable_matter::{LeaderElection, RunOptions, StepOutcome};
//!
//! let shape = hexagon(3);
//! let mut scheduler = SeededRandom::new(7);
//! let opts = RunOptions::default();
//! let mut execution = PaperPipeline.start(&shape, &mut scheduler, &opts)?;
//! let report = loop {
//!     match execution.step_round()? {
//!         StepOutcome::RoundCompleted { phase, rounds } => {
//!             let status = execution.status();
//!             assert_eq!(status.rounds_in_phase, rounds);
//!             assert_eq!(status.decided + status.undecided, shape.len());
//!         }
//!         StepOutcome::Finished(report) => break report,
//!         _ => {}
//!     }
//! };
//! assert!(report.predicate_holds());
//! # Ok::<(), programmable_matter::ElectionError>(())
//! ```

pub use pm_amoebot as amoebot;
pub use pm_analysis as analysis;
pub use pm_baselines as baselines;
pub use pm_core as leader_election;
pub use pm_faults as faults;
pub use pm_grid as grid;
pub use pm_scenarios as scenarios;

pub use pm_core::api::{
    Election, ElectionBuilder, ElectionError, Execution, ExecutionStatus, LeaderElection,
    RunObserver, RunOptions, RunReport, StepOutcome,
};
