//! The leveled logging facade: structured lines on stderr.
//!
//! Initialize once with [`init`] (level + format), then log through the
//! [`error!`](crate::error), [`warn!`](crate::warn), [`info!`](crate::info)
//! and [`debug!`](crate::debug) macros. Each macro takes a `target` (a
//! module-ish origin string such as `"pm-server::transport"`) followed by a
//! `format!` message. Levels above the configured maximum are filtered by a
//! single relaxed atomic load before any formatting happens — a disabled
//! `debug!` in a hot loop costs nothing measurable.
//!
//! Two output formats, chosen at [`init`]:
//!
//! * text (default): `[WARN pm-server::transport] connection …` — grepable,
//!   and existing log consumers that search for message substrings keep
//!   working because the message text is never rewritten;
//! * JSON lines (`--log-json` on the CLI):
//!   `{"ts_ms":1700000000000,"level":"warn","target":"pm-server::transport","msg":"connection …"}`.
//!
//! Each line is written with one locked `stderr` write, so concurrent
//! threads never interleave partial lines.

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed and was abandoned.
    Error = 0,
    /// Something degraded but the server keeps serving.
    Warn = 1,
    /// Lifecycle milestones (startup, recovery summary, listen address).
    Info = 2,
    /// High-volume diagnostics.
    Debug = 3,
}

impl Level {
    /// The lowercase name (`"warn"`), as used in JSON lines and
    /// `--log-level` values.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// The uppercase name (`"WARN"`), as used in text lines.
    pub fn as_upper(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    /// Parses a `--log-level` value, case-insensitively.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Most severe level that is emitted; defaults to [`Level::Info`].
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
/// Whether lines are JSON (`true`) or human text (`false`).
static JSON: AtomicBool = AtomicBool::new(false);

/// Configures the facade: messages at `level` and more severe are emitted,
/// as JSON lines when `json` is set, human text otherwise. Callable any
/// time (tests re-init freely); affects subsequent lines only.
pub fn init(level: Level, json: bool) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
    JSON.store(json, Ordering::Relaxed);
}

/// Whether a message at `level` would currently be emitted — the macros'
/// fast path.
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Emits one log line (the macros' slow path; call those instead), and —
/// for `warn`/`error` while a trace recorder is active — mirrors the
/// message onto the trace timeline as an instant event, so a drained trace
/// shows degradations in causal order with the surrounding spans. The
/// gate re-checks make direct calls safe too; when both the level and the
/// recorder are off, nothing is formatted.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    let to_stderr = enabled(level);
    let to_trace = level <= Level::Warn && crate::trace::enabled();
    if !to_stderr && !to_trace {
        return;
    }
    let msg = args.to_string();
    if to_trace {
        crate::trace::log_event(level, target, &msg);
    }
    if !to_stderr {
        return;
    }
    let line = if JSON.load(Ordering::Relaxed) {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
        let mut line = format!(
            "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"target\":\"",
            level.as_str()
        );
        escape_json(target, &mut line);
        line.push_str("\",\"msg\":\"");
        escape_json(&msg, &mut line);
        line.push_str("\"}");
        line
    } else {
        format!("[{} {target}] {msg}", level.as_upper())
    };
    // One locked write per line: concurrent threads cannot interleave.
    let stderr = std::io::stderr();
    let _ = writeln!(stderr.lock(), "{line}");
}

/// Logs at [`Level::Error`]: `error!("pm-server::x", "failed: {e}")`.
/// Also recorded as an instant trace event while a recorder is active,
/// even when the stderr level filters it out.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => {
        if $crate::logging::enabled($crate::logging::Level::Error) || $crate::trace::enabled() {
            $crate::logging::log(
                $crate::logging::Level::Error,
                $target,
                ::core::format_args!($($arg)+),
            );
        }
    };
}

/// Logs at [`Level::Warn`]: `warn!("pm-server::x", "degraded: {e}")`.
/// Also recorded as an instant trace event while a recorder is active,
/// even when the stderr level filters it out.
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => {
        if $crate::logging::enabled($crate::logging::Level::Warn) || $crate::trace::enabled() {
            $crate::logging::log(
                $crate::logging::Level::Warn,
                $target,
                ::core::format_args!($($arg)+),
            );
        }
    };
}

/// Logs at [`Level::Info`]: `info!("pm-server::x", "listening on {addr}")`.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => {
        if $crate::logging::enabled($crate::logging::Level::Info) {
            $crate::logging::log(
                $crate::logging::Level::Info,
                $target,
                ::core::format_args!($($arg)+),
            );
        }
    };
}

/// Logs at [`Level::Debug`]: `debug!("pm-server::x", "sweep took {us}us")`.
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => {
        if $crate::logging::enabled($crate::logging::Level::Debug) {
            $crate::logging::log(
                $crate::logging::Level::Debug,
                $target,
                ::core::format_args!($($arg)+),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Debug, "severity ordering");
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
