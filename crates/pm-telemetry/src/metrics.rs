//! The metrics registry: named, optionally labeled series of atomic
//! counters, gauges, and fixed-bucket histograms.
//!
//! Handle acquisition (`counter`, `gauge`, `histogram`, and their `_with`
//! labeled variants) takes the registry mutex once to get-or-create the
//! series; the returned handle is an `Arc` over the atomics and every
//! subsequent operation is lock-free. Histograms observe into the first
//! bucket whose upper bound is `>= value` (the last bucket is the implicit
//! `+Inf` overflow); values are unit-agnostic `u64`s — by convention this
//! workspace uses microseconds for durations (`*_us` names) and bytes for
//! sizes (`*_bytes`).
//!
//! Histogram increments order the bucket/sum updates *before* the count
//! update, and [`Registry::snapshot`] reads the count first, so a sampled
//! histogram always satisfies `sum(buckets) >= count` — the invariant the
//! concurrency tests pin down. After all writers quiesce the snapshot is
//! exact.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone counter. Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (current level of something: live connections, live
/// sessions). Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Strictly increasing finite bucket upper bounds.
    bounds: Vec<u64>,
    /// One slot per bound plus the trailing `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations. Cloning shares the
/// underlying atomics.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let inner = &*self.0;
        let idx = inner.bounds.partition_point(|bound| *bound < value);
        inner.buckets[idx].fetch_add(1, Ordering::SeqCst);
        inner.sum.fetch_add(value, Ordering::SeqCst);
        // Last, so a snapshot that reads `count` first sees every bucket
        // increment belonging to the counted observations.
        inner.count.fetch_add(1, Ordering::SeqCst);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::SeqCst)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::SeqCst)
    }

    fn sample(&self, name: &str, labels: &[LabelPair]) -> HistogramSample {
        let inner = &*self.0;
        let count = inner.count.load(Ordering::SeqCst);
        let buckets = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::SeqCst))
            .collect();
        HistogramSample {
            name: name.to_string(),
            labels: labels.to_vec(),
            bounds: inner.bounds.clone(),
            buckets,
            sum: inner.sum.load(Ordering::SeqCst),
            count,
        }
    }
}

/// One `key="value"` label on a series.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LabelPair {
    /// The label key.
    pub key: String,
    /// The label value.
    pub value: String,
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

type SeriesKey = (String, Vec<LabelPair>);

/// The process-wide series registry. See the [module docs](self).
#[derive(Default)]
pub struct Registry {
    series: Mutex<BTreeMap<SeriesKey, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        (
            name.to_string(),
            labels
                .iter()
                .map(|(key, value)| LabelPair {
                    key: (*key).to_string(),
                    value: (*value).to_string(),
                })
                .collect(),
        )
    }

    /// Gets or creates the unlabeled counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Gets or creates the counter `name` with the given labels.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different metric kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut series = self.series.lock().expect("metrics registry lock");
        match series
            .entry(Registry::key(name, labels))
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(counter) => counter.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Gets or creates the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Gets or creates the gauge `name` with the given labels.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different metric kind.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut series = self.series.lock().expect("metrics registry lock");
        match series
            .entry(Registry::key(name, labels))
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(gauge) => gauge.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Gets or creates the unlabeled histogram `name` with the given bucket
    /// bounds (ignored if the series already exists).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, &[], bounds)
    }

    /// Gets or creates the histogram `name` with the given labels and
    /// bucket bounds (bounds are ignored if the series already exists).
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different metric kind, or
    /// if `bounds` is not strictly increasing.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        let mut series = self.series.lock().expect("metrics registry lock");
        match series
            .entry(Registry::key(name, labels))
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(histogram) => histogram.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Samples every registered series into a serializable snapshot, sorted
    /// by name then labels. Histogram samples satisfy
    /// `sum(buckets) >= count` even while writers are live; once writers
    /// quiesce the snapshot is exact.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let series = self.series.lock().expect("metrics registry lock");
        let mut snapshot = MetricsSnapshot::default();
        for ((name, labels), metric) in series.iter() {
            match metric {
                Metric::Counter(counter) => snapshot.counters.push(CounterSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: counter.get(),
                }),
                Metric::Gauge(gauge) => snapshot.gauges.push(GaugeSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: gauge.get(),
                }),
                Metric::Histogram(histogram) => {
                    snapshot.histograms.push(histogram.sample(name, labels));
                }
            }
        }
        snapshot
    }
}

/// One sampled counter series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// The series name.
    pub name: String,
    /// The series labels, sorted as registered.
    pub labels: Vec<LabelPair>,
    /// The sampled value.
    pub value: u64,
}

/// One sampled gauge series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// The series name.
    pub name: String,
    /// The series labels, sorted as registered.
    pub labels: Vec<LabelPair>,
    /// The sampled value.
    pub value: i64,
}

/// One sampled histogram series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// The series name.
    pub name: String,
    /// The series labels, sorted as registered.
    pub labels: Vec<LabelPair>,
    /// Finite bucket upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts: one per bound plus the trailing
    /// `+Inf` overflow bucket (`buckets.len() == bounds.len() + 1`).
    pub buckets: Vec<u64>,
    /// Sum of observed values.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

/// A point-in-time sample of every registered series. Serializable (the
/// `Metrics` server verb embeds it) and renderable as Prometheus text.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Sampled counters, sorted by name then labels.
    pub counters: Vec<CounterSample>,
    /// Sampled gauges, sorted by name then labels.
    pub gauges: Vec<GaugeSample>,
    /// Sampled histograms, sorted by name then labels.
    pub histograms: Vec<HistogramSample>,
}

fn label_block(labels: &[LabelPair], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|l| format!("{}=\"{}\"", l.key, l.value))
        .collect();
    if let Some((key, value)) = extra {
        parts.push(format!("{key}=\"{value}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format: one
    /// `# TYPE` comment per metric name, `name{labels} value` sample lines,
    /// and the conventional `_bucket`/`_sum`/`_count` expansion (with
    /// cumulative `le` buckets) for histograms.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if last_type_line.as_deref() != Some(line.as_str()) {
                out.push_str(&line);
                last_type_line = Some(line);
            }
        };
        for sample in &self.counters {
            type_line(&mut out, &sample.name, "counter");
            out.push_str(&format!(
                "{}{} {}\n",
                sample.name,
                label_block(&sample.labels, None),
                sample.value
            ));
        }
        for sample in &self.gauges {
            type_line(&mut out, &sample.name, "gauge");
            out.push_str(&format!(
                "{}{} {}\n",
                sample.name,
                label_block(&sample.labels, None),
                sample.value
            ));
        }
        for sample in &self.histograms {
            type_line(&mut out, &sample.name, "histogram");
            let mut cumulative = 0u64;
            for (i, bucket) in sample.buckets.iter().enumerate() {
                cumulative += bucket;
                let le = sample
                    .bounds
                    .get(i)
                    .map_or_else(|| "+Inf".to_string(), u64::to_string);
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    sample.name,
                    label_block(&sample.labels, Some(("le", &le))),
                    cumulative
                ));
            }
            out.push_str(&format!(
                "{}_sum{} {}\n",
                sample.name,
                label_block(&sample.labels, None),
                sample.sum
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                sample.name,
                label_block(&sample.labels, None),
                sample.count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let registry = Registry::new();
        let c = registry.counter("pm_test_total");
        c.inc();
        c.add(4);
        assert_eq!(registry.counter("pm_test_total").get(), 5);
        let g = registry.gauge("pm_test_level");
        g.add(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
        g.set(7);
        assert_eq!(registry.gauge("pm_test_level").get(), 7);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let registry = Registry::new();
        registry
            .counter_with("pm_verbs_total", &[("verb", "submit")])
            .add(2);
        registry
            .counter_with("pm_verbs_total", &[("verb", "run")])
            .inc();
        let snapshot = registry.snapshot();
        let values: Vec<u64> = snapshot.counters.iter().map(|c| c.value).collect();
        assert_eq!(values, [1, 2], "sorted by labels: run before submit");
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let registry = Registry::new();
        let h = registry.histogram("pm_lat_us", &[10, 100, 1000]);
        for v in [3, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let sample = &registry.snapshot().histograms[0];
        assert_eq!(sample.buckets, [2, 2, 0, 1], "bounds are inclusive");
        assert_eq!(sample.count, 5);
        assert_eq!(sample.sum, 3 + 10 + 11 + 100 + 5000);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_typed() {
        let registry = Registry::new();
        registry.counter("pm_total").add(2);
        let h = registry.histogram_with("pm_lat_us", &[("verb", "run")], &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE pm_total counter\npm_total 2\n"));
        assert!(text.contains("# TYPE pm_lat_us histogram\n"));
        assert!(text.contains("pm_lat_us_bucket{verb=\"run\",le=\"10\"} 1\n"));
        assert!(text.contains("pm_lat_us_bucket{verb=\"run\",le=\"100\"} 2\n"));
        assert!(text.contains("pm_lat_us_bucket{verb=\"run\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("pm_lat_us_sum{verb=\"run\"} 555\n"));
        assert!(text.contains("pm_lat_us_count{verb=\"run\"} 3\n"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("pm_x");
        registry.gauge("pm_x");
    }
}
