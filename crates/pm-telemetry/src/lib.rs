//! Observability for the election stack: metrics and structured logging.
//!
//! Everything here is *out-of-band* by design — nothing in this crate may
//! influence an election's byte-deterministic outcome, only observe it.
//! Two facilities:
//!
//! * [`metrics`] — a process-wide [`Registry`] of named series: atomic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s, optionally
//!   labeled (`verb="submit"`, `phase="dle"`). Handles are cheap `Arc`
//!   clones; every increment/observe is a handful of atomic operations and
//!   takes no lock (the registry mutex guards only series *registration*).
//!   [`Registry::snapshot`] samples every series into a serializable
//!   [`MetricsSnapshot`], which renders to Prometheus text exposition via
//!   [`MetricsSnapshot::to_prometheus`].
//! * [`logging`] — a leveled logging facade over stderr with two formats:
//!   human text (`[WARN pm-server::transport] message`) and JSON lines
//!   (`{"ts_ms":…,"level":"warn","target":…,"msg":…}`). The [`error!`],
//!   [`warn!`], [`info!`] and [`debug!`] macros check the level with one
//!   relaxed atomic load before doing any formatting, so disabled levels
//!   cost nothing measurable. While a trace recorder is installed,
//!   `warn!`/`error!` lines additionally land on the trace timeline as
//!   instant events — one place to see logs *and* spans.
//! * [`trace`] — a span/event recorder over per-thread bounded ring
//!   buffers: scoped spans ([`trace::span`]), after-the-fact spans
//!   ([`trace::span_at`]) and instant events ([`trace::instant`]), drained
//!   ([`trace::drain`]) into Chrome trace-event JSON (Perfetto /
//!   `chrome://tracing`) or folded-stack lines for flamegraphs. Disabled,
//!   every call site costs one relaxed atomic load.
//!
//! The serialized snapshot types intentionally derive the full protocol
//! bundle (`Clone`/`Debug`/`PartialEq`/`Serialize`/`Deserialize`) so a
//! server can embed them in wire responses. Wall-clock values make such
//! responses non-reproducible across runs — keep them out of golden-diffed
//! transcripts, exactly like a `stats` verb.

pub mod logging;
pub mod metrics;
pub mod trace;

pub use logging::Level;
pub use metrics::{
    Counter, CounterSample, Gauge, GaugeSample, Histogram, HistogramSample, LabelPair,
    MetricsSnapshot, Registry,
};
pub use trace::{EventKind, SpanGuard, Trace, TraceEvent};
