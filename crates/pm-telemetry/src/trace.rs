//! The span/event recorder: a causal, time-ordered view of where rounds,
//! sweeps and requests go, complementing the [`metrics`](crate::metrics)
//! registry's aggregates.
//!
//! One process-wide recorder is installed with [`install`] (or
//! [`install_at`] to share an epoch `Instant` with other uptime clocks).
//! While installed, instrumented code records three kinds of events into
//! **per-thread bounded ring buffers**:
//!
//! * [`span`] — a scoped `Begin`/`End` pair bracketing a region (sweep,
//!   session slice, verb, connection); the guard ends the span on drop;
//! * [`span_at`] — a completed span recorded after the fact from two
//!   `Instant`s (a round that was timed anyway by the profiler);
//! * [`instant`] — a point event (fault firing, perturbation, checkpoint
//!   write, eviction, restore, warn/error log line).
//!
//! Span ids form a per-thread hierarchy — each event records the id of the
//! span open on its thread when it was pushed, so a drained trace
//! reconstructs session → phase → round nesting. Timestamps are monotonic
//! microseconds since the recorder's epoch. When a thread's ring buffer is
//! full the **oldest** event is dropped and counted; [`dropped`] exposes
//! the total so servers can surface it as a metric.
//!
//! The disabled path is one relaxed atomic load per call site — no clock
//! read, no allocation, no lock. Like everything in this crate, tracing is
//! out-of-band by contract: recording never feeds back into elections,
//! scheduling, or any byte-deterministic output.
//!
//! [`drain`] snapshots and clears the buffers into a [`Trace`], which
//! exports as Chrome trace-event JSON ([`Trace::to_chrome_json`], loadable
//! in Perfetto or `chrome://tracing`) or folded-stack lines
//! ([`Trace::to_folded`], the input format of flamegraph tooling). Both
//! exporters repair truncation damage first: an `End` whose `Begin` was
//! dropped by the ring is discarded, and a span still open at drain time is
//! closed at the trace's last timestamp.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::logging::Level;

/// Default per-thread ring capacity (events), sized so a full election run
/// of a 10k-particle scenario fits without drops.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// What one [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ph:"B"` in Chrome trace JSON).
    Begin,
    /// A span closed (`ph:"E"`).
    End,
    /// A point event (`ph:"i"`).
    Instant,
}

/// One recorded event. Fields are public so tests and exporters can build
/// and inspect traces directly; instrumented code goes through [`span`],
/// [`span_at`] and [`instant`] instead.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Global push order — a total order consistent with each thread's
    /// local order (used to merge the per-thread rings deterministically).
    pub seq: u64,
    /// Microseconds since the recorder's epoch; monotone per thread.
    pub ts_us: u64,
    /// Begin, End, or Instant.
    pub kind: EventKind,
    /// A low-cardinality grouping key (`"round"`, `"scheduler"`, `"verb"`,
    /// `"fault"`, `"log"`, …).
    pub cat: &'static str,
    /// The event name shown in trace viewers and folded stacks.
    pub name: Cow<'static, str>,
    /// Recorder-assigned thread id (dense, starting at 1).
    pub tid: u64,
    /// Span id for Begin/End pairs; 0 for instants.
    pub id: u64,
    /// Id of the span open on this thread when the event was pushed; 0 at
    /// top level.
    pub parent: u64,
}

/// One thread's bounded ring. The mutex is uncontended in steady state —
/// the owning thread pushes; other threads touch it only at drain.
struct ThreadBuffer {
    tid: u64,
    events: Mutex<VecDeque<TraceEvent>>,
}

/// The installed recorder: epoch, id wells, and the thread-buffer registry.
struct Recorder {
    epoch: Instant,
    capacity: usize,
    generation: u64,
    next_tid: AtomicU64,
    next_span: AtomicU64,
    next_seq: AtomicU64,
    dropped: AtomicU64,
    threads: Mutex<Vec<Arc<ThreadBuffer>>>,
}

/// The fast gate every call site checks first: one relaxed load.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Bumped on every install/uninstall so stale thread-local buffers and span
/// guards from a previous recorder never write into the current one.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// The recorder itself; the mutex guards installation, not recording.
static RECORDER: Mutex<Option<Arc<Recorder>>> = Mutex::new(None);

thread_local! {
    static LOCAL: RefCell<Local> = const {
        RefCell::new(Local {
            generation: 0,
            recorder: None,
            buffer: None,
            stack: Vec::new(),
        })
    };
}

/// Per-thread recording state: the cached recorder and registered ring
/// (revalidated against [`GENERATION`] with one relaxed load, so steady-
/// state recording never touches the global mutex) plus the open-span
/// stack that parents new events.
struct Local {
    generation: u64,
    recorder: Option<Arc<Recorder>>,
    buffer: Option<Arc<ThreadBuffer>>,
    stack: Vec<u64>,
}

/// Installs a process-wide recorder with per-thread rings of `capacity`
/// events and an epoch of "now". Returns `false` (and changes nothing) if
/// a recorder is already installed.
pub fn install(capacity: usize) -> bool {
    install_at(capacity, Instant::now())
}

/// Like [`install`], with an explicit epoch `Instant` — pass the server's
/// start instant so trace timestamps, `/stats` uptime and scrape ages all
/// share one time base.
pub fn install_at(capacity: usize, epoch: Instant) -> bool {
    let mut slot = lock_recorder();
    if slot.is_some() {
        return false;
    }
    let generation = GENERATION.fetch_add(1, Ordering::SeqCst) + 1;
    *slot = Some(Arc::new(Recorder {
        epoch,
        capacity: capacity.max(2),
        generation,
        next_tid: AtomicU64::new(1),
        next_span: AtomicU64::new(1),
        next_seq: AtomicU64::new(1),
        dropped: AtomicU64::new(0),
        threads: Mutex::new(Vec::new()),
    }));
    ACTIVE.store(true, Ordering::SeqCst);
    true
}

/// Uninstalls the recorder, returning everything it still held (`None` if
/// none was installed). Guards from the old recorder become inert.
pub fn uninstall() -> Option<Trace> {
    let recorder = {
        let mut slot = lock_recorder();
        ACTIVE.store(false, Ordering::SeqCst);
        GENERATION.fetch_add(1, Ordering::SeqCst);
        slot.take()?
    };
    Some(collect(&recorder))
}

/// Whether a recorder is installed and recording — the call sites' fast
/// path, and the gate callers use before building owned event names.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Pauses or resumes recording without uninstalling (benchmarks toggle
/// this between paired reps). Returns `false` if no recorder is installed.
pub fn set_enabled(active: bool) -> bool {
    let slot = lock_recorder();
    if slot.is_none() {
        return false;
    }
    ACTIVE.store(active, Ordering::SeqCst);
    true
}

/// Total events dropped so far by full rings (0 if no recorder).
pub fn dropped() -> u64 {
    lock_recorder()
        .as_ref()
        .map_or(0, |r| r.dropped.load(Ordering::Relaxed))
}

/// The installed recorder's epoch, if any.
pub fn epoch() -> Option<Instant> {
    lock_recorder().as_ref().map(|r| r.epoch)
}

/// Snapshots and clears every thread ring into a [`Trace`] (empty if no
/// recorder is installed). Recording continues; spans still open keep
/// their ids, so a later drain can still pair their `End` events — the
/// exporters treat the unmatched halves gracefully either way.
pub fn drain() -> Trace {
    let recorder = {
        let slot = lock_recorder();
        match slot.as_ref() {
            Some(recorder) => Arc::clone(recorder),
            None => return Trace::default(),
        }
    };
    collect(&recorder)
}

/// Opens a span; the returned guard ends it on drop. When no recorder is
/// active this is one atomic load and the guard is inert. Build owned
/// names (`format!`) behind an [`enabled`] check to keep the disabled path
/// allocation-free.
#[must_use = "the span ends when the guard drops"]
pub fn span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    let name = name.into();
    let mut guard = SpanGuard::inert();
    with_recorder(|recorder, local, tid| {
        let id = recorder.next_span.fetch_add(1, Ordering::Relaxed);
        let ts_us = micros_since(recorder.epoch, Instant::now());
        let parent = local.stack.last().copied().unwrap_or(0);
        push(
            recorder,
            local,
            TraceEvent {
                seq: 0,
                ts_us,
                kind: EventKind::Begin,
                cat,
                name: name.clone(),
                tid,
                id,
                parent,
            },
        );
        local.stack.push(id);
        guard = SpanGuard {
            id,
            cat,
            name,
            generation: recorder.generation,
        };
    });
    guard
}

/// Records a completed span from two instants already in hand (the
/// profiler's step timing), parented under the thread's open span. Both
/// events are pushed now, so call this only for regions that did not
/// outlive the enclosing guard.
pub fn span_at(
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    start: Instant,
    end: Instant,
) {
    if !enabled() {
        return;
    }
    let name = name.into();
    with_recorder(|recorder, local, tid| {
        let id = recorder.next_span.fetch_add(1, Ordering::Relaxed);
        let begin_us = micros_since(recorder.epoch, start);
        let end_us = micros_since(recorder.epoch, end).max(begin_us);
        let parent = local.stack.last().copied().unwrap_or(0);
        push(
            recorder,
            local,
            TraceEvent {
                seq: 0,
                ts_us: begin_us,
                kind: EventKind::Begin,
                cat,
                name: name.clone(),
                tid,
                id,
                parent,
            },
        );
        push(
            recorder,
            local,
            TraceEvent {
                seq: 0,
                ts_us: end_us,
                kind: EventKind::End,
                cat,
                name,
                tid,
                id,
                parent,
            },
        );
    });
}

/// Records a point event, parented under the thread's open span.
pub fn instant(cat: &'static str, name: impl Into<Cow<'static, str>>) {
    if !enabled() {
        return;
    }
    let name = name.into();
    with_recorder(|recorder, local, tid| {
        let ts_us = micros_since(recorder.epoch, Instant::now());
        let parent = local.stack.last().copied().unwrap_or(0);
        push(
            recorder,
            local,
            TraceEvent {
                seq: 0,
                ts_us,
                kind: EventKind::Instant,
                cat,
                name,
                tid,
                id: 0,
                parent,
            },
        );
    });
}

/// The logging facade's bridge: a `warn!`/`error!` line becomes an instant
/// event so logs land on the same timeline as spans. The message was
/// already formatted for the log line; this only concatenates, and only
/// when a recorder is active.
pub(crate) fn log_event(level: Level, target: &str, msg: &str) {
    if !enabled() {
        return;
    }
    instant("log", format!("{} {target}: {msg}", level.as_upper()));
}

/// Ends its span on drop. Inert (and free) when tracing was disabled at
/// creation or the recorder changed since.
pub struct SpanGuard {
    id: u64,
    cat: &'static str,
    name: Cow<'static, str>,
    generation: u64,
}

impl SpanGuard {
    fn inert() -> SpanGuard {
        SpanGuard {
            id: 0,
            cat: "",
            name: Cow::Borrowed(""),
            generation: 0,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let generation = self.generation;
        let id = self.id;
        let cat = self.cat;
        let name = std::mem::replace(&mut self.name, Cow::Borrowed(""));
        with_recorder(move |recorder, local, tid| {
            if recorder.generation != generation {
                return;
            }
            let ts_us = micros_since(recorder.epoch, Instant::now());
            // Unwind to this span: inner guards leaked or dropped out of
            // order must not corrupt the parent chain for later events.
            if let Some(at) = local.stack.iter().rposition(|open| *open == id) {
                local.stack.truncate(at);
            }
            let parent = local.stack.last().copied().unwrap_or(0);
            push(
                recorder,
                local,
                TraceEvent {
                    seq: 0,
                    ts_us,
                    kind: EventKind::End,
                    cat,
                    name,
                    tid,
                    id,
                    parent,
                },
            );
        });
    }
}

fn lock_recorder() -> std::sync::MutexGuard<'static, Option<Arc<Recorder>>> {
    RECORDER
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Saturating microseconds from `epoch` to `at` (0 if `at` predates it).
fn micros_since(epoch: Instant, at: Instant) -> u64 {
    u64::try_from(at.saturating_duration_since(epoch).as_micros()).unwrap_or(u64::MAX)
}

/// Runs `f` with the current recorder and this thread's registered ring.
/// Steady state costs one relaxed [`GENERATION`] load plus the
/// thread-local access; the global mutex is taken only when the recorder
/// changed since this thread last recorded (then the thread registers a
/// fresh ring and clears its span stack). A no-op when no recorder is
/// installed.
fn with_recorder(f: impl FnOnce(&Recorder, &mut Local, u64)) {
    LOCAL.with(|cell| {
        let Ok(mut local) = cell.try_borrow_mut() else {
            // Re-entrant recording (an instrumented callee inside a
            // recording callback) is silently skipped.
            return;
        };
        let generation = GENERATION.load(Ordering::Relaxed);
        if local.generation != generation || local.recorder.is_none() {
            let recorder = lock_recorder().as_ref().map(Arc::clone);
            local.stack.clear();
            match recorder {
                Some(recorder) => {
                    let tid = recorder.next_tid.fetch_add(1, Ordering::Relaxed);
                    let buffer = Arc::new(ThreadBuffer {
                        tid,
                        events: Mutex::new(VecDeque::with_capacity(recorder.capacity.min(1024))),
                    });
                    recorder
                        .threads
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .push(Arc::clone(&buffer));
                    local.generation = recorder.generation;
                    local.recorder = Some(recorder);
                    local.buffer = Some(buffer);
                }
                None => {
                    local.generation = generation;
                    local.recorder = None;
                    local.buffer = None;
                    return;
                }
            }
        }
        let Some(recorder) = local.recorder.as_ref().map(Arc::clone) else {
            return;
        };
        let tid = local.buffer.as_ref().map_or(0, |b| b.tid);
        f(&recorder, &mut local, tid);
    });
}

/// Pushes one event into the thread's ring, dropping the oldest event (and
/// counting the drop) when full.
fn push(recorder: &Recorder, local: &mut Local, mut event: TraceEvent) {
    let Some(buffer) = local.buffer.as_ref() else {
        return;
    };
    event.seq = recorder.next_seq.fetch_add(1, Ordering::Relaxed);
    let mut events = buffer
        .events
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if events.len() >= recorder.capacity {
        events.pop_front();
        recorder.dropped.fetch_add(1, Ordering::Relaxed);
    }
    events.push_back(event);
}

/// Merges and clears every thread ring, sorted by global push order.
fn collect(recorder: &Recorder) -> Trace {
    let threads = recorder
        .threads
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut events = Vec::new();
    for buffer in threads.iter() {
        let mut ring = buffer
            .events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        events.extend(ring.drain(..));
    }
    events.sort_by_key(|e| e.seq);
    Trace {
        events,
        dropped: recorder.dropped.load(Ordering::Relaxed),
    }
}

/// A drained snapshot of the recorder: merged events plus the cumulative
/// ring-drop count at drain time.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events in global push order (per-thread timestamp order within).
    pub events: Vec<TraceEvent>,
    /// Events the rings dropped (oldest-first) over the recorder's
    /// lifetime, up to this drain.
    pub dropped: u64,
}

impl Trace {
    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A balanced per-thread copy of the events: `End`s whose `Begin` fell
    /// off the ring are discarded, and spans still open at the end are
    /// closed at the trace's final timestamp — so every `Begin` pairs with
    /// exactly one later `End` on the same thread, LIFO-nested.
    fn balanced(&self) -> Vec<TraceEvent> {
        let last_ts = self.events.iter().map(|e| e.ts_us).max().unwrap_or(0);
        let mut tids: Vec<u64> = self.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        let mut out = Vec::with_capacity(self.events.len());
        for tid in tids {
            let mut open: Vec<TraceEvent> = Vec::new();
            for event in self.events.iter().filter(|e| e.tid == tid) {
                match event.kind {
                    EventKind::Begin => {
                        open.push(event.clone());
                        out.push(event.clone());
                    }
                    EventKind::End => {
                        // Close every span opened after the one this End
                        // belongs to (their Ends were lost to the ring),
                        // then the span itself; orphaned Ends are dropped.
                        if let Some(at) = open.iter().rposition(|b| b.id == event.id) {
                            while open.len() > at + 1 {
                                let begin = open.pop().expect("len > at+1");
                                out.push(end_of(&begin, event.ts_us));
                            }
                            open.pop();
                            out.push(event.clone());
                        }
                    }
                    EventKind::Instant => out.push(event.clone()),
                }
            }
            while let Some(begin) = open.pop() {
                out.push(end_of(&begin, last_ts));
            }
        }
        out
    }

    /// Renders the trace as Chrome trace-event JSON — load the result in
    /// Perfetto or `chrome://tracing`. Structurally valid by construction:
    /// every `B` has a matching later `E` on its thread and per-thread
    /// timestamps are monotone.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 64);
        out.push_str("{\"traceEvents\":[");
        for (i, event) in self.balanced().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ph = match event.kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Instant => "i",
            };
            out.push_str("{\"name\":\"");
            escape_into(&event.name, &mut out);
            out.push_str("\",\"cat\":\"");
            escape_into(event.cat, &mut out);
            let _ = write!(
                out,
                "\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":{}",
                event.ts_us, event.tid
            );
            if event.kind == EventKind::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            if event.id != 0 || event.parent != 0 {
                let _ = write!(
                    out,
                    ",\"args\":{{\"span\":{},\"parent\":{}}}",
                    event.id, event.parent
                );
            }
            out.push('}');
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped\":{}}}}}",
            self.dropped
        );
        out
    }

    /// Renders the trace as folded-stack lines (`a;b;c <self-µs>`), the
    /// input format of flamegraph tooling. Each span's *self* time (its
    /// duration minus its children's) is charged to its full stack path;
    /// identical paths across threads merge. Instants contribute nothing.
    pub fn to_folded(&self) -> String {
        use std::collections::BTreeMap;
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        let balanced = self.balanced();
        let mut tids: Vec<u64> = balanced.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            // (name, start, child time) per open span.
            let mut stack: Vec<(String, u64, u64)> = Vec::new();
            for event in balanced.iter().filter(|e| e.tid == tid) {
                match event.kind {
                    EventKind::Begin => stack.push((event.name.to_string(), event.ts_us, 0)),
                    EventKind::End => {
                        let Some((name, start, child_us)) = stack.pop() else {
                            continue;
                        };
                        let total = event.ts_us.saturating_sub(start);
                        let self_us = total.saturating_sub(child_us);
                        if let Some((_, _, parent_child)) = stack.last_mut() {
                            *parent_child += total;
                        }
                        let mut path = String::new();
                        for (frame, _, _) in &stack {
                            path.push_str(frame);
                            path.push(';');
                        }
                        path.push_str(&name);
                        *folded.entry(path).or_insert(0) += self_us;
                    }
                    EventKind::Instant => {}
                }
            }
        }
        let mut out = String::new();
        for (path, self_us) in folded {
            let _ = writeln!(out, "{path} {self_us}");
        }
        out
    }
}

/// The synthesized `End` closing `begin` at `ts_us`.
fn end_of(begin: &TraceEvent, ts_us: u64) -> TraceEvent {
    TraceEvent {
        kind: EventKind::End,
        ts_us: ts_us.max(begin.ts_us),
        ..begin.clone()
    }
}

/// Minimal JSON string escaping, matching the logging facade's.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An event with only the fields the exporters look at.
    fn event(
        seq: u64,
        ts_us: u64,
        kind: EventKind,
        name: &'static str,
        tid: u64,
        id: u64,
    ) -> TraceEvent {
        TraceEvent {
            seq,
            ts_us,
            kind,
            cat: "test",
            name: Cow::Borrowed(name),
            tid,
            id,
            parent: 0,
        }
    }

    #[test]
    fn folded_charges_self_time_per_stack_path() {
        // A(0..100) > B(10..30), C(40..80) > D(50..60).
        let trace = Trace {
            events: vec![
                event(1, 0, EventKind::Begin, "A", 1, 1),
                event(2, 10, EventKind::Begin, "B", 1, 2),
                event(3, 30, EventKind::End, "B", 1, 2),
                event(4, 40, EventKind::Begin, "C", 1, 3),
                event(5, 50, EventKind::Begin, "D", 1, 4),
                event(6, 60, EventKind::End, "D", 1, 4),
                event(7, 80, EventKind::End, "C", 1, 3),
                event(8, 100, EventKind::End, "A", 1, 1),
            ],
            dropped: 0,
        };
        assert_eq!(trace.to_folded(), "A 40\nA;B 20\nA;C 30\nA;C;D 10\n");
    }

    #[test]
    fn balancing_drops_orphan_ends_and_closes_open_begins() {
        let trace = Trace {
            events: vec![
                // Orphan End: its Begin fell off the ring.
                event(1, 5, EventKind::End, "lost", 1, 9),
                event(2, 10, EventKind::Begin, "open", 1, 1),
                event(3, 20, EventKind::Instant, "mark", 1, 0),
            ],
            dropped: 1,
        };
        let balanced = trace.balanced();
        let kinds: Vec<EventKind> = balanced.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [EventKind::Begin, EventKind::Instant, EventKind::End],
            "orphan End discarded, open Begin closed at trace end"
        );
        assert_eq!(balanced[2].ts_us, 20, "closed at the last timestamp");
    }

    #[test]
    fn interleaved_loss_closes_inner_spans_before_the_outer_end() {
        // outer(0..) > inner(10..) whose End was lost; outer's End at 50
        // must force inner closed first to keep LIFO nesting.
        let trace = Trace {
            events: vec![
                event(1, 0, EventKind::Begin, "outer", 1, 1),
                event(2, 10, EventKind::Begin, "inner", 1, 2),
                event(3, 50, EventKind::End, "outer", 1, 1),
            ],
            dropped: 1,
        };
        let balanced = trace.balanced();
        let order: Vec<(&str, EventKind)> =
            balanced.iter().map(|e| (e.name.as_ref(), e.kind)).collect();
        assert_eq!(
            order,
            [
                ("outer", EventKind::Begin),
                ("inner", EventKind::Begin),
                ("inner", EventKind::End),
                ("outer", EventKind::End),
            ]
        );
    }

    #[test]
    fn chrome_json_escapes_names_and_reports_drops() {
        let trace = Trace {
            events: vec![event(1, 3, EventKind::Instant, "say \"hi\"", 2, 0)],
            dropped: 7,
        };
        let json = trace.to_chrome_json();
        assert!(json.contains("\"name\":\"say \\\"hi\\\"\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"tid\":2"));
        assert!(json.ends_with("\"otherData\":{\"dropped\":7}}"));
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let trace = Trace::default();
        assert!(trace.is_empty());
        assert_eq!(
            trace.to_chrome_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":0}}"
        );
        assert_eq!(trace.to_folded(), "");
    }
}
