//! Integration tests for the live trace recorder: the process-wide
//! install/drain lifecycle, ring wraparound accounting, exporter structural
//! validity, and the logging-facade bridge.
//!
//! The recorder is process-global, so every test serializes through
//! [`recorder_lock`] and uninstalls via a drop guard — a panicking test
//! must not leave a recorder behind for its neighbours.

use pm_telemetry::trace;
use pm_telemetry::warn;
use serde_json::Value;
use std::sync::Mutex;
use std::time::Instant;

static RECORDER_LOCK: Mutex<()> = Mutex::new(());

/// Serializes recorder tests and guarantees uninstallation afterwards.
struct Installed<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

impl<'a> Installed<'a> {
    fn new(capacity: usize) -> Installed<'a> {
        let lock = RECORDER_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // A previous panicking test may have leaked a recorder.
        let _ = trace::uninstall();
        assert!(trace::install(capacity), "no recorder should be installed");
        Installed { _lock: lock }
    }
}

impl Drop for Installed<'_> {
    fn drop(&mut self) {
        let _ = trace::uninstall();
    }
}

#[test]
fn empty_recorder_drains_to_an_empty_valid_trace() {
    let _recorder = Installed::new(64);
    let trace = trace::drain();
    assert!(trace.is_empty());
    assert_eq!(trace.dropped, 0);
    let json = trace.to_chrome_json();
    let parsed: Value = serde_json::from_str(&json).expect("chrome JSON parses");
    assert_eq!(
        parsed.get("traceEvents").and_then(Value::as_array),
        Some(&[][..])
    );
    assert_eq!(trace.to_folded(), "");
}

#[test]
fn wraparound_drops_oldest_and_counts_every_drop() {
    let _recorder = Installed::new(4);
    for i in 0..10 {
        trace::instant("test", format!("event-{i}"));
    }
    let trace = trace::drain();
    assert_eq!(trace.events.len(), 4, "ring keeps only the newest capacity");
    assert_eq!(trace.dropped, 6, "drop counter matches the events lost");
    let names: Vec<&str> = trace.events.iter().map(|e| e.name.as_ref()).collect();
    assert_eq!(
        names,
        ["event-6", "event-7", "event-8", "event-9"],
        "oldest events were the ones dropped"
    );
}

#[test]
fn spans_nest_and_parent_ids_form_the_hierarchy() {
    let _recorder = Installed::new(1024);
    {
        let _session = trace::span("session", "session:test");
        let _phase = trace::span("phase", "phase:dle");
        let before = Instant::now();
        trace::span_at("round", "dle", before, Instant::now());
        trace::instant("fault", "fault:removals@r3");
    }
    let trace = trace::drain();
    let begin = |name: &str| {
        trace
            .events
            .iter()
            .find(|e| e.kind == trace::EventKind::Begin && e.name == name)
            .unwrap_or_else(|| panic!("no begin event `{name}`"))
    };
    let session = begin("session:test");
    let phase = begin("phase:dle");
    let round = begin("dle");
    assert_eq!(session.parent, 0, "session is a root span");
    assert_eq!(phase.parent, session.id, "phase nests under session");
    assert_eq!(round.parent, phase.id, "round nests under phase");
    let fault = trace
        .events
        .iter()
        .find(|e| e.kind == trace::EventKind::Instant && e.cat == "fault")
        .expect("fault instant recorded");
    assert_eq!(
        fault.parent, phase.id,
        "instants parent under the open span"
    );
}

#[test]
fn chrome_export_is_balanced_with_monotone_timestamps() {
    let _recorder = Installed::new(1024);
    {
        let _outer = trace::span("test", "outer");
        let _inner = trace::span("test", "inner");
        trace::instant("test", "mark");
    }
    // `inner` and `outer` guards dropped in reverse creation order above;
    // leave one span open across the drain to exercise synthesis.
    let _open = trace::span("test", "left-open");
    let json = trace::drain().to_chrome_json();
    let parsed: Value = serde_json::from_str(&json).expect("chrome JSON parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    // Per-tid: B/E balanced, LIFO, timestamps monotone.
    let mut stacks: std::collections::BTreeMap<i64, Vec<String>> = Default::default();
    let mut last_ts: std::collections::BTreeMap<i64, f64> = Default::default();
    for event in events {
        let ph = match event.get("ph") {
            Some(Value::Str(ph)) => ph.clone(),
            other => panic!("event without ph: {other:?}"),
        };
        let tid = match event.get("tid") {
            Some(Value::Int(t)) => *t,
            Some(Value::UInt(t)) => *t as i64,
            other => panic!("event without tid: {other:?}"),
        };
        let ts = match event.get("ts") {
            Some(Value::Int(t)) => *t as f64,
            Some(Value::UInt(t)) => *t as f64,
            Some(Value::Float(t)) => *t,
            other => panic!("event without ts: {other:?}"),
        };
        let name = match event.get("name") {
            Some(Value::Str(name)) => name.clone(),
            other => panic!("event without name: {other:?}"),
        };
        let prev = last_ts.insert(tid, ts).unwrap_or(0.0);
        assert!(
            ts >= prev,
            "timestamps monotone per tid ({name}: {ts} < {prev})"
        );
        let stack = stacks.entry(tid).or_default();
        match ph.as_str() {
            "B" => stack.push(name),
            "E" => {
                let top = stack
                    .pop()
                    .unwrap_or_else(|| panic!("E `{name}` with empty stack"));
                assert_eq!(top, name, "E closes the innermost open B");
            }
            "i" => {}
            other => panic!("unexpected ph `{other}`"),
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "tid {tid} left unbalanced: {stack:?}");
    }
}

#[test]
fn folded_export_reflects_live_guard_nesting() {
    let _recorder = Installed::new(1024);
    {
        let _session = trace::span("session", "session");
        let _phase = trace::span("phase", "phase");
        let before = Instant::now();
        trace::span_at("round", "round", before, Instant::now());
    }
    let folded = trace::drain().to_folded();
    let paths: Vec<&str> = folded
        .lines()
        .map(|line| line.rsplit_once(' ').expect("`path value` line").0)
        .collect();
    assert!(paths.contains(&"session"), "folded: {folded:?}");
    assert!(paths.contains(&"session;phase"), "folded: {folded:?}");
    assert!(paths.contains(&"session;phase;round"), "folded: {folded:?}");
}

#[test]
fn set_enabled_pauses_recording_without_losing_the_recorder() {
    let _recorder = Installed::new(64);
    trace::instant("test", "before");
    assert!(trace::set_enabled(false));
    assert!(!trace::enabled());
    trace::instant("test", "while-paused");
    assert!(trace::set_enabled(true));
    trace::instant("test", "after");
    let names: Vec<String> = trace::drain()
        .events
        .iter()
        .map(|e| e.name.to_string())
        .collect();
    assert_eq!(names, ["before", "after"], "paused events are not recorded");
}

#[test]
fn warn_macro_mirrors_onto_the_trace_timeline() {
    let _recorder = Installed::new(64);
    warn!("trace::test", "disk on fire ({}%)", 98);
    let trace = trace::drain();
    let log = trace
        .events
        .iter()
        .find(|e| e.cat == "log")
        .expect("warn! recorded an instant event");
    assert_eq!(log.kind, trace::EventKind::Instant);
    assert_eq!(log.name, "WARN trace::test: disk on fire (98%)");
}

#[test]
fn no_recorder_means_inert_calls_and_empty_drains() {
    let _lock = RECORDER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let _ = trace::uninstall();
    assert!(!trace::enabled());
    assert!(!trace::set_enabled(true), "nothing to enable");
    trace::instant("test", "nowhere");
    let _span = trace::span("test", "nowhere");
    drop(_span);
    assert!(trace::drain().is_empty());
    assert_eq!(trace::dropped(), 0);
    assert!(trace::uninstall().is_none());
}
