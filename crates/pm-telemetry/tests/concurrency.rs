//! The metrics registry under concurrency: many threads hammering shared
//! counters and histograms while snapshots are taken mid-flight.

use pm_telemetry::Registry;

const THREADS: usize = 8;
const OPS: u64 = 20_000;

#[test]
fn hammered_counters_lose_nothing() {
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = registry.counter("pm_hammer_total");
            scope.spawn(move || {
                for _ in 0..OPS {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(
        registry.counter("pm_hammer_total").get(),
        THREADS as u64 * OPS
    );
}

#[test]
fn hammered_histograms_account_every_observation() {
    let registry = Registry::new();
    let bounds = [4, 16, 64, 256];
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let histogram = registry.histogram("pm_hammer_us", &bounds);
            scope.spawn(move || {
                for i in 0..OPS {
                    histogram.observe((i + t as u64) % 512);
                }
            });
        }
    });
    let sample = &registry.snapshot().histograms[0];
    let total = THREADS as u64 * OPS;
    assert_eq!(sample.count, total);
    assert_eq!(sample.buckets.iter().sum::<u64>(), total);
    assert_eq!(sample.buckets.len(), bounds.len() + 1);
}

#[test]
fn snapshots_taken_mid_hammer_hold_their_invariants() {
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let histogram = registry.histogram("pm_live_us", &[10, 100]);
            let counter = registry.counter("pm_live_total");
            scope.spawn(move || {
                for i in 0..OPS {
                    histogram.observe(i % 200);
                    counter.inc();
                }
            });
        }
        // Sample while the writers are running: bucket totals must cover
        // every counted observation (`sum(buckets) >= count`), and counts
        // must be monotone between consecutive snapshots.
        let mut last_count = 0;
        for _ in 0..50 {
            let snapshot = registry.snapshot();
            let sample = &snapshot.histograms[0];
            assert!(
                sample.buckets.iter().sum::<u64>() >= sample.count,
                "a counted observation was missing its bucket increment"
            );
            assert!(sample.count >= last_count, "histogram count went backwards");
            last_count = sample.count;
        }
    });
    let total = THREADS as u64 * OPS;
    assert_eq!(registry.counter("pm_live_total").get(), total);
    assert_eq!(registry.snapshot().histograms[0].count, total);
}

#[test]
fn snapshot_serializes_and_round_trips() {
    let registry = Registry::new();
    registry
        .counter_with("pm_rt_total", &[("verb", "run")])
        .add(3);
    registry.gauge("pm_rt_level").set(-4);
    registry.histogram("pm_rt_us", &[1, 2]).observe(2);
    let snapshot = registry.snapshot();
    let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    let back: pm_telemetry::MetricsSnapshot =
        serde_json::from_str(&json).expect("snapshot deserializes");
    assert_eq!(back, snapshot);
    assert!(snapshot.to_prometheus().contains("pm_rt_us_count 1"));
}
