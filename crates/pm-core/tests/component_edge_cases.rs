//! Edge-case and cross-component tests of the pm-core algorithms that do not
//! fit a single module: degenerate shapes, configuration flags, and the
//! consistency between the pipeline's phase accounting and its components.

use pm_amoebot::scheduler::{RoundRobin, SeededRandom};
use pm_core::api::{phase, Election};
use pm_core::collect::{omp_rounds, prp_rounds, sdp_rounds, CollectSimulator};
use pm_core::dle::run_dle;
use pm_core::obd::{run_obd, CompetitionCostModel, ObdSimulator};
use pm_grid::builder::{comb, hexagon, line, parallelogram};
use pm_grid::{Point, Shape};

#[test]
fn collect_cost_model_is_monotone_and_linear() {
    for k in 1u64..64 {
        assert!(omp_rounds(k + 1) > omp_rounds(k));
        assert!(prp_rounds(k + 1) > prp_rounds(k));
        assert!(sdp_rounds(k + 1) > sdp_rounds(k));
        // Each primitive is Theta(k): bounded by a constant multiple of k.
        assert!(omp_rounds(k) <= 4 * k + 4);
        assert!(prp_rounds(k) <= 30 * k + 12);
        assert!(sdp_rounds(k) <= 5 * k + 4);
    }
}

#[test]
fn obd_on_degenerate_shapes() {
    // A single column of particles and a two-particle domino: only an outer
    // boundary, declared correctly, sums to +6 (or +4 for a single point).
    for shape in [
        line(2),
        Shape::from_points((0..6).map(|r| Point::new(0, r))),
        parallelogram(2, 2),
    ] {
        let outcome = run_obd(&shape);
        assert!(outcome.unique_outer());
        assert_eq!(outcome.decisions.len(), 1);
        assert_eq!(outcome.decisions[0].count_sum, 6);
    }
}

#[test]
fn obd_sequential_cost_model_never_changes_the_decision() {
    for shape in [hexagon(3), comb(4, 3), parallelogram(5, 3)] {
        let sim = ObdSimulator::new(&shape);
        let pipelined = sim.run_with_cost_model(CompetitionCostModel::Pipelined);
        let sequential = sim.run_with_cost_model(CompetitionCostModel::Sequential);
        assert_eq!(
            pipelined
                .decisions
                .iter()
                .map(|d| d.declared_outer)
                .collect::<Vec<_>>(),
            sequential
                .decisions
                .iter()
                .map(|d| d.declared_outer)
                .collect::<Vec<_>>(),
            "the cost model must only affect rounds, not decisions"
        );
        assert!(sequential.rounds >= pipelined.rounds);
        assert_eq!(pipelined.outer_flags, sequential.outer_flags);
    }
}

#[test]
fn pipeline_phase_accounting_matches_components() {
    let shape = hexagon(4);
    let report = Election::on(&shape)
        .scheduler(SeededRandom::new(5))
        .run()
        .unwrap();
    assert!(report.rounds_consistent());
    // OBD's rounds must agree with running the primitive standalone (it is
    // deterministic and scheduler-independent).
    assert_eq!(report.phase_rounds(phase::OBD), run_obd(&shape).rounds);
    // Collect's rounds must agree with replaying the simulator on the same
    // DLE output (the DLE phase is reproducible given the scheduler seed).
    let dle = Election::on(&shape)
        .scheduler(SeededRandom::new(5))
        .skip_reconnection()
        .run()
        .unwrap();
    let mut replay = CollectSimulator::new(dle.leader, &dle.final_positions);
    assert_eq!(replay.run().rounds, report.phase_rounds(phase::COLLECT));
}

#[test]
fn boundary_knowledge_config_only_skips_obd() {
    let shape = comb(4, 4);
    let with = Election::on(&shape)
        .scheduler(SeededRandom::new(9))
        .assume_boundary_known()
        .run()
        .unwrap();
    let without = Election::on(&shape)
        .scheduler(SeededRandom::new(9))
        .run()
        .unwrap();
    // Same scheduler seed: the DLE and Collect phases are identical; only the
    // OBD phase differs.
    assert_eq!(
        with.phase_rounds(phase::DLE),
        without.phase_rounds(phase::DLE)
    );
    assert_eq!(
        with.phase_rounds(phase::COLLECT),
        without.phase_rounds(phase::COLLECT)
    );
    assert_eq!(with.phase_rounds(phase::OBD), 0);
    assert!(without.phase_rounds(phase::OBD) > 0);
    assert_eq!(with.leader, without.leader);
}

#[test]
fn dle_on_two_and_three_particle_systems() {
    for n in [2u32, 3] {
        let outcome = run_dle(&line(n), RoundRobin, true).unwrap();
        assert!(outcome.predicate_holds());
        assert_eq!(outcome.status_counts.1 as u32, n - 1);
        assert!(!outcome.stats.ever_disconnected);
    }
}

#[test]
fn collect_handles_duplicate_leader_position_input() {
    // The particle list may or may not include the leader's own position;
    // both forms must work and collect everything.
    let positions_with = vec![Point::ORIGIN, Point::new(1, 0), Point::new(2, 0)];
    let positions_without = vec![Point::new(1, 0), Point::new(2, 0)];
    let with = CollectSimulator::new(Point::ORIGIN, &positions_with).run();
    let without = CollectSimulator::new(Point::ORIGIN, &positions_without).run();
    assert_eq!(with.final_positions.len(), 3);
    assert_eq!(without.final_positions.len(), 3);
    assert!(with.final_connected && without.final_connected);
}
