//! Round-by-round invariant checks of Algorithm DLE, corresponding to the
//! observable parts of Lemma 11 and Observation 8:
//!
//! * all particles adjacent to the same point agree on its eligibility
//!   (consistency of the distributed representation of `S_e`);
//! * a point that has become ineligible never becomes eligible again
//!   (Observation 8);
//! * decided particles never revert to undecided, and at most one particle is
//!   ever a leader;
//! * upon termination exactly one leader exists and all particles are
//!   contracted.

use pm_amoebot::scheduler::{Runner, SeededRandom};
use pm_amoebot::system::ParticleSystem;
use pm_amoebot::trace::RunStats;
use pm_core::dle::{DleAlgorithm, DleMemory, Status};
use pm_grid::builder::{annulus, hexagon, swiss_cheese};
use pm_grid::{Point, Shape, DIRECTIONS};
use std::collections::{HashMap, HashSet};

/// Collects, for every grid point adjacent to some particle head, the
/// eligibility opinions of all adjacent particles.
fn eligibility_opinions(system: &ParticleSystem<DleMemory>) -> HashMap<Point, Vec<bool>> {
    let mut opinions: HashMap<Point, Vec<bool>> = HashMap::new();
    for (_, particle) in system.iter() {
        let head = particle.head();
        for (i, d) in DIRECTIONS.iter().enumerate() {
            let target = head.neighbor(*d);
            opinions
                .entry(target)
                .or_default()
                .push(particle.memory().eligible[i]);
        }
    }
    opinions
}

fn check_dle_invariants_on(shape: Shape, seed: u64) {
    let system = ParticleSystem::from_shape(&shape, &DleAlgorithm);
    let mut runner = Runner::new(system, DleAlgorithm, SeededRandom::new(seed));
    let mut stats = RunStats::default();
    let mut ever_ineligible: HashSet<Point> = HashSet::new();
    let mut decided: HashSet<usize> = HashSet::new();
    let budget = 64 * (shape.len() as u64 + 16);

    while !runner.system().all_terminated() {
        assert!(
            stats.rounds < budget,
            "DLE did not terminate within the budget"
        );
        runner.run_round(&mut stats);
        let system = runner.system();

        // (1) Eligibility consistency: all adjacent particles agree.
        let opinions = eligibility_opinions(system);
        for (point, votes) in &opinions {
            assert!(
                votes.iter().all(|v| *v == votes[0]),
                "round {}: particles disagree on the eligibility of {point}",
                stats.rounds
            );
        }

        // (2) Observation 8: ineligibility is monotone.
        for (point, votes) in &opinions {
            if !votes[0] {
                ever_ineligible.insert(*point);
            } else {
                assert!(
                    !ever_ineligible.contains(point),
                    "round {}: point {point} became eligible again",
                    stats.rounds
                );
            }
        }

        // (3) Status monotonicity and at most one leader.
        let mut leaders = 0;
        for (id, particle) in system.iter() {
            match particle.memory().status {
                Status::Leader => {
                    leaders += 1;
                    decided.insert(id.index());
                }
                Status::Follower => {
                    decided.insert(id.index());
                }
                Status::Undecided => {
                    assert!(
                        !decided.contains(&id.index()),
                        "round {}: particle {id} reverted to undecided",
                        stats.rounds
                    );
                }
            }
        }
        assert!(leaders <= 1, "round {}: {} leaders", stats.rounds, leaders);
    }

    // Final configuration: exactly one leader, everyone contracted.
    let system = runner.system();
    let leaders = system
        .iter()
        .filter(|(_, p)| p.memory().status == Status::Leader)
        .count();
    let undecided = system
        .iter()
        .filter(|(_, p)| p.memory().status == Status::Undecided)
        .count();
    assert_eq!(leaders, 1);
    assert_eq!(undecided, 0);
    assert!(system.all_contracted());
}

#[test]
fn invariants_hold_on_a_hexagon() {
    check_dle_invariants_on(hexagon(4), 1);
}

#[test]
fn invariants_hold_on_an_annulus() {
    check_dle_invariants_on(annulus(6, 3), 2);
}

#[test]
fn invariants_hold_on_a_thin_annulus_that_disconnects() {
    check_dle_invariants_on(annulus(8, 7), 0);
}

#[test]
fn invariants_hold_on_swiss_cheese() {
    check_dle_invariants_on(swiss_cheese(6, 3), 3);
}

#[test]
fn invariants_hold_across_random_seeds_on_a_small_blob() {
    for seed in 0..5 {
        check_dle_invariants_on(pm_grid::random::random_blob(60, seed), seed);
    }
}
