//! End-to-end behaviour of the composed pipeline `OBD → DLE → Collect`
//! through the unified API (these checks predate the API unification; they
//! used to drive the removed `elect_leader` entry point).

use pm_amoebot::scheduler::{RoundRobin, SeededRandom};
use pm_core::api::{phase, Election, ElectionError};
use pm_grid::builder::dumbbell;
use pm_grid::builder::{annulus, comb, hexagon, line, swiss_cheese};
use pm_grid::random::{random_blob, random_holey_hexagon};
use pm_grid::Metric;

#[test]
fn default_pipeline_elects_and_reconnects() {
    for shape in [hexagon(3), annulus(5, 2), comb(5, 4), swiss_cheese(6, 3)] {
        let n = shape.len();
        let report = Election::on(&shape).scheduler(RoundRobin).run().unwrap();
        assert!(report.predicate_holds());
        assert_eq!(report.final_positions.len(), n);
        assert!(report.phase_rounds(phase::OBD) > 0);
        assert!(report.phase_rounds(phase::COLLECT) > 0);
        assert!(report.rounds_consistent());
    }
}

#[test]
fn random_shapes_elect_under_random_schedulers() {
    for seed in 0..3u64 {
        let shape = random_blob(120, seed);
        let report = Election::on(&shape)
            .scheduler(SeededRandom::new(seed))
            .run()
            .unwrap();
        assert!(report.predicate_holds(), "seed {seed}");
    }
    for seed in 0..2u64 {
        let shape = random_holey_hexagon(6, 0.1, seed);
        let report = Election::on(&shape).scheduler(RoundRobin).run().unwrap();
        assert!(report.predicate_holds(), "holey seed {seed}");
    }
}

#[test]
fn total_rounds_scale_linearly_without_assumption() {
    // The full pipeline is O(L_out + D) (Table 1, last row).
    let mut ratios = Vec::new();
    for radius in [3u32, 6, 9] {
        let shape = hexagon(radius);
        let metric = Metric::new(&shape);
        let denom = shape.outer_boundary_len() as f64 + metric.grid_diameter() as f64;
        let report = Election::on(&shape).scheduler(RoundRobin).run().unwrap();
        ratios.push(report.total_rounds as f64 / denom);
    }
    assert!(
        ratios.last().unwrap() < &(ratios.first().unwrap() * 2.0 + 2.0),
        "ratios {ratios:?} suggest super-linear scaling"
    );
}

#[test]
fn dumbbell_large_diameter_shape_works() {
    let shape = dumbbell(3, 12);
    let report = Election::on(&shape).scheduler(RoundRobin).run().unwrap();
    assert!(report.predicate_holds());
}

#[test]
fn line_of_one_particle() {
    let report = Election::on(&line(1)).scheduler(RoundRobin).run().unwrap();
    assert!(report.predicate_holds());
    assert_eq!(report.final_positions.len(), 1);
}

#[test]
fn error_display() {
    let e = ElectionError::InvalidInitialConfiguration("empty shape");
    assert!(e.to_string().contains("empty shape"));
    let stuck = ElectionError::Stuck { after_rounds: 9 };
    assert!(stuck.to_string().contains("9 rounds"));
}
