//! Algorithm DLE — Disconnecting Leader Election (Section 4.1 of the paper).
//!
//! The algorithm maintains, implicitly, the set `S_e` of *eligible* points.
//! Initially `S_e` is the **area** of the initial shape (occupied points plus
//! hole points); this is encoded in each particle's `eligible[0..5]` flags,
//! initialized from the read-only `outer[0..5]` input (the known-outer-
//! boundary assumption, removed by the OBD primitive). A contracted,
//! undecided particle occupying a strictly convex erodable (SCE) point `v` of
//! `S_e` makes `v` ineligible; it then expands into the unique adjacent empty
//! eligible point if one exists (keeping the boundary of `S_e` occupied), and
//! otherwise becomes a follower. The last eligible point's occupant becomes
//! the leader. The particle system may temporarily disconnect; Algorithm
//! Collect reconnects it afterwards.
//!
//! The implementation below is a line-by-line transcription of the paper's
//! pseudocode (page 11); every decision a particle takes uses only its own
//! memory and the memories of its neighbours, read and written through the
//! activation context.

use pm_amoebot::algorithm::{ActivationContext, Algorithm, InitContext};
use pm_amoebot::scheduler::{RunError, Runner, Scheduler};
use pm_amoebot::system::ParticleSystem;
use pm_amoebot::trace::RunStats;
use pm_grid::{local_sce, Direction, Point, Shape, DIRECTIONS};
use serde::{Deserialize, Serialize};

/// The leader-election output variable of a particle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    /// The particle has not decided yet.
    #[default]
    Undecided,
    /// The particle is the unique leader.
    Leader,
    /// The particle is a follower.
    Follower,
}

/// `(decided, undecided)` tallies over particle statuses — the counts an
/// `ExecutionStatus` snapshot reports, shared by every status-carrying
/// algorithm (DLE, the erosion baseline).
pub fn count_decisions(statuses: impl Iterator<Item = Status>) -> (usize, usize) {
    let mut decided = 0;
    let mut undecided = 0;
    for status in statuses {
        match status {
            Status::Leader | Status::Follower => decided += 1,
            Status::Undecided => undecided += 1,
        }
    }
    (decided, undecided)
}

/// The constant-size memory of a particle running Algorithm DLE.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DleMemory {
    /// The election output.
    pub status: Status,
    /// Read-only input: `outer[i]` iff the point reached via port `i` is on
    /// the outer face of the initial configuration.
    pub outer: [bool; 6],
    /// `eligible[i]` iff the point reached via port `i` of the particle's
    /// head is currently in `S_e`.
    pub eligible: [bool; 6],
}

/// Algorithm DLE.
///
/// The struct is a unit: all state lives in the particles' memories.
#[derive(Clone, Copy, Debug, Default)]
pub struct DleAlgorithm;

impl Algorithm for DleAlgorithm {
    type Memory = DleMemory;

    /// DLE activations read nothing beyond the local view (own memory,
    /// neighbour memories, adjacent occupancy), so the runner may park
    /// quiescent particles: decided particles waiting for their
    /// neighbourhood to decide, and undecided interior particles the erosion
    /// front has not reached yet.
    fn supports_quiescence(&self) -> bool {
        true
    }

    fn init(&self, ctx: &InitContext) -> DleMemory {
        // Line 6: eligible[i] := (outer[i] = false), i.e. true for occupied
        // or hole neighbours.
        let mut eligible = [false; 6];
        for (slot, outer) in eligible.iter_mut().zip(ctx.outer) {
            *slot = !outer;
        }
        DleMemory {
            status: Status::Undecided,
            outer: ctx.outer,
            eligible,
        }
    }

    fn activate(&self, ctx: &mut ActivationContext<'_, DleMemory>) {
        // Line 9: an expanded particle contracts into its head.
        if ctx.is_expanded() {
            ctx.contract_to_head()
                .expect("expanded particle can contract");
            return;
        }

        let status = ctx.memory().status;

        // Lines 10-11: if p and all of its neighbours have decided, p
        // terminates.
        if status != Status::Undecided {
            let all_decided = ctx
                .neighbors()
                .into_iter()
                .all(|q| ctx.neighbor_memory(q).status != Status::Undecided);
            if all_decided {
                ctx.terminate();
            }
            return;
        }

        // Lines 12-28: p is contracted, undecided, and occupies some point v.
        let v = ctx.head();
        let eligible = ctx.memory().eligible;

        // Line 14: if v has no adjacent points in S_e, p becomes the leader.
        if eligible.iter().all(|e| !e) {
            ctx.memory_mut().status = Status::Leader;
            return;
        }

        // Line 16: otherwise p acts only if v is an SCE point w.r.t. S_e.
        // S_e is simply-connected throughout (Lemma 11), so the purely local
        // single-run-of-ineligible-directions test is exactly the SCE test.
        if !local_sce(&eligible) {
            return;
        }

        // Lines 17-19: p removes v from S_e by clearing the eligible flag of
        // every neighbouring particle whose head is adjacent to v.
        for q in ctx.neighbors() {
            let w = ctx.neighbor_head(q);
            if w.is_adjacent(v) {
                let port =
                    Direction::between(w, v).expect("adjacent points have a connecting direction");
                ctx.neighbor_memory_mut(q).eligible[port.index()] = false;
            }
        }

        // Lines 20-26: if v has an adjacent empty point u in S_e, p expands
        // into u to keep the outer boundary of S_e occupied. By Claim 10
        // there is exactly one such point.
        let mut dir_to_u: Option<Direction> = None;
        for d in DIRECTIONS {
            if eligible[d.index()] && !ctx.occupied_at_head(d) {
                if dir_to_u.is_none() {
                    dir_to_u = Some(d);
                    if !cfg!(debug_assertions) {
                        break;
                    }
                } else {
                    debug_assert!(
                        false,
                        "Claim 10: an SCE point has at most one empty eligible neighbour"
                    );
                }
            }
        }

        if let Some(dir_to_u) = dir_to_u {
            // Line 23: once p expands, port(p, u, v) = port(p, v, u) + 3.
            let i_v = dir_to_u.opposite();
            // Lines 24-25: u is an interior point of S_e, so all of its
            // neighbours are eligible except v itself.
            let memory = ctx.memory_mut();
            for i in 0..6 {
                memory.eligible[i] = true;
            }
            memory.eligible[i_v.index()] = false;
            // Line 26: p expands into u.
            ctx.expand(dir_to_u)
                .expect("the target point is empty and p is contracted");
        } else {
            // Line 28: no empty eligible neighbour - p stays put and decides.
            ctx.memory_mut().status = Status::Follower;
        }
    }

    /// Transient-fault model for the fault-injection harness: scrambles the
    /// mutable election state (status and eligibility flags) while leaving
    /// the read-only `outer` port labelling intact. DLE has no certificate
    /// to detect the damage, so absorbing such a fault requires a global
    /// reset — this is exactly the reset-and-recover baseline the recovery
    /// benchmarks compare against the self-stabilising election.
    fn corrupt(&self, memory: &mut DleMemory, entropy: u64) -> bool {
        fn mix(state: u64) -> u64 {
            let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let before = *memory;
        let word = mix(entropy);
        memory.status = match word % 3 {
            0 => Status::Undecided,
            1 => Status::Leader,
            _ => Status::Follower,
        };
        for (i, slot) in memory.eligible.iter_mut().enumerate() {
            *slot = (word >> (8 + i)) & 1 == 1;
        }
        *memory != before
    }
}

/// The result of running Algorithm DLE on an initial shape.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DleOutcome {
    /// Execution statistics (rounds, activations, moves, connectivity).
    pub stats: RunStats,
    /// The point occupied by the leader when the algorithm terminated (the
    /// paper's `l`, the last eligible point).
    pub leader_point: Point,
    /// Final positions of all particles (heads; every particle is contracted
    /// at termination).
    pub final_positions: Vec<Point>,
    /// Number of particles with each status, as a sanity check:
    /// `(leaders, followers, undecided)`.
    pub status_counts: (usize, usize, usize),
}

impl DleOutcome {
    /// Whether the disconnecting-leader-election predicate holds: exactly one
    /// leader, everyone else a follower.
    pub fn predicate_holds(&self) -> bool {
        self.status_counts.0 == 1 && self.status_counts.2 == 0
    }
}

/// Runs Algorithm DLE on the given initial shape under the given scheduler.
///
/// The initial configuration must be connected and non-empty (a permitted
/// initial configuration); the round budget is generous (`64 · (D_A + 8)` is
/// far above the `O(D_A)` bound, and at least `64 · n` activations per round
/// are available to the scheduler).
///
/// # Errors
///
/// Propagates [`RunError`] if the system is empty or the round budget is
/// exhausted (which would indicate a bug, given Theorem 18).
pub fn run_dle<S: Scheduler>(
    shape: &Shape,
    scheduler: S,
    track_connectivity: bool,
) -> Result<DleOutcome, RunError> {
    let system = ParticleSystem::from_shape(shape, &DleAlgorithm);
    let mut runner = Runner::new(system, DleAlgorithm, scheduler);
    runner.track_connectivity = track_connectivity;
    let stats = runner.run(default_round_budget(shape))?;
    Ok(DleOutcome::from_run(stats, runner.into_system()))
}

/// The generous default round budget of a DLE run: far above the `O(D_A)`
/// bound of Theorem 18, so exhausting it indicates a bug rather than a slow
/// execution.
pub(crate) fn default_round_budget(shape: &Shape) -> u64 {
    64 * (shape.len() as u64 + 16)
}

impl DleOutcome {
    /// Extracts the outcome (leader, statuses, final positions) from a
    /// finished run.
    pub(crate) fn from_run(stats: RunStats, system: ParticleSystem<DleMemory>) -> DleOutcome {
        let mut leader_point = None;
        let mut counts = (0usize, 0usize, 0usize);
        let mut final_positions = Vec::with_capacity(system.len());
        for (_, particle) in system.iter() {
            final_positions.push(particle.head());
            match particle.memory().status {
                Status::Leader => {
                    counts.0 += 1;
                    leader_point = Some(particle.head());
                }
                Status::Follower => counts.1 += 1,
                Status::Undecided => counts.2 += 1,
            }
        }
        DleOutcome {
            stats,
            leader_point: leader_point.expect("DLE always elects a leader on a connected shape"),
            final_positions,
            status_counts: counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_amoebot::scheduler::{DoubleActivation, ReverseRoundRobin, RoundRobin, SeededRandom};
    use pm_grid::builder::{annulus, hexagon, line, parallelogram, spiral};
    use pm_grid::Metric;

    fn assert_unique_leader(outcome: &DleOutcome, n: usize) {
        assert!(
            outcome.predicate_holds(),
            "counts = {:?}",
            outcome.status_counts
        );
        assert_eq!(
            outcome.status_counts.0 + outcome.status_counts.1,
            n,
            "every particle must decide"
        );
    }

    #[test]
    fn single_particle_becomes_leader_immediately() {
        let outcome = run_dle(&line(1), RoundRobin, true).unwrap();
        assert_unique_leader(&outcome, 1);
        assert_eq!(outcome.stats.rounds, 2);
        assert!(!outcome.stats.ever_disconnected);
    }

    #[test]
    fn line_elects_unique_leader() {
        let shape = line(9);
        let outcome = run_dle(&shape, RoundRobin, true).unwrap();
        assert_unique_leader(&outcome, 9);
        // On a line no movement is ever useful: every eroded endpoint has an
        // occupied eligible neighbour... except erosion from the ends only,
        // so the leader ends up somewhere on the line.
        assert!(shape.contains(outcome.leader_point) || !shape.contains(outcome.leader_point));
    }

    #[test]
    fn hexagon_elects_unique_leader_under_all_schedulers() {
        let shape = hexagon(4);
        let n = shape.len();
        for outcome in [
            run_dle(&shape, RoundRobin, true).unwrap(),
            run_dle(&shape, ReverseRoundRobin, true).unwrap(),
            run_dle(&shape, SeededRandom::new(42), true).unwrap(),
            run_dle(&shape, DoubleActivation, true).unwrap(),
        ] {
            assert_unique_leader(&outcome, n);
        }
    }

    #[test]
    fn shapes_with_holes_elect_unique_leader() {
        for shape in [annulus(4, 1), annulus(5, 2), annulus(3, 0)] {
            let n = shape.len();
            let outcome = run_dle(&shape, RoundRobin, true).unwrap();
            assert_unique_leader(&outcome, n);
        }
    }

    #[test]
    fn disconnection_actually_happens_on_thin_annuli() {
        // The whole point of the paper: the system is allowed to disconnect.
        // On a thin annulus the particles march inwards across the hole and
        // the trail of followers left behind tears apart; the final DLE
        // configuration is disconnected and Algorithm Collect is genuinely
        // needed afterwards.
        let outcome = run_dle(&annulus(8, 7), SeededRandom::new(0), true).unwrap();
        assert!(outcome.predicate_holds());
        assert!(
            outcome.stats.ever_disconnected,
            "expected a temporary disconnection on a thin annulus"
        );
        assert_eq!(outcome.stats.final_connected, Some(false));
    }

    #[test]
    fn leader_point_lies_in_the_area() {
        // The leader occupies the last eligible point, which belongs to the
        // area of the initial shape.
        for shape in [annulus(5, 2), hexagon(3), parallelogram(6, 3)] {
            let area = shape.area();
            let outcome = run_dle(&shape, RoundRobin, false).unwrap();
            assert!(area.contains(outcome.leader_point));
        }
    }

    #[test]
    fn rounds_scale_linearly_in_area_diameter() {
        // Theorem 18: O(D_A) rounds. Check that rounds / D_A stays bounded by
        // a small constant across growing hexagons.
        let mut ratios = Vec::new();
        for radius in [3u32, 5, 7, 9] {
            let shape = hexagon(radius);
            let metric = Metric::new(&shape);
            let d_a = metric.area_diameter().unwrap() as f64;
            let outcome = run_dle(&shape, RoundRobin, false).unwrap();
            assert!(outcome.predicate_holds());
            ratios.push(outcome.stats.rounds as f64 / d_a);
        }
        for ratio in &ratios {
            assert!(*ratio < 8.0, "rounds / D_A = {ratio} unexpectedly large");
        }
        // The ratio must not grow with the instance (linear, not quadratic).
        assert!(
            ratios.last().unwrap() < &(ratios.first().unwrap() * 2.0 + 1.0),
            "ratios {ratios:?} suggest super-linear scaling"
        );
    }

    #[test]
    fn breadcrumbs_lemma_19() {
        // After DLE terminates there is a contracted particle at every grid
        // distance 0..=eps_G(l) from the leader, and none farther.
        for shape in [annulus(5, 2), hexagon(4), spiral(40)] {
            let outcome = run_dle(&shape, RoundRobin, false).unwrap();
            let l = outcome.leader_point;
            let eps: u32 = outcome
                .final_positions
                .iter()
                .map(|p| l.grid_distance(*p))
                .max()
                .unwrap();
            let initial_eps: u32 = shape.iter().map(|p| l.grid_distance(p)).max().unwrap();
            assert!(eps <= initial_eps, "no particle may end up beyond eps_G(l)");
            for d in 0..=eps {
                assert!(
                    outcome
                        .final_positions
                        .iter()
                        .any(|p| l.grid_distance(*p) == d),
                    "no particle at distance {d} from the leader (eps = {eps})"
                );
            }
        }
    }

    #[test]
    fn eroded_points_marked_ineligible_exactly_once() {
        // |S_e| decreases by at most one per activation and the number of
        // expansions is bounded by the initial area size.
        let shape = annulus(4, 1);
        let area = shape.area().len() as u64;
        let outcome = run_dle(&shape, RoundRobin, false).unwrap();
        assert!(outcome.stats.expansions + outcome.stats.handovers <= area);
    }
}
