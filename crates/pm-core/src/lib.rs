//! The paper's algorithms: deterministic leader election for programmable
//! matter in time linear in the diameter (Dufoulon, Kutten, Moses Jr.,
//! PODC 2021).
//!
//! * [`api`] — the **unified execution API**: the [`LeaderElection`] trait
//!   every runnable algorithm implements, the [`Election`] builder, and the
//!   serializable [`RunReport`] all of them produce.
//! * [`dle`] — **Algorithm DLE** (Disconnecting Leader Election): the
//!   per-activation erosion algorithm of Section 4.1. `O(D_A)` rounds under
//!   the initially-known-outer-boundary assumption; the particle system may
//!   temporarily disconnect.
//! * [`collect`] — **Algorithm Collect** (Section 4.3): the phase-based
//!   reconnection algorithm built from the OMP / PRP / SDP movement
//!   primitives; `O(D_G)` rounds; restores connectivity.
//! * [`obd`] — the **Outer-Boundary Detection** primitive (Section 5):
//!   removes the boundary-knowledge assumption at a cost of `O(L_out + D)`
//!   rounds, using segment competition over virtual-node rings.
//! * [`batch`] — the **thread-sharded batch runner**: many independent
//!   election scenarios fanned out over `std::thread` workers behind the
//!   same [`LeaderElection`]/[`RunReport`] surface, with a deterministic
//!   merge order (results are bit-identical to sequential runs).
//! * [`session`] — the **cooperative session scheduler**: thousands of live
//!   elections round-robined fairly with per-session step budgets, plus
//!   replay-based [`ExecutionCheckpoint`]s that restore byte-identically.
//!
//! # Quickstart
//!
//! ```
//! use pm_amoebot::scheduler::RoundRobin;
//! use pm_core::api::Election;
//! use pm_grid::builder::annulus;
//!
//! // A shape with a hole: previous deterministic algorithms either reject it
//! // or need Omega(n^2) rounds; DLE elects in O(D_A).
//! let shape = annulus(5, 2);
//! let report = Election::on(&shape)
//!     .scheduler(RoundRobin)
//!     .run()
//!     .expect("election succeeds");
//! assert!(report.unique_leader());
//! assert!(report.final_connected);
//! assert!(report.rounds_consistent());
//! ```

pub mod api;
pub mod batch;
pub mod collect;
pub mod dle;
pub mod obd;
pub mod session;

pub use api::{
    Election, ElectionBuilder, ElectionError, LeaderElection, NoopObserver, PaperPipeline,
    PhaseProfile, PhaseReport, RunObserver, RunOptions, RunReport,
};
pub use batch::{BatchJob, BatchRunner, BatchScenario, SchedulerSpec};
pub use collect::{CollectOutcome, CollectSimulator};
pub use dle::{DleAlgorithm, DleMemory, DleOutcome, Status};
pub use obd::{CompetitionCostModel, ObdOutcome, ObdSimulator};
pub use session::{
    ExecutionCheckpoint, Goal, RestoreError, SessionId, SessionScheduler, SessionView, SweepTotals,
};
