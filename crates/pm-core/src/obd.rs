//! The Outer-Boundary Detection primitive (OBD, Section 5 of the paper).
//!
//! OBD removes the known-outer-boundary assumption of Algorithm DLE: starting
//! from a connected, contracted configuration, every particle learns which of
//! its incident empty points lie on the outer face, in `O(L_out + D)` rounds
//! (Theorem 41), without any particle movement.
//!
//! The primitive works on the virtual-node rings of the global boundaries
//! (Section 5.1): every boundary point simulates one v-node per local
//! boundary, and the v-nodes of one global boundary form a ring. On each
//! ring, *segments* of consecutive v-nodes compete: a segment whose
//! `(length, label)` is lexicographically smaller than its clockwise
//! successor's wins, forces the successor to disband, and absorbs its
//! v-nodes (Sections 5.2–5.3). Comparisons are pipelined, so a comparison
//! initiated by a segment `s` costs `O(|s|)` rounds (Lemma 31) and a boundary
//! of length `L` stabilizes in `O(L)` rounds (Lemma 35). A stable boundary is
//! covered by 1, 2, 3 or 6 segments with equal labels (Observation 33 /
//! Theorem 36); summing the boundary counts then tells whether the boundary
//! is the outer one (sum `+6`) or an inner one (sum `−6`, Observation 4).
//! Finally, an *outer token* walks the outer boundary and the result is
//! flooded to all particles (Section 5.4).
//!
//! ## Fidelity note (see DESIGN.md §3)
//!
//! Segments are simulated explicitly; the token trains inside one comparison
//! are charged their pipelined round cost (`C_CMP · |initiator|`, the
//! `(2 k_c + 5) l` bound of Lemma 35) through a discrete-event timeline
//! instead of being forwarded hop by hop. The winner rule (smaller segment
//! wins), the stable configurations, the ±6 decision rule, the outer-token
//! walk and the flooding are all implemented as in the paper and validated
//! against the geometric ground truth in the tests.

use pm_grid::{boundary_rings_with_analysis, BoundaryKind, BoundaryRing, Point, Shape};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Round-cost constant per unit of comparison work (the paper's `k_c`
/// appears as `2 k_c + 5` in Lemma 35; we fold it into one constant).
pub const CMP_COST: u64 = 10;
/// Round-cost constant per v-node absorbed by the winning segment.
pub const ABSORB_COST: u64 = 1;
/// Round-cost constant per v-node for the stable-boundary check and segment
/// sum verification (Section 5.4).
pub const STABLE_CHECK_COST: u64 = 4;

/// How the round cost of one segment comparison is charged.
///
/// The paper's contribution in Section 5 is the *pipelined* comparison
/// (Lemma 31): a comparison initiated by a segment `s` costs `O(|s|)` rounds
/// even while the compared segments keep changing. Previous boundary-election
/// algorithms (\[3\], \[24\]) compared two segments element by element with the
/// segments frozen, paying `O(|s| · |s1|)` rounds per comparison — the
/// `Sequential` model below — which is what makes them quadratic overall.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompetitionCostModel {
    /// The paper's pipelined comparisons: `CMP_COST · |initiator|` rounds.
    Pipelined,
    /// Unpipelined, frozen-segment comparisons: `CMP_COST · |s| · |s1|`
    /// rounds (the Bazzi–Briones-style baseline).
    Sequential,
}

impl CompetitionCostModel {
    fn comparison_rounds(self, initiator_len: usize, successor_len: usize) -> u64 {
        match self {
            CompetitionCostModel::Pipelined => CMP_COST * initiator_len as u64,
            CompetitionCostModel::Sequential => {
                CMP_COST * initiator_len as u64 * successor_len.max(1) as u64
            }
        }
    }
}

/// A segment of consecutive v-nodes during the competition.
#[derive(Clone, Debug)]
struct Segment {
    /// Boundary counts of the segment's v-nodes, tail to head (clockwise).
    label: Vec<i32>,
    /// Ring indices of the segment's v-nodes, tail to head.
    members: Vec<usize>,
    /// Discrete-event time at which this segment is ready for its next
    /// expansion attempt.
    ready_at: u64,
}

impl Segment {
    fn key(&self) -> (usize, &[i32]) {
        (self.label.len(), self.label.as_slice())
    }
}

/// The decision OBD reached for one global boundary.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryDecision {
    /// Which boundary this is, per the geometric analysis (used only for
    /// reporting; the algorithm does not know it).
    pub kind: BoundaryKind,
    /// Number of v-nodes on the boundary's ring.
    pub ring_len: usize,
    /// The boundary-count sum computed by the winning segments.
    pub count_sum: i64,
    /// Whether the algorithm declared this the outer boundary.
    pub declared_outer: bool,
    /// Number of equal segments covering the ring when it stabilized
    /// (1, 2, 3 or 6 — Observation 33).
    pub stable_segments: usize,
    /// Discrete-event round at which the ring stabilized.
    pub stable_round: u64,
}

/// The result of running the OBD primitive.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObdOutcome {
    /// Total rounds: competition on the outer boundary, stability check,
    /// outer-token walk, and flooding.
    pub rounds: u64,
    /// The per-boundary decisions.
    pub decisions: Vec<BoundaryDecision>,
    /// For every particle point, the computed `outer[0..5]` flags: entry `i`
    /// is `true` iff the neighbour in clockwise direction `i` is an empty
    /// point of the outer face.
    pub outer_flags: HashMap<Point, [bool; 6]>,
    /// Rounds spent in each part, for reporting: `(competition,
    /// stability check, outer walk, flooding)`.
    pub round_breakdown: (u64, u64, u64, u64),
}

impl ObdOutcome {
    /// Whether exactly one boundary was declared outer.
    pub fn unique_outer(&self) -> bool {
        self.decisions.iter().filter(|d| d.declared_outer).count() == 1
    }
}

/// Simulator of the OBD primitive on an initial (connected, contracted)
/// configuration given by a shape.
#[derive(Clone, Debug)]
pub struct ObdSimulator {
    shape: Shape,
}

impl ObdSimulator {
    /// Creates the simulator for the given initial shape.
    pub fn new(shape: &Shape) -> ObdSimulator {
        ObdSimulator {
            shape: shape.clone(),
        }
    }

    /// Runs the primitive and returns the decisions, the per-particle outer
    /// flags and the round counts.
    pub fn run(&self) -> ObdOutcome {
        self.run_with_cost_model(CompetitionCostModel::Pipelined)
    }

    /// Runs the primitive with an explicit comparison cost model. The
    /// [`CompetitionCostModel::Sequential`] variant reproduces the behaviour
    /// of the unpipelined boundary-election baselines.
    pub fn run_with_cost_model(&self, cost_model: CompetitionCostModel) -> ObdOutcome {
        let analysis = self.shape.analyze();
        let rings = boundary_rings_with_analysis(&self.shape, &analysis);

        let mut decisions = Vec::with_capacity(rings.len());
        let mut outer_flags: HashMap<Point, [bool; 6]> = HashMap::new();
        for p in self.shape.iter() {
            outer_flags.insert(p, [false; 6]);
        }

        let mut outer_walk_rounds = 0u64;
        let mut competition_rounds = 0u64;
        let mut stability_rounds = 0u64;

        for ring in &rings {
            let decision = Self::compete_on_ring(ring, cost_model);
            competition_rounds = competition_rounds.max(decision.stable_round);
            // Stability check: each surviving segment compares itself with
            // the previous 6/|sum| segments (all of the same length), at the
            // pipelined cost per v-node.
            let seg_len = ring
                .len()
                .checked_div(decision.stable_segments)
                .unwrap_or(ring.len());
            stability_rounds = stability_rounds
                .max(STABLE_CHECK_COST * (seg_len as u64) * (decision.stable_segments as u64 + 1));
            if decision.declared_outer {
                // The outer token walks the whole boundary before the
                // termination announcement starts.
                outer_walk_rounds = outer_walk_rounds.max(ring.len() as u64);
                for v in ring.vnodes() {
                    let flags = outer_flags
                        .get_mut(&v.point)
                        .expect("v-node points are shape points");
                    for dir in v.local_boundary.edges() {
                        flags[dir.index()] = true;
                    }
                }
            }
            decisions.push(decision);
        }

        // Flooding: the announcement starts from the outer-boundary particles
        // and reaches every particle along shape edges.
        let flooding_rounds = self.flooding_rounds(&analysis);

        let rounds = competition_rounds + stability_rounds + outer_walk_rounds + flooding_rounds;
        ObdOutcome {
            rounds,
            decisions,
            outer_flags,
            round_breakdown: (
                competition_rounds,
                stability_rounds,
                outer_walk_rounds,
                flooding_rounds,
            ),
        }
    }

    /// Runs the segment competition of Section 5.3 on one ring and returns
    /// the decision for that boundary.
    fn compete_on_ring(ring: &BoundaryRing, cost_model: CompetitionCostModel) -> BoundaryDecision {
        let counts = ring.counts();
        let n = counts.len();
        // Initially every v-node is a segment of length one (its own head and
        // tail), ready at time zero.
        let mut segments: Vec<Segment> = (0..n)
            .map(|i| Segment {
                label: vec![counts[i]],
                members: vec![i],
                ready_at: 0,
            })
            .collect();

        // Repeatedly let a strictly smaller segment beat and absorb its
        // clockwise successor. The discrete-event timeline charges each
        // merge `CMP_COST · |winner|` (pipelined comparison, Lemma 31) plus
        // `ABSORB_COST · |loser|` for the loser's v-nodes to defect and be
        // re-absorbed; merges on disjoint parts of the ring overlap in time,
        // which the `max` of ready times captures.
        let mut stable_round = 0u64;
        loop {
            if segments.len() <= 1 {
                break;
            }
            // Find the winning merge with the earliest completion time.
            let mut best: Option<(usize, u64)> = None;
            for i in 0..segments.len() {
                let j = (i + 1) % segments.len();
                let s = &segments[i];
                let s1 = &segments[j];
                if s.key() < s1.key() {
                    let done = s.ready_at.max(s1.ready_at)
                        + cost_model.comparison_rounds(s.label.len(), s1.label.len())
                        + ABSORB_COST * s1.label.len() as u64;
                    if best.is_none_or(|(_, t)| done < t) {
                        best = Some((i, done));
                    }
                }
            }
            let Some((i, done)) = best else {
                // No segment is strictly smaller than its successor: on a
                // ring this means all segments are equal — the boundary is
                // stable.
                break;
            };
            let j = (i + 1) % segments.len();
            let loser = segments.remove(j);
            // Removing index j may shift the winner's index.
            let winner_idx = if j < i { i - 1 } else { i };
            let winner = &mut segments[winner_idx];
            winner.label.extend(loser.label);
            winner.members.extend(loser.members);
            winner.ready_at = done;
            stable_round = stable_round.max(done);
        }

        let stable_segments = segments.len();
        let count_sum: i64 = counts.iter().map(|c| *c as i64).sum();
        // The algorithm's decision: a boundary is the outer one iff the total
        // count sum is positive (+6 on stable multi-point boundaries, +4 for
        // the degenerate single-particle system).
        let declared_outer = count_sum > 0;
        BoundaryDecision {
            kind: ring.kind(),
            ring_len: ring.len(),
            count_sum,
            declared_outer,
            stable_segments,
            stable_round,
        }
    }

    /// Rounds needed to flood the termination announcement from the outer
    /// boundary to every particle (at most the shape's diameter).
    fn flooding_rounds(&self, analysis: &pm_grid::ShapeAnalysis) -> u64 {
        if analysis.outer_boundary().is_empty() {
            return 0;
        }
        // Multi-source BFS over the dense index: the flood depth is the
        // largest distance from the nearest outer-boundary point.
        let index = analysis.index().expect("non-empty shape has an index");
        let rect = *index.rect();
        let mut visited = vec![false; rect.cells()];
        let mut frontier: Vec<Point> = Vec::with_capacity(analysis.outer_boundary().len());
        for s in analysis.outer_boundary() {
            visited[rect.cell(*s).expect("shape point is in bounds")] = true;
            frontier.push(*s);
        }
        let mut next: Vec<Point> = Vec::new();
        let mut depth = 0u64;
        loop {
            for p in frontier.drain(..) {
                for n in p.neighbors() {
                    if let Some(cell) = rect.cell(n) {
                        if !visited[cell] && index.contains_cell(cell) {
                            visited[cell] = true;
                            next.push(n);
                        }
                    }
                }
            }
            if next.is_empty() {
                return depth;
            }
            depth += 1;
            std::mem::swap(&mut frontier, &mut next);
        }
    }

    /// The ground-truth outer flags from the geometric analysis, for
    /// verification in tests and experiments.
    pub fn ground_truth_flags(&self) -> HashMap<Point, [bool; 6]> {
        let analysis = self.shape.analyze();
        let mut flags = HashMap::new();
        for p in self.shape.iter() {
            let mut f = [false; 6];
            for (i, d) in pm_grid::DIRECTIONS.iter().enumerate() {
                let n = p.neighbor(*d);
                f[i] = !self.shape.contains(n) && analysis.is_outer_face_point(n);
            }
            flags.insert(p, f);
        }
        flags
    }
}

/// Convenience helper: runs OBD on a shape and returns the outcome.
pub fn run_obd(shape: &Shape) -> ObdOutcome {
    ObdSimulator::new(shape).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_grid::builder::{annulus, hexagon, line, parallelogram, swiss_cheese};
    use pm_grid::random::{random_blob, random_holey_hexagon};
    use pm_grid::Metric;

    fn check_flags_match_ground_truth(shape: &Shape) -> ObdOutcome {
        let sim = ObdSimulator::new(shape);
        let outcome = sim.run();
        let truth = sim.ground_truth_flags();
        assert!(
            outcome.unique_outer(),
            "exactly one boundary must be declared outer"
        );
        for (p, expected) in truth {
            assert_eq!(
                outcome.outer_flags.get(&p),
                Some(&expected),
                "outer flags differ at {p}"
            );
        }
        outcome
    }

    #[test]
    fn simple_shapes_identify_outer_boundary() {
        for shape in [hexagon(3), line(10), parallelogram(5, 4)] {
            let outcome = check_flags_match_ground_truth(&shape);
            assert_eq!(outcome.decisions.len(), 1);
            assert!(outcome.decisions[0].declared_outer);
            assert_eq!(outcome.decisions[0].count_sum, 6);
        }
    }

    #[test]
    fn holey_shapes_distinguish_inner_boundaries() {
        for shape in [annulus(4, 1), annulus(5, 2), swiss_cheese(6, 3)] {
            let outcome = check_flags_match_ground_truth(&shape);
            assert!(outcome.decisions.len() >= 2);
            for d in &outcome.decisions {
                match d.kind {
                    BoundaryKind::Outer => {
                        assert!(d.declared_outer);
                        assert_eq!(d.count_sum, 6);
                    }
                    BoundaryKind::Inner(_) => {
                        assert!(!d.declared_outer);
                        assert_eq!(d.count_sum, -6);
                    }
                }
            }
        }
    }

    #[test]
    fn stable_segment_counts_follow_observation_33() {
        for shape in [hexagon(4), annulus(6, 2), parallelogram(7, 3), line(9)] {
            let outcome = run_obd(&shape);
            for d in &outcome.decisions {
                assert!(
                    matches!(d.stable_segments, 1 | 2 | 3 | 6),
                    "stable boundary must have 1, 2, 3 or 6 segments, got {}",
                    d.stable_segments
                );
            }
        }
    }

    #[test]
    fn symmetric_hexagon_reaches_a_legal_stable_state() {
        // A perfectly symmetric hexagon boundary: depending on the merge
        // order the competition ends with 1, 2, 3 or 6 equal segments (the
        // paper tolerates up to 6 boundary leaders); the outer decision is
        // correct either way.
        let outcome = run_obd(&hexagon(3));
        let d = &outcome.decisions[0];
        assert!(matches!(d.stable_segments, 1 | 2 | 3 | 6));
        assert!(d.declared_outer);
        assert_eq!(d.count_sum, 6);
    }

    #[test]
    fn random_blobs_identify_outer_boundary() {
        for seed in 0..4 {
            let shape = random_blob(150, seed);
            check_flags_match_ground_truth(&shape);
        }
        for seed in 0..3 {
            let shape = random_holey_hexagon(7, 0.08, seed);
            check_flags_match_ground_truth(&shape);
        }
    }

    #[test]
    fn single_particle_is_outer() {
        let outcome = run_obd(&line(1));
        assert_eq!(outcome.decisions.len(), 1);
        assert!(outcome.decisions[0].declared_outer);
        assert_eq!(outcome.decisions[0].count_sum, 4);
    }

    #[test]
    fn rounds_scale_linearly_in_lout_plus_d() {
        // Theorem 41: O(L_out + D) rounds.
        let mut ratios = Vec::new();
        for radius in [3u32, 6, 9, 12] {
            let shape = hexagon(radius);
            let metric = Metric::new(&shape);
            let budget = shape.outer_boundary_len() as f64 + metric.grid_diameter() as f64;
            let outcome = run_obd(&shape);
            ratios.push(outcome.rounds as f64 / budget);
        }
        for r in &ratios {
            assert!(*r < 60.0, "rounds / (L_out + D) = {r} too large");
        }
        assert!(
            ratios.last().unwrap() < &(ratios.first().unwrap() * 2.0 + 1.0),
            "ratios {ratios:?} suggest super-linear scaling"
        );
    }

    #[test]
    fn round_breakdown_sums_to_total() {
        let outcome = run_obd(&annulus(5, 2));
        let (a, b, c, d) = outcome.round_breakdown;
        assert_eq!(outcome.rounds, a + b + c + d);
        assert!(c > 0, "outer walk must take at least one round");
    }
}
