//! Algorithm Collect — reconnection after DLE (Section 4.3 of the paper).
//!
//! After Algorithm DLE terminates the particle system may be disconnected,
//! but it satisfies the *breadcrumb* property (Lemma 19): there is a
//! contracted particle at every grid distance `0..=ε_G(l)` from the leader's
//! point `l`, and none farther. Algorithm Collect exploits this to gather all
//! particles in `O(log ε_G(l))` phases: in phase `i` a *stem* of `k = 2^{i-1}`
//! collected particles moves `k` points outward from `l` (primitive **OMP**),
//! performs a full clockwise rotation around `l` sweeping the annulus of grid
//! distances `k..=2k-1` and collecting every particle it meets (primitive
//! **PRP**, six partial rotations), and finally moves back to `l`, absorbing
//! newly collected particles to double its size (primitive **SDP**). The
//! phase costs `O(k)` rounds (Lemmas 24, 26, 27), so the whole algorithm runs
//! in `O(ε_G(l)) = O(D_G)` rounds (Theorem 23). When a phase collects
//! nothing, every particle has been collected and the collected structure —
//! the stem plus per-distance *branches* hung counter-clockwise behind it —
//! is connected (Lemma 20), so the algorithm terminates with a connected
//! system.
//!
//! ## Fidelity note (see DESIGN.md §3)
//!
//! This module simulates Collect at the granularity of the three movement
//! primitives: the geometry of each phase (which particles are collected,
//! which grid distances they keep, where the stem and branches end up) is
//! computed exactly, and each primitive is charged the pipelined round cost
//! established by the paper's lemmas (`2k` for OMP, `6·4k` for PRP, `3k` for
//! SDP, plus constant overhead). The intra-primitive token/permit forwarding
//! of Algorithm 1 / Algorithm 2 is not simulated per activation; the
//! breadcrumb invariant, the doubling behaviour (Corollary 22), the final
//! connectivity (Theorem 23) and the `O(D_G)` round total are all preserved
//! and tested.

use pm_grid::{Point, Shape};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Round cost of primitive OMP for a stem of size `k` (Lemma 24: `O(k)`; the
/// constant 2 reflects the pipelined expansion pass plus contraction pass).
pub fn omp_rounds(k: u64) -> u64 {
    2 * k + 2
}

/// Round cost of primitive PRP for a stem of size `k` (Lemma 26: `O(k)` per
/// partial rotation; a full rotation is six partial rotations, each a move of
/// `k` points plus a rotation around the stem's root).
pub fn prp_rounds(k: u64) -> u64 {
    6 * (4 * k + 2)
}

/// Round cost of primitive SDP for a stem of size `k` (Lemma 27: `O(k)`; one
/// expansion pass, one contraction pass, one absorption pass).
pub fn sdp_rounds(k: u64) -> u64 {
    3 * k + 2
}

/// Per-phase record of Algorithm Collect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Phase index, starting at 1.
    pub index: usize,
    /// Stem size `k` at the start of the phase.
    pub stem_start: usize,
    /// Stem size at the end of the phase (`min(2k, #collected)` — Lemma 21).
    pub stem_end: usize,
    /// Number of particles collected during the phase.
    pub newly_collected: usize,
    /// Rounds charged to the phase (OMP + PRP + SDP).
    pub rounds: u64,
}

/// The result of running Algorithm Collect.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CollectOutcome {
    /// Total rounds across all phases (including the final empty phase).
    pub rounds: u64,
    /// Per-phase records.
    pub phases: Vec<PhaseRecord>,
    /// Final positions of all particles (the leader is at its original point
    /// `l`; the stem extends east of it, branches hang counter-clockwise).
    pub final_positions: Vec<Point>,
    /// Whether the final configuration is connected (Theorem 23 — always
    /// true when the input satisfies the breadcrumb property).
    pub final_connected: bool,
    /// Number of particles that were never collected (0 whenever the input
    /// satisfies Lemma 19's breadcrumb property).
    pub uncollected_remaining: usize,
    /// The grid eccentricity `ε_G(l)` of the input configuration.
    pub eccentricity: u32,
}

impl CollectOutcome {
    /// The final shape of the particle system.
    pub fn final_shape(&self) -> Shape {
        Shape::from_points(self.final_positions.iter().copied())
    }
}

/// Simulator for Algorithm Collect (see the module documentation).
#[derive(Clone, Debug)]
pub struct CollectSimulator {
    leader: Point,
    /// Grid distance (from the leader) of every non-leader particle that has
    /// not been collected yet, as a multiset keyed by distance.
    uncollected: BTreeMap<u32, usize>,
    /// Number of collected particles assigned to each grid distance
    /// ("ring"); collected particles keep the distance at which they were
    /// collected, exactly as branch particles do in the paper.
    collected: BTreeMap<u32, usize>,
    eccentricity: u32,
}

impl CollectSimulator {
    /// Creates a simulator from the leader's point and the positions of all
    /// particles after DLE (the leader's own position may be included or
    /// omitted; it is handled either way).
    pub fn new(leader: Point, particle_positions: &[Point]) -> CollectSimulator {
        let mut uncollected: BTreeMap<u32, usize> = BTreeMap::new();
        let mut eccentricity = 0;
        let mut leader_seen = false;
        for p in particle_positions {
            let d = leader.grid_distance(*p);
            eccentricity = eccentricity.max(d);
            if d == 0 && !leader_seen {
                // The leader itself: collected from the start.
                leader_seen = true;
                continue;
            }
            *uncollected.entry(d).or_insert(0) += 1;
        }
        let mut collected = BTreeMap::new();
        collected.insert(0, 1);
        CollectSimulator {
            leader,
            uncollected,
            collected,
            eccentricity,
        }
    }

    /// The leader's point `l`.
    pub fn leader(&self) -> Point {
        self.leader
    }

    /// The grid eccentricity `ε_G(l)` of the input configuration.
    pub fn eccentricity(&self) -> u32 {
        self.eccentricity
    }

    /// Whether the input satisfies Lemma 19's breadcrumb property: at least
    /// one particle at every grid distance `1..=ε_G(l)` from the leader.
    pub fn has_breadcrumbs(&self) -> bool {
        (1..=self.eccentricity).all(|d| {
            self.uncollected.get(&d).copied().unwrap_or(0)
                + self.collected.get(&d).copied().unwrap_or(0)
                > 0
        })
    }

    /// Runs Algorithm Collect and returns the outcome.
    pub fn run(&mut self) -> CollectOutcome {
        let mut phases = Vec::new();
        let mut rounds = 0u64;
        let mut stem = 1usize;
        let mut index = 0usize;
        loop {
            index += 1;
            let k = stem as u64;
            let phase_rounds = omp_rounds(k) + prp_rounds(k) + sdp_rounds(k);
            rounds += phase_rounds;

            // OMP + PRP sweep all points at grid distance k..=2k-1 from l
            // (Lemma 21): every uncollected particle in that annulus is
            // collected and keeps its distance (it becomes a stem or branch
            // particle at that distance).
            let lo = stem as u32;
            let hi = (2 * stem - 1) as u32;
            let mut newly = 0usize;
            let in_range: Vec<u32> = self.uncollected.range(lo..=hi).map(|(d, _)| *d).collect();
            for d in in_range {
                let count = self.uncollected.remove(&d).unwrap_or(0);
                newly += count;
                *self.collected.entry(d).or_insert(0) += count;
            }

            let stem_start = stem;
            if newly == 0 {
                // Final phase: nothing collected, terminate.
                phases.push(PhaseRecord {
                    index,
                    stem_start,
                    stem_end: stem,
                    newly_collected: 0,
                    rounds: phase_rounds,
                });
                break;
            }

            // SDP: the stem doubles, capped by the number of collected
            // particles (Lemma 21: k' ∈ {min(2k, ε_G(l)), …, 2k}).
            let total_collected: usize = self.collected.values().sum();
            stem = (2 * stem).min(total_collected);
            phases.push(PhaseRecord {
                index,
                stem_start,
                stem_end: stem,
                newly_collected: newly,
                rounds: phase_rounds,
            });
        }

        let uncollected_remaining: usize = self.uncollected.values().sum();
        let final_positions = self.final_placement();
        let final_shape = Shape::from_points(final_positions.iter().copied());
        CollectOutcome {
            rounds,
            phases,
            final_connected: final_shape.is_connected() && uncollected_remaining == 0,
            final_positions,
            uncollected_remaining,
            eccentricity: self.eccentricity,
        }
    }

    /// Places every collected particle on the grid: the particle(s) assigned
    /// to grid distance `d` occupy a contiguous arc of the ring of radius `d`
    /// around the leader, starting at the stem's ray point (due east of `l`)
    /// and continuing counter-clockwise behind it — the stem-plus-branches
    /// structure of Section 4.3.2. Uncollected stragglers (only possible when
    /// the breadcrumb precondition is violated) keep a far-away placeholder
    /// position so the connectivity check reports the failure.
    fn final_placement(&self) -> Vec<Point> {
        let mut out = Vec::new();
        for (&d, &count) in &self.collected {
            let ring = self.leader.ring(d);
            debug_assert!(
                count <= ring.len(),
                "ring {d} holds {count} particles but has only {} points",
                ring.len()
            );
            out.extend(ring.into_iter().take(count));
        }
        // Stragglers (precondition violations) are reported by keeping them
        // at an arbitrary distant location per distance class.
        for (&d, &count) in &self.uncollected {
            let ring = self.leader.ring(d + 2 * self.eccentricity + 4);
            out.extend(ring.into_iter().take(count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dle::run_dle;
    use pm_amoebot::scheduler::RoundRobin;
    use pm_grid::builder::{annulus, hexagon, line, spiral};

    fn collect_after_dle(shape: &Shape) -> CollectOutcome {
        let dle = run_dle(shape, RoundRobin, false).unwrap();
        let mut sim = CollectSimulator::new(dle.leader_point, &dle.final_positions);
        assert!(sim.has_breadcrumbs(), "DLE output must satisfy Lemma 19");
        sim.run()
    }

    #[test]
    fn single_particle_terminates_in_one_phase() {
        let mut sim = CollectSimulator::new(Point::ORIGIN, &[Point::ORIGIN]);
        let outcome = sim.run();
        assert_eq!(outcome.phases.len(), 1);
        assert_eq!(outcome.final_positions.len(), 1);
        assert!(outcome.final_connected);
        assert_eq!(outcome.uncollected_remaining, 0);
    }

    #[test]
    fn breadcrumb_line_is_collected_and_connected() {
        // A breadcrumb trail: one particle per distance 0..=10.
        let positions: Vec<Point> = (0..=10).map(|i| Point::new(i, 0)).collect();
        let mut sim = CollectSimulator::new(Point::ORIGIN, &positions);
        assert!(sim.has_breadcrumbs());
        assert_eq!(sim.eccentricity(), 10);
        let outcome = sim.run();
        assert!(outcome.final_connected);
        assert_eq!(outcome.final_positions.len(), positions.len());
        assert_eq!(outcome.uncollected_remaining, 0);
    }

    #[test]
    fn stem_doubles_per_phase_corollary_22() {
        let positions: Vec<Point> = (0..=20).map(|i| Point::new(i, 0)).collect();
        let mut sim = CollectSimulator::new(Point::ORIGIN, &positions);
        let outcome = sim.run();
        for phase in &outcome.phases {
            if phase.newly_collected > 0 && phase.stem_end < outcome.final_positions.len() {
                assert_eq!(
                    phase.stem_end,
                    2 * phase.stem_start,
                    "stem must double while particles remain (phase {})",
                    phase.index
                );
            }
            assert!(phase.stem_end <= 2 * phase.stem_start);
        }
        // Number of collecting phases is logarithmic in the eccentricity.
        let collecting = outcome
            .phases
            .iter()
            .filter(|p| p.newly_collected > 0)
            .count();
        assert!(collecting <= (outcome.eccentricity as f64).log2().ceil() as usize + 1);
    }

    #[test]
    fn rounds_are_linear_in_eccentricity() {
        // Theorem 23: O(D_G) rounds. Since the phase costs form a geometric
        // series, total rounds <= c * eps for a fixed constant c.
        for eps in [4u32, 16, 64, 256] {
            let positions: Vec<Point> = (0..=eps as i32).map(|i| Point::new(i, 0)).collect();
            let mut sim = CollectSimulator::new(Point::ORIGIN, &positions);
            let outcome = sim.run();
            assert!(
                outcome.rounds <= 140 * eps as u64 + 200,
                "rounds {} not linear in eps {eps}",
                outcome.rounds
            );
        }
    }

    #[test]
    fn collect_reconnects_dle_output_on_various_shapes() {
        for shape in [
            annulus(5, 2),
            hexagon(4),
            spiral(50),
            line(17),
            annulus(7, 4),
        ] {
            let n = shape.len();
            let outcome = collect_after_dle(&shape);
            assert!(
                outcome.final_connected,
                "final configuration must be connected"
            );
            assert_eq!(outcome.final_positions.len(), n, "no particle may be lost");
            assert_eq!(outcome.uncollected_remaining, 0);
            // All particles end within eps of the leader.
            let leader = outcome.final_positions[0];
            let max_d = outcome
                .final_positions
                .iter()
                .map(|p| leader.grid_distance(*p))
                .max()
                .unwrap();
            assert!(max_d <= outcome.eccentricity);
        }
    }

    #[test]
    fn violated_breadcrumbs_are_reported() {
        // A gap at distance 1: the phase-1 sweep finds nothing and Collect
        // terminates early, reporting the stragglers.
        let positions = vec![Point::ORIGIN, Point::new(5, 0)];
        let mut sim = CollectSimulator::new(Point::ORIGIN, &positions);
        assert!(!sim.has_breadcrumbs());
        let outcome = sim.run();
        assert_eq!(outcome.uncollected_remaining, 1);
        assert!(!outcome.final_connected);
    }

    #[test]
    fn ring_capacity_is_respected() {
        // Many particles at the same distance: a full ring of distance 2 plus
        // breadcrumbs; the placement must fit every ring.
        let mut positions = vec![Point::ORIGIN, Point::new(1, 0)];
        positions.extend(Point::ORIGIN.ring(2));
        let mut sim = CollectSimulator::new(Point::ORIGIN, &positions);
        let outcome = sim.run();
        assert!(outcome.final_connected);
        assert_eq!(outcome.final_positions.len(), positions.len());
        // Positions are distinct.
        let mut dedup = outcome.final_positions.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), positions.len());
    }

    #[test]
    fn phase_cost_model_constants() {
        assert_eq!(omp_rounds(4), 10);
        assert_eq!(prp_rounds(4), 108);
        assert_eq!(sdp_rounds(4), 14);
    }
}
