//! The thread-sharded batch runner: many election scenarios, one call.
//!
//! Experiment sweeps (the Table 1 grid, scaling figures, throughput benches)
//! run hundreds of *independent* elections. [`BatchRunner`] shards them
//! across `std::thread` workers behind the existing
//! [`LeaderElection`]/[`RunReport`] surface: callers describe each run as a
//! [`BatchScenario`] (shape + options + a buildable [`SchedulerSpec`]) and
//! receive results **in scenario order**, regardless of which worker
//! finished first — so batched sweeps are bit-identical to sequential ones
//! and `pm-analysis` / `pm-bench` pick the runner up without changing their
//! output.
//!
//! Nothing here uses external dependencies (the build environment is
//! offline): sharding is a scoped-thread pool over an atomic work counter.

use crate::api::{ElectionError, Execution, LeaderElection, RunOptions, RunReport};
use pm_amoebot::scheduler::{
    DoubleActivation, ReverseRoundRobin, RoundRobin, Scheduler, SeededRandom,
};
use pm_grid::Shape;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A buildable, sendable description of a scheduler.
///
/// Scenarios cross thread boundaries, so they carry a *description* of the
/// scheduler rather than a live `dyn Scheduler`; every worker builds a fresh
/// instance, which also guarantees random streams never leak between runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerSpec {
    /// Creation order, once per round.
    RoundRobin,
    /// Reverse creation order, once per round.
    ReverseRoundRobin,
    /// A fresh uniformly random order each round, from the given seed.
    SeededRandom(u64),
    /// Every particle twice per round (forward then backward).
    DoubleActivation,
}

impl SchedulerSpec {
    /// Builds a fresh scheduler instance (`Send`, so built schedulers can
    /// back owned executions parked across threads).
    pub fn build(&self) -> Box<dyn Scheduler + Send> {
        match self {
            SchedulerSpec::RoundRobin => Box::new(RoundRobin),
            SchedulerSpec::ReverseRoundRobin => Box::new(ReverseRoundRobin),
            SchedulerSpec::SeededRandom(seed) => Box::new(SeededRandom::new(*seed)),
            SchedulerSpec::DoubleActivation => Box::new(DoubleActivation),
        }
    }

    /// The name the built scheduler reports (`Scheduler::name`).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerSpec::RoundRobin => "round-robin",
            SchedulerSpec::ReverseRoundRobin => "reverse-round-robin",
            SchedulerSpec::SeededRandom(_) => "seeded-random",
            SchedulerSpec::DoubleActivation => "double-activation",
        }
    }
}

/// One election run of a batch: a shape, the run options and the scheduler
/// to drive it with.
#[derive(Clone, Debug)]
pub struct BatchScenario {
    /// A caller-chosen label carried through to make results addressable.
    pub label: String,
    /// The initial shape.
    pub shape: Shape,
    /// The run options.
    pub options: RunOptions,
    /// The scheduler description.
    pub scheduler: SchedulerSpec,
}

impl BatchScenario {
    /// A scenario with default options and the default measurement
    /// scheduler (`SeededRandom` with the options' seed).
    pub fn new(label: impl Into<String>, shape: Shape) -> BatchScenario {
        let options = RunOptions::default();
        BatchScenario {
            label: label.into(),
            shape,
            scheduler: SchedulerSpec::SeededRandom(options.seed),
            options,
        }
    }

    /// Replaces the options.
    pub fn options(mut self, options: RunOptions) -> BatchScenario {
        self.options = options;
        self
    }

    /// Replaces the scheduler.
    pub fn scheduler(mut self, scheduler: SchedulerSpec) -> BatchScenario {
        self.scheduler = scheduler;
        self
    }
}

/// A caller-supplied loop that drives a started [`Execution`] to
/// completion. Jobs carry drivers rather than live state because runs
/// execute on worker threads: every worker starts its own execution and
/// hands it to the (stateless, `Sync`) driver, so batched runs stay
/// bit-identical to sequential ones. `pm-scenarios` uses this to fire
/// perturbation scripts inside batched runs; a future fair scheduler can
/// interleave the executions instead of finishing each one eagerly.
pub type JobDriver<'a> =
    &'a (dyn for<'s> Fn(Execution<'s>) -> Result<RunReport, ElectionError> + Sync);

/// A job of [`BatchRunner::run_jobs`]: a scenario bound to the algorithm
/// that should run it (sweeps that compare contenders mix algorithms within
/// one batch).
pub struct BatchJob<'a> {
    /// The algorithm to run.
    pub algorithm: &'a (dyn LeaderElection + Sync),
    /// The scenario to run it on.
    pub scenario: BatchScenario,
    /// Drives the started execution (`None` runs straight to completion).
    pub driver: Option<JobDriver<'a>>,
}

impl<'a> BatchJob<'a> {
    /// A job that runs straight to completion.
    pub fn new(
        algorithm: &'a (dyn LeaderElection + Sync),
        scenario: BatchScenario,
    ) -> BatchJob<'a> {
        BatchJob {
            algorithm,
            scenario,
            driver: None,
        }
    }

    /// Attaches a custom execution driver (perturbation loops, tracing).
    pub fn driven(mut self, driver: JobDriver<'a>) -> BatchJob<'a> {
        self.driver = Some(driver);
        self
    }
}

/// Runs one job on the calling thread: starts the execution and either
/// finishes it eagerly or hands it to the job's driver.
fn run_job(job: &BatchJob<'_>) -> Result<RunReport, ElectionError> {
    let mut scheduler = job.scenario.scheduler.build();
    let execution =
        job.algorithm
            .start(&job.scenario.shape, &mut *scheduler, &job.scenario.options)?;
    match job.driver {
        Some(drive) => drive(execution),
        None => execution.finish(),
    }
}

/// Shards independent election runs across OS threads.
///
/// Results come back **in job order** (deterministic merge): the output at
/// index `i` is exactly what `jobs[i]` would have produced sequentially, so
/// batching never changes observable results — only wall-clock time.
#[derive(Clone, Copy, Debug)]
pub struct BatchRunner {
    threads: usize,
}

impl Default for BatchRunner {
    fn default() -> BatchRunner {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// A runner using all available hardware parallelism.
    pub fn new() -> BatchRunner {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchRunner { threads }
    }

    /// A runner using exactly `threads` workers (1 = sequential; useful for
    /// tests and for measuring parallel speedup).
    pub fn with_threads(threads: usize) -> BatchRunner {
        BatchRunner {
            threads: threads.max(1),
        }
    }

    /// The number of worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every scenario with the same algorithm; results in scenario
    /// order.
    pub fn run(
        &self,
        algorithm: &(dyn LeaderElection + Sync),
        scenarios: Vec<BatchScenario>,
    ) -> Vec<Result<RunReport, ElectionError>> {
        self.run_jobs(
            scenarios
                .into_iter()
                .map(|scenario| BatchJob::new(algorithm, scenario))
                .collect(),
        )
    }

    /// Runs a heterogeneous batch (each job names its own algorithm);
    /// results in job order.
    pub fn run_jobs(&self, jobs: Vec<BatchJob<'_>>) -> Vec<Result<RunReport, ElectionError>> {
        let total = jobs.len();
        let mut slots: Vec<Option<Result<RunReport, ElectionError>>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        if total == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(total);
        if workers <= 1 {
            return jobs.iter().map(run_job).collect();
        }

        let next = AtomicUsize::new(0);
        let results = Mutex::new(slots);
        let jobs = &jobs;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Result<RunReport, ElectionError>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        local.push((i, run_job(&jobs[i])));
                    }
                    let mut slots = results.lock().expect("no worker panics while holding");
                    for (i, result) in local {
                        slots[i] = Some(result);
                    }
                });
            }
        });
        results
            .into_inner()
            .expect("all workers joined")
            .into_iter()
            .map(|slot| slot.expect("every job index was claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PaperPipeline;
    use pm_grid::builder::{annulus, hexagon, line, swiss_cheese};

    fn scenarios() -> Vec<BatchScenario> {
        vec![
            BatchScenario::new("hexagon", hexagon(4)),
            BatchScenario::new("annulus", annulus(5, 2)).scheduler(SchedulerSpec::RoundRobin),
            BatchScenario::new("swiss", swiss_cheese(5, 3))
                .options(RunOptions::with_boundary_knowledge()),
            BatchScenario::new("line", line(9)).scheduler(SchedulerSpec::DoubleActivation),
            BatchScenario::new("empty", Shape::new()),
        ]
    }

    #[test]
    fn batched_results_equal_sequential_results_in_order() {
        let sequential = BatchRunner::with_threads(1).run(&PaperPipeline, scenarios());
        let batched = BatchRunner::with_threads(4).run(&PaperPipeline, scenarios());
        assert_eq!(sequential.len(), batched.len());
        for (i, (s, b)) in sequential.iter().zip(batched.iter()).enumerate() {
            match (s, b) {
                (Ok(s), Ok(b)) => assert_eq!(s, b, "scenario {i} diverged"),
                (Err(s), Err(b)) => assert_eq!(s, b, "scenario {i} errors diverged"),
                _ => panic!("scenario {i}: one path failed, the other did not"),
            }
        }
        // The empty-shape scenario surfaces its error at its own index.
        assert!(matches!(
            batched[4],
            Err(ElectionError::InvalidInitialConfiguration(_))
        ));
        assert!(batched[..4].iter().all(|r| r.is_ok()));
    }

    #[test]
    fn batch_runs_match_direct_elect_calls() {
        let batched = BatchRunner::new().run(&PaperPipeline, scenarios());
        for (scenario, batch_result) in scenarios().into_iter().zip(batched) {
            let mut scheduler = scenario.scheduler.build();
            let direct = PaperPipeline.elect(&scenario.shape, &mut *scheduler, &scenario.options);
            match (direct, batch_result) {
                (Ok(d), Ok(b)) => assert_eq!(d, b, "{}", scenario.label),
                (Err(d), Err(b)) => assert_eq!(d, b, "{}", scenario.label),
                _ => panic!("{}: batch and direct disagree on success", scenario.label),
            }
        }
    }

    #[test]
    fn heterogeneous_jobs_keep_their_algorithms() {
        use crate::api::phase;
        let jobs = vec![
            BatchJob::new(&PaperPipeline, BatchScenario::new("full", hexagon(3))),
            BatchJob::new(
                &PaperPipeline,
                BatchScenario::new("dle-only", hexagon(3)).options(RunOptions {
                    assume_outer_boundary_known: true,
                    reconnect: false,
                    ..RunOptions::default()
                }),
            ),
        ];
        let results = BatchRunner::with_threads(2).run_jobs(jobs);
        let full = results[0].as_ref().unwrap();
        let dle_only = results[1].as_ref().unwrap();
        assert!(full.phases.iter().any(|p| p.name == phase::OBD));
        assert!(!dle_only.phases.iter().any(|p| p.name == phase::OBD));
        assert!(full.predicate_holds());
    }

    #[test]
    fn scheduler_specs_build_what_they_name() {
        for spec in [
            SchedulerSpec::RoundRobin,
            SchedulerSpec::ReverseRoundRobin,
            SchedulerSpec::SeededRandom(7),
            SchedulerSpec::DoubleActivation,
        ] {
            assert_eq!(spec.build().name(), spec.name());
        }
    }

    #[test]
    fn driven_jobs_batch_deterministically() {
        use crate::api::{Execution, StepOutcome};
        // A driver that injects a fault before round 2 of the round-driven
        // phase: batched results must equal sequential ones exactly.
        fn drive(mut execution: Execution<'_>) -> Result<RunReport, ElectionError> {
            let mut fired = false;
            loop {
                if !fired && execution.status().next_round == Some(2) {
                    fired = true;
                    let mut system = execution.system().expect("round-driven phase");
                    let victim = system.particle_positions()[0];
                    system.remove_at(victim);
                    system.reinitialize();
                }
                if let StepOutcome::Finished(report) = execution.step_round()? {
                    return Ok(report);
                }
            }
        }
        let jobs = || -> Vec<BatchJob<'static>> {
            (0..4)
                .map(|i| {
                    BatchJob::new(
                        &PaperPipeline,
                        BatchScenario::new(format!("j{i}"), hexagon(3)),
                    )
                    .driven(&drive)
                })
                .collect()
        };
        let sequential = BatchRunner::with_threads(1).run_jobs(jobs());
        let batched = BatchRunner::with_threads(4).run_jobs(jobs());
        for (s, b) in sequential.iter().zip(&batched) {
            let (s, b) = (s.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(s, b);
            assert_eq!(s.final_positions.len(), hexagon(3).len() - 1);
            assert!(s.unique_leader());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(BatchRunner::new()
            .run(&PaperPipeline, Vec::new())
            .is_empty());
        assert_eq!(BatchRunner::with_threads(0).threads(), 1);
    }
}
