//! The unified leader-election execution API.
//!
//! Every algorithm the workspace can run — the paper's pipeline and the
//! Table 1 baselines in `pm-baselines` — implements one trait,
//! [`LeaderElection`], and produces one result type, [`RunReport`].
//! Experiments, benches, examples and future runners all drive elections
//! through this surface instead of per-algorithm entry points:
//!
//! ```
//! use pm_core::api::Election;
//! use pm_amoebot::scheduler::SeededRandom;
//! use pm_grid::builder::annulus;
//!
//! let shape = annulus(5, 2);
//! let report = Election::on(&shape)
//!     .scheduler(SeededRandom::new(7))
//!     .track_connectivity()
//!     .run()
//!     .expect("election succeeds on a connected shape");
//! assert!(report.unique_leader());
//! assert!(shape.area().contains(report.leader));
//! assert!(report.final_connected);
//! ```
//!
//! The variants of Table 1 are selected through [`RunOptions`] rather than
//! through different entry points: `assume_boundary_known` skips the OBD
//! phase (the paper's `O(D_A)` row), `skip_reconnection` stops after DLE.
//!
//! # Steppable executions
//!
//! `elect` is run-to-completion; the primitive underneath is
//! [`LeaderElection::start`], which returns a resumable [`Execution`]
//! handle. The caller pumps rounds with [`Execution::step_round`], inspects
//! progress with [`Execution::status`], and may mutate the live particle
//! system **between** rounds through [`Execution::system`] — faults strike
//! between arbitrary rounds, under the caller's control, instead of being
//! threaded through observer callbacks:
//!
//! ```
//! use pm_amoebot::scheduler::SeededRandom;
//! use pm_core::api::{LeaderElection, PaperPipeline, RunOptions, StepOutcome};
//! use pm_grid::builder::hexagon;
//!
//! let shape = hexagon(4);
//! let mut scheduler = SeededRandom::new(7);
//! let opts = RunOptions::default();
//! let mut execution = PaperPipeline.start(&shape, &mut scheduler, &opts)?;
//! let report = loop {
//!     // The adversary strikes before round 3 of the round-driven phase:
//!     // remove a particle, then reset the survivors so the election
//!     // restarts cleanly on the perturbed configuration.
//!     if execution.status().next_round == Some(3) {
//!         let mut system = execution.system().expect("round-driven phase");
//!         let victim = system.particle_positions()[0];
//!         system.remove_at(victim);
//!         system.reinitialize();
//!     }
//!     match execution.step_round()? {
//!         StepOutcome::Finished(report) => break report,
//!         _ => {}
//!     }
//! };
//! assert!(report.unique_leader());
//! assert_eq!(report.final_positions.len(), shape.len() - 1);
//! # Ok::<(), pm_core::api::ElectionError>(())
//! ```
//!
//! Round-by-round *instrumentation* (without mutation) plugs in through
//! [`RunObserver`], which [`LeaderElection::elect_observed`] drives from the
//! same stepping loop.

use crate::collect::{CollectOutcome, CollectSimulator};
use crate::dle::{count_decisions, default_round_budget, DleAlgorithm, DleMemory, DleOutcome};
use crate::obd::run_obd;
use pm_amoebot::scheduler::{RunError, Runner, RunnerSnapshot, Scheduler, SeededRandom};
use pm_amoebot::system::{OccupancyBackend, ParticleSystem, SystemControl};
use pm_grid::{Point, Shape};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// Canonical phase names used in [`PhaseReport::name`] and observer
/// callbacks.
pub mod phase {
    /// Outer-boundary detection (Section 5).
    pub const OBD: &str = "obd";
    /// Disconnecting leader election (Section 4.1).
    pub const DLE: &str = "dle";
    /// Reconnection (Section 4.3).
    pub const COLLECT: &str = "collect";
    /// The single phase of a baseline that runs as one round-driven loop.
    pub const ELECTION: &str = "election";
    /// The announcement flood of the randomized boundary baseline.
    pub const FLOOD: &str = "flood";
}

/// Options of a single election run, shared by every [`LeaderElection`]
/// implementation. Options an algorithm has no use for are ignored (the
/// closed-form baselines ignore `track_connectivity`, the deterministic ones
/// ignore `seed`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Whether particles are assumed to know initially which of their
    /// incident empty points lie on the outer face. When `true` the paper
    /// pipeline skips the OBD phase (Table 1, next-to-last row).
    pub assume_outer_boundary_known: bool,
    /// Whether to run Algorithm Collect after DLE to reconnect the system.
    pub reconnect: bool,
    /// Whether to track connectivity round-by-round during round-driven
    /// phases (costs one BFS per round).
    pub track_connectivity: bool,
    /// Round budget for round-driven phases; `None` uses the algorithm's
    /// generous default. Exhausting the budget surfaces as
    /// [`ElectionError::Run`] (paper pipeline, a bug per Theorem 18) or
    /// [`ElectionError::Stuck`] (baselines that legitimately stall, e.g.
    /// erosion on shapes with holes).
    pub round_budget: Option<u64>,
    /// Seed for randomized algorithms and for the default scheduler.
    pub seed: u64,
    /// Which occupancy data structure the particle system uses for
    /// round-driven phases. The dense default is the fast path; the hashed
    /// backend is the legacy reference, kept selectable so differential
    /// tests can prove the two paths produce bit-identical reports.
    pub occupancy: OccupancyBackend,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            assume_outer_boundary_known: false,
            reconnect: true,
            track_connectivity: false,
            round_budget: None,
            seed: 7,
            occupancy: OccupancyBackend::Dense,
        }
    }
}

impl RunOptions {
    /// The `O(D_A)` configuration of the paper pipeline: boundary knowledge
    /// assumed, reconnection enabled.
    pub fn with_boundary_knowledge() -> RunOptions {
        RunOptions {
            assume_outer_boundary_known: true,
            ..RunOptions::default()
        }
    }
}

/// An error from an election run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ElectionError {
    /// The initial configuration is not a permitted one (empty or
    /// disconnected).
    InvalidInitialConfiguration(&'static str),
    /// The underlying execution failed (round budget exhausted — for the
    /// paper pipeline this would indicate a bug given Theorem 18).
    Run(RunError),
    /// The algorithm made no progress within its round budget. This is the
    /// *expected* outcome for some baseline/workload pairs — erosion-based
    /// election stalls on shapes with holes, which is exactly the limitation
    /// Table 1 records.
    Stuck {
        /// Rounds executed before the run was declared stuck.
        after_rounds: u64,
    },
}

impl fmt::Display for ElectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElectionError::InvalidInitialConfiguration(why) => {
                write!(f, "invalid initial configuration: {why}")
            }
            ElectionError::Run(e) => write!(f, "execution failed: {e}"),
            ElectionError::Stuck { after_rounds } => {
                write!(f, "algorithm made no progress after {after_rounds} rounds")
            }
        }
    }
}

impl std::error::Error for ElectionError {}

impl From<RunError> for ElectionError {
    fn from(e: RunError) -> ElectionError {
        ElectionError::Run(e)
    }
}

/// Statistics of one phase of an election run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase name (see [`phase`]).
    pub name: String,
    /// Asynchronous rounds charged to the phase.
    pub rounds: u64,
    /// Particle activations executed in the phase (0 for phases simulated in
    /// closed form).
    pub activations: u64,
    /// Movement operations (expansions + contractions + handovers) executed
    /// in the phase (0 for phases simulated in closed form).
    pub moves: u64,
}

/// Wall-clock profile of one phase of a *profiled* execution — the
/// out-of-band companion to [`PhaseReport`], produced only when the caller
/// opted in via [`Execution::enable_profiling`].
///
/// Profiles ride along on [`RunReport::profile`] but are **excluded from
/// serialization** (`#[serde(skip)]`): wall-clock timings differ run to
/// run, and serialized reports are golden-diffed byte-for-byte. A
/// deserialized report therefore always carries an empty profile.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Phase name (see [`phase`]).
    pub name: String,
    /// [`Execution::step_round`] calls charged to the phase, boundary steps
    /// included.
    pub steps: u64,
    /// Rounds the phase reported (mirrors [`PhaseReport::rounds`]).
    pub rounds: u64,
    /// Activations the phase reported (mirrors [`PhaseReport::activations`]).
    pub activations: u64,
    /// Moves the phase reported (mirrors [`PhaseReport::moves`]).
    pub moves: u64,
    /// Wall-clock nanoseconds spent inside the phase's steps.
    pub wall_nanos: u64,
}

/// Connectivity observations of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectivityReport {
    /// Whether round-by-round tracking was enabled
    /// ([`RunOptions::track_connectivity`]).
    pub tracked: bool,
    /// Whether the occupied shape was ever observed disconnected at a round
    /// boundary (meaningful only when `tracked`).
    pub ever_disconnected: bool,
    /// Number of round boundaries at which the shape was disconnected
    /// (meaningful only when `tracked`).
    pub disconnected_rounds: u64,
}

/// The uniform, serializable result of any [`LeaderElection`] run.
///
/// Equality ignores [`RunReport::profile`]: profiles carry wall-clock
/// timings, and two executions of the same scenario must compare equal
/// whether or not either was profiled (checkpoint-restore tests rely on
/// exactly this).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// The algorithm's [`LeaderElection::name`].
    pub algorithm: String,
    /// The scheduler's name (`Scheduler::name`).
    pub scheduler: String,
    /// Number of particles of the initial configuration.
    pub n: usize,
    /// The elected leader's final position. Multi-leader baselines (the
    /// quadratic boundary election elects up to six) report a representative
    /// leader here and the count in [`RunReport::leaders`].
    pub leader: Point,
    /// Number of leaders elected (1 for every algorithm but the quadratic
    /// baseline).
    pub leaders: usize,
    /// Number of particles that decided follower.
    pub followers: usize,
    /// Number of particles still undecided at termination (0 whenever the
    /// algorithm upholds the election predicate).
    pub undecided: usize,
    /// Per-phase statistics, in execution order.
    pub phases: Vec<PhaseReport>,
    /// Total rounds across all phases (always the sum of
    /// [`RunReport::phases`] rounds).
    pub total_rounds: u64,
    /// Total particle activations across all phases.
    pub activations: u64,
    /// Total movement operations across all phases.
    pub moves: u64,
    /// Peak per-particle memory across phases, in bits. Measured from the
    /// particle memory structs for activation-driven phases; a nominal
    /// constant-word estimate for phases simulated in closed form.
    pub peak_memory_bits: u64,
    /// Connectivity observations.
    pub connectivity: ConnectivityReport,
    /// Whether the final configuration is connected.
    pub final_connected: bool,
    /// Final particle positions.
    pub final_positions: Vec<Point>,
    /// Per-phase wall-clock profile, populated only by profiled executions
    /// ([`Execution::enable_profiling`]); empty otherwise. Never serialized
    /// — see [`PhaseProfile`].
    #[serde(skip)]
    pub profile: Vec<PhaseProfile>,
}

impl PartialEq for RunReport {
    /// Field-wise equality over every *deterministic* field; the wall-clock
    /// [`RunReport::profile`] is deliberately excluded.
    fn eq(&self, other: &RunReport) -> bool {
        self.algorithm == other.algorithm
            && self.scheduler == other.scheduler
            && self.n == other.n
            && self.leader == other.leader
            && self.leaders == other.leaders
            && self.followers == other.followers
            && self.undecided == other.undecided
            && self.phases == other.phases
            && self.total_rounds == other.total_rounds
            && self.activations == other.activations
            && self.moves == other.moves
            && self.peak_memory_bits == other.peak_memory_bits
            && self.connectivity == other.connectivity
            && self.final_connected == other.final_connected
            && self.final_positions == other.final_positions
    }
}

impl RunReport {
    /// Whether exactly one leader was elected.
    pub fn unique_leader(&self) -> bool {
        self.leaders == 1
    }

    /// Whether the leader-election predicate holds: a unique leader, every
    /// other particle a follower (none undecided), and a connected final
    /// configuration.
    pub fn predicate_holds(&self) -> bool {
        self.unique_leader() && self.undecided == 0 && self.final_connected
    }

    /// The final shape of the particle system.
    pub fn final_shape(&self) -> Shape {
        Shape::from_points(self.final_positions.iter().copied())
    }

    /// Rounds charged to the named phase (0 if the phase did not run).
    pub fn phase_rounds(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.rounds)
            .sum()
    }

    /// Whether the per-phase rounds sum to the reported total (a report
    /// invariant; the conformance suite asserts it for every algorithm).
    pub fn rounds_consistent(&self) -> bool {
        self.total_rounds == self.phases.iter().map(|p| p.rounds).sum::<u64>()
    }
}

/// Hook for round-by-round instrumentation of an election run.
///
/// Phase boundaries fire for every phase; [`RunObserver::on_round`] fires
/// after each asynchronous round of *round-driven* phases (DLE, erosion).
/// Phases simulated in closed form (OBD, Collect, the boundary baselines)
/// report only their boundaries.
///
/// Observers are read-only instrumentation driven by
/// [`LeaderElection::elect_observed`]'s stepping loop. Mid-run *mutation*
/// (fault injection) does not go through observers: hold the [`Execution`]
/// handle yourself, and mutate [`Execution::system`] between rounds.
pub trait RunObserver {
    /// A phase is starting.
    fn on_phase_start(&mut self, algorithm: &str, phase: &str) {
        let _ = (algorithm, phase);
    }

    /// A round of a round-driven phase completed. `rounds_so_far` counts
    /// rounds within the current phase.
    fn on_round(&mut self, phase: &str, rounds_so_far: u64) {
        let _ = (phase, rounds_so_far);
    }

    /// A phase finished; `report` carries its statistics.
    fn on_phase_end(&mut self, algorithm: &str, report: &PhaseReport) {
        let _ = (algorithm, report);
    }
}

/// The do-nothing observer used when none is supplied.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl RunObserver for NoopObserver {}

// ---------------------------------------------------------------------------
// Steppable executions
// ---------------------------------------------------------------------------

/// What one [`Execution::step_round`] call did.
///
/// A run unfolds as a flat sequence of outcomes: each phase contributes
/// `PhaseStarted`, then — for round-driven phases only — one
/// `RoundCompleted` per asynchronous round, then `PhaseEnded`; phases
/// simulated in closed form (OBD, Collect, the boundary baselines) go from
/// `PhaseStarted` to `PhaseEnded` in a single coarse step. The final step
/// yields `Finished` with the complete [`RunReport`].
///
/// Serializes with the same externally-tagged JSON shape as every other
/// report type, e.g. `{"RoundCompleted": {"phase": "dle", "rounds": 3}}` —
/// the per-step lines `pm-scenarios trace --json` emits.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StepOutcome {
    /// A phase began (see [`phase`] for the names).
    PhaseStarted {
        /// The phase that is starting.
        phase: &'static str,
    },
    /// One asynchronous round of a round-driven phase completed.
    RoundCompleted {
        /// The phase the round belongs to.
        phase: &'static str,
        /// Completed rounds within the phase (1 after the first round).
        rounds: u64,
    },
    /// The current phase finished with the given statistics.
    PhaseEnded {
        /// The completed phase's statistics (also collected into
        /// [`RunReport::phases`]).
        report: PhaseReport,
    },
    /// The run is complete. Further steps return the same report.
    Finished(RunReport),
}

/// A point-in-time snapshot of a running [`Execution`].
///
/// # JSON shape
///
/// Serializes as a flat object mirroring [`RunReport`]'s field style, so
/// `pm-scenarios trace --json` and the session server's `watch` stream emit
/// the *same* per-round shape:
///
/// ```json
/// {
///   "algorithm": "dle+collect",
///   "phase": "dle",
///   "rounds_in_phase": 3,
///   "total_rounds": 17,
///   "decided": 12,
///   "undecided": 25,
///   "next_round": 3,
///   "finished": false
/// }
/// ```
///
/// `phase` and `next_round` are `null` at phase boundaries and after
/// completion; every other field is always present.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionStatus {
    /// The algorithm's [`LeaderElection::name`].
    pub algorithm: &'static str,
    /// The phase currently executing (between its `PhaseStarted` and
    /// `PhaseEnded` steps), if any.
    pub phase: Option<&'static str>,
    /// Completed rounds within the current phase (0 outside round-driven
    /// phases).
    pub rounds_in_phase: u64,
    /// Rounds charged so far across all phases, completed phases included.
    pub total_rounds: u64,
    /// Particles that have decided (leader or follower). Phases simulated
    /// in closed form decide everyone at their final step.
    pub decided: usize,
    /// Particles still undecided.
    pub undecided: usize,
    /// `Some(r)` iff the next [`Execution::step_round`] will execute round
    /// `r` (0-based) of the active round-driven phase — the hook for
    /// mutating [`Execution::system`] at scripted rounds: a fault applied
    /// while `next_round == Some(r)` strikes *before* round `r` runs.
    /// `None` at phase boundaries, during closed-form phases, and once the
    /// phase's algorithm has completed or exhausted its budget.
    pub next_round: Option<u64>,
    /// Whether the run has produced its [`StepOutcome::Finished`] report.
    pub finished: bool,
}

/// The implementation surface behind [`Execution`]: one algorithm's
/// resumable state machine. Callers never see this trait — they hold an
/// [`Execution`] — but every [`LeaderElection::start`] implementation
/// provides one and wraps it with [`Execution::new`].
pub trait ExecutionDriver {
    /// Advances the state machine by one step (see [`StepOutcome`] for the
    /// grammar of outcomes).
    ///
    /// # Errors
    ///
    /// The same errors as [`LeaderElection::elect`], surfaced at the step
    /// that hits them; stepping again after an error returns it again.
    fn step(&mut self) -> Result<StepOutcome, ElectionError>;

    /// The current status snapshot.
    fn status(&self) -> ExecutionStatus;

    /// The upcoming round of the active round-driven phase, with its phase
    /// name: `Some((phase, r))` iff the next [`ExecutionDriver::step`] will
    /// execute round `r`. The default derives it from
    /// [`ExecutionDriver::status`]; drivers with a live particle system
    /// override it with an `O(1)` path, since `status()` tallies
    /// per-particle decision counts and per-round pollers (perturbation
    /// scripts) should not pay `O(n)` per round for it.
    fn next_round(&self) -> Option<(&'static str, u64)> {
        let status = self.status();
        status.phase.zip(status.next_round)
    }

    /// Mutable access to the live particle system while a round-driven
    /// phase is active; `None` otherwise.
    fn control(&mut self) -> Option<Box<dyn SystemControl + '_>>;

    /// A portable snapshot of the driver's complete mid-run state, as a
    /// serde value tree — the substrate of *re-baselined* checkpoints,
    /// whose replay cost is bounded by the snapshot age instead of the
    /// session age. Drivers without native snapshot support (the default)
    /// return `None`; callers then fall back to replaying from step zero.
    fn snapshot(&self) -> Option<serde::Value> {
        None
    }

    /// Restores state captured by [`ExecutionDriver::snapshot`] into a
    /// *freshly started* driver of the same configuration. After a
    /// successful restore the driver continues exactly as the snapshotted
    /// one would have — byte-identically, by the same determinism contract
    /// as replay.
    ///
    /// # Errors
    ///
    /// Malformed or mismatched snapshots are rejected; the driver should
    /// then be discarded (callers fall back to a full replay on a fresh
    /// driver).
    fn restore_snapshot(&mut self, snapshot: &serde::Value) -> Result<(), String> {
        let _ = snapshot;
        Err("this execution does not support native snapshots".to_string())
    }
}

/// A resumable, inspectable election run: the inversion-of-control handle
/// returned by [`LeaderElection::start`].
///
/// The caller owns the loop: [`Execution::step_round`] advances the run by
/// one observable step, [`Execution::status`] reports progress,
/// [`Execution::system`] grants mutable access to the particle system
/// between rounds (fault injection), and [`Execution::finish`] runs the
/// remainder to completion. [`LeaderElection::elect`] is exactly
/// `start(..)?.finish()`.
///
/// Executions are `Send` (drivers carry `Send` state and schedulers are
/// `Send`), so a session scheduler may park thousands of them and sweep
/// them from worker threads; see [`crate::session::SessionScheduler`].
pub struct Execution<'a> {
    driver: Box<dyn ExecutionDriver + Send + 'a>,
    /// Per-phase wall-clock accounting, present only after
    /// [`Execution::enable_profiling`] — the disabled path adds no timing
    /// call and no branch beyond one `Option` check.
    profiler: Option<Profiler>,
}

/// The profiling state of a profiled [`Execution`]: phase profiles in
/// execution order, with the index of the phase currently running.
#[derive(Default)]
struct Profiler {
    phases: Vec<PhaseProfile>,
    current: Option<usize>,
}

impl Profiler {
    /// Charges one completed step (its outcome and wall time) to the
    /// profile, and stamps the accumulated profile into finished reports.
    fn record(&mut self, outcome: &mut StepOutcome, wall_nanos: u64) {
        match outcome {
            StepOutcome::PhaseStarted { phase } => {
                self.phases.push(PhaseProfile {
                    name: (*phase).to_string(),
                    steps: 1,
                    wall_nanos,
                    ..PhaseProfile::default()
                });
                self.current = Some(self.phases.len() - 1);
            }
            StepOutcome::RoundCompleted { .. } => {
                if let Some(profile) = self.current.and_then(|i| self.phases.get_mut(i)) {
                    profile.steps += 1;
                    profile.wall_nanos += wall_nanos;
                }
            }
            StepOutcome::PhaseEnded { report } => {
                if let Some(profile) = self.current.take().and_then(|i| self.phases.get_mut(i)) {
                    profile.steps += 1;
                    profile.wall_nanos += wall_nanos;
                    profile.rounds = report.rounds;
                    profile.activations = report.activations;
                    profile.moves = report.moves;
                }
            }
            StepOutcome::Finished(report) => {
                report.profile = self.phases.clone();
            }
        }
    }
}

impl<'a> Execution<'a> {
    /// Wraps an algorithm's driver. Called by [`LeaderElection::start`]
    /// implementations, not by end users.
    pub fn new(driver: impl ExecutionDriver + Send + 'a) -> Execution<'a> {
        Execution {
            driver: Box::new(driver),
            profiler: None,
        }
    }

    /// Turns on per-phase wall-clock profiling: from now on every
    /// [`Execution::step_round`] is timed and charged to the active phase,
    /// and the final report's [`RunReport::profile`] carries one
    /// [`PhaseProfile`] per executed phase. Telemetry is out-of-band by
    /// contract — profiling never changes the election's outcome, its
    /// serialized bytes, or its checkpoint/replay behavior (restored
    /// executions re-profile their own replay). Idempotent.
    pub fn enable_profiling(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Profiler::default());
        }
    }

    /// Whether [`Execution::enable_profiling`] was called.
    pub fn profiling_enabled(&self) -> bool {
        self.profiler.is_some()
    }

    /// The per-phase profile accumulated so far (the running phase's entry
    /// updates step by step). Empty unless profiling is enabled.
    pub fn profile(&self) -> &[PhaseProfile] {
        self.profiler
            .as_ref()
            .map_or(&[], |profiler| profiler.phases.as_slice())
    }

    /// Advances the run by one step: a phase boundary, one asynchronous
    /// round of a round-driven phase, one closed-form phase body, or the
    /// final report. Stepping a finished execution returns
    /// [`StepOutcome::Finished`] again.
    ///
    /// # Errors
    ///
    /// The same errors as [`LeaderElection::elect`], surfaced at the step
    /// that hits them.
    pub fn step_round(&mut self) -> Result<StepOutcome, ElectionError> {
        let Some(profiler) = self.profiler.as_mut() else {
            return self.driver.step();
        };
        let started = std::time::Instant::now();
        let mut outcome = self.driver.step()?;
        let ended = std::time::Instant::now();
        let wall_nanos =
            u64::try_from(ended.duration_since(started).as_nanos()).unwrap_or(u64::MAX);
        profiler.record(&mut outcome, wall_nanos);
        // Tracing rides the same opt-in gate as profiling (the unprofiled
        // path above stays one `Option` check) and reuses the step's two
        // clock reads; with no recorder installed this is one atomic load.
        if pm_telemetry::trace::enabled() {
            Execution::trace_step(&outcome, started, ended);
        }
        Ok(outcome)
    }

    /// Records one profiled step on the trace timeline: rounds and the
    /// closed-form/finalize steps as spans (timestamped from the step's own
    /// profiling clock reads, so tracing adds no extra timing), phase
    /// starts as instant markers. Span names stay `&'static str` on the
    /// per-round path — no allocation per step.
    fn trace_step(outcome: &StepOutcome, started: std::time::Instant, ended: std::time::Instant) {
        use pm_telemetry::trace;
        match outcome {
            StepOutcome::PhaseStarted { phase } => trace::instant("phase", *phase),
            StepOutcome::RoundCompleted { phase, .. } => {
                trace::span_at("round", *phase, started, ended);
            }
            StepOutcome::PhaseEnded { report } => {
                // The step that ended the phase: a closed-form phase's whole
                // body, or a round-driven phase's finalize step.
                trace::span_at("phase-step", report.name.clone(), started, ended);
            }
            StepOutcome::Finished(_) => trace::span_at("phase-step", "finish", started, ended),
        }
    }

    /// The current status snapshot: phase, round counters, decided and
    /// undecided particle counts, and what the next step will do. Costs a
    /// pass over the live particles (the decision tallies); per-round
    /// pollers that only need the upcoming round should use
    /// [`Execution::next_round`].
    pub fn status(&self) -> ExecutionStatus {
        self.driver.status()
    }

    /// The upcoming round of the active round-driven phase, with its phase
    /// name — the `O(1)` hook perturbation drivers poll every round:
    /// `Some((phase, r))` iff the next [`Execution::step_round`] will
    /// execute round `r` (equivalently, `status()`'s `phase` zipped with
    /// its `next_round`).
    pub fn next_round(&self) -> Option<(&'static str, u64)> {
        self.driver.next_round()
    }

    /// Mutable access to the live particle system, available between steps
    /// of an active round-driven phase (`None` at phase boundaries and
    /// during closed-form phases). Mutations take effect before the next
    /// round; finish with [`SystemControl::reinitialize`] so the algorithm
    /// restarts cleanly on the perturbed configuration.
    pub fn system(&mut self) -> Option<Box<dyn SystemControl + '_>> {
        self.driver.control()
    }

    /// A portable snapshot of the execution's complete mid-run state, or
    /// `None` when the underlying driver has no native snapshot support
    /// (see [`ExecutionDriver::snapshot`]).
    pub fn snapshot(&self) -> Option<serde::Value> {
        self.driver.snapshot()
    }

    /// Restores a snapshot captured by [`Execution::snapshot`] into this
    /// (freshly started, identically configured) execution.
    ///
    /// # Errors
    ///
    /// See [`ExecutionDriver::restore_snapshot`]; on error the execution
    /// should be discarded in favour of a full replay.
    pub fn restore_snapshot(&mut self, snapshot: &serde::Value) -> Result<(), String> {
        self.driver.restore_snapshot(snapshot)
    }

    /// Runs the remaining steps to completion and returns the report.
    ///
    /// # Errors
    ///
    /// See [`LeaderElection::elect`].
    pub fn finish(mut self) -> Result<RunReport, ElectionError> {
        loop {
            if let StepOutcome::Finished(report) = self.step_round()? {
                return Ok(report);
            }
        }
    }
}

/// A leader-election algorithm runnable through the unified API.
///
/// Implementations exist for the paper pipeline ([`PaperPipeline`]) and for
/// the three Table 1 baselines (in `pm-baselines`); experiments iterate over
/// `&[&dyn LeaderElection]` instead of hard-coding per-algorithm drivers.
///
/// The one required method is [`LeaderElection::start`], which begins a
/// resumable [`Execution`]; `elect` and `elect_observed` are thin default
/// drivers over the same handle.
pub trait LeaderElection {
    /// A short stable identifier used in tables and reports.
    fn name(&self) -> &'static str;

    /// Starts the election on `shape` under `scheduler`, returning the
    /// [`Execution`] handle positioned before the first phase. The handle
    /// borrows the shape and the scheduler for the run's duration.
    ///
    /// # Errors
    ///
    /// [`ElectionError::InvalidInitialConfiguration`] for empty or
    /// disconnected shapes. Errors that depend on the run itself (budget
    /// exhaustion, stalls) surface later, from the step that hits them.
    fn start<'a>(
        &'a self,
        shape: &'a Shape,
        scheduler: &'a mut (dyn Scheduler + Send),
        opts: &RunOptions,
    ) -> Result<Execution<'a>, ElectionError>;

    /// Like [`LeaderElection::start`], but the returned [`Execution`] *owns*
    /// its shape and scheduler instead of borrowing them — the handle the
    /// session server parks across requests (and threads), where a borrowing
    /// execution could not outlive its caller's stack frame.
    ///
    /// # Errors
    ///
    /// Same as [`LeaderElection::start`].
    fn start_owned(
        &self,
        shape: &Shape,
        scheduler: Box<dyn Scheduler + Send>,
        opts: &RunOptions,
    ) -> Result<Execution<'static>, ElectionError>;

    /// Runs the election on `shape` under `scheduler` with the given
    /// options.
    ///
    /// # Errors
    ///
    /// [`ElectionError::InvalidInitialConfiguration`] for empty or
    /// disconnected shapes; [`ElectionError::Stuck`] when the algorithm
    /// cannot make progress on the workload (e.g. erosion with holes);
    /// [`ElectionError::Run`] for exhausted budgets of algorithms that must
    /// terminate.
    fn elect(
        &self,
        shape: &Shape,
        scheduler: &mut (dyn Scheduler + Send),
        opts: &RunOptions,
    ) -> Result<RunReport, ElectionError> {
        self.start(shape, scheduler, opts)?.finish()
    }

    /// Like [`LeaderElection::elect`], with a [`RunObserver`] receiving
    /// phase and round callbacks — one driver loop over
    /// [`LeaderElection::start`] among many.
    ///
    /// # Errors
    ///
    /// Same as [`LeaderElection::elect`].
    fn elect_observed(
        &self,
        shape: &Shape,
        scheduler: &mut (dyn Scheduler + Send),
        opts: &RunOptions,
        observer: &mut dyn RunObserver,
    ) -> Result<RunReport, ElectionError> {
        let name = self.name();
        let mut execution = self.start(shape, scheduler, opts)?;
        loop {
            match execution.step_round()? {
                StepOutcome::PhaseStarted { phase } => observer.on_phase_start(name, phase),
                StepOutcome::RoundCompleted { phase, rounds } => observer.on_round(phase, rounds),
                StepOutcome::PhaseEnded { report } => observer.on_phase_end(name, &report),
                StepOutcome::Finished(report) => return Ok(report),
            }
        }
    }
}

/// Rejects empty and disconnected initial configurations — every
/// implementation shares the paper's permitted-initial-configuration
/// precondition.
pub fn check_initial_configuration(shape: &Shape) -> Result<(), ElectionError> {
    if shape.is_empty() {
        return Err(ElectionError::InvalidInitialConfiguration("empty shape"));
    }
    if !shape.is_connected() {
        return Err(ElectionError::InvalidInitialConfiguration(
            "initial shape must be connected",
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The paper pipeline as a LeaderElection
// ---------------------------------------------------------------------------

/// Per-particle memory of Algorithm DLE, in bits (measured from
/// [`DleMemory`]).
pub const DLE_MEMORY_BITS: u64 = (std::mem::size_of::<DleMemory>() * 8) as u64;

/// Nominal per-particle memory of the OBD primitive, in bits: a constant
/// number of machine words for the segment-competition counters (the
/// primitive is simulated in closed form, so this is the model-level `O(1)`
/// bound, not a measurement).
pub const OBD_MEMORY_BITS: u64 = 96;

/// Nominal per-particle memory of Algorithm Collect, in bits: role, phase
/// parity and movement-primitive state (closed-form simulation; model-level
/// `O(1)` bound).
pub const COLLECT_MEMORY_BITS: u64 = 32;

/// The paper's composed algorithm — `OBD → DLE → Collect` — behind the
/// unified API. Phase selection is driven by [`RunOptions`]:
/// `assume_outer_boundary_known` skips OBD, `reconnect: false` skips
/// Collect.
#[derive(Clone, Copy, Debug, Default)]
pub struct PaperPipeline;

/// The pipeline execution's position in its phase sequence. Closed-form
/// phases (OBD, Collect) have a single `Run*` state whose step simulates
/// the whole phase; DLE's `RunDle` state is re-entered once per round.
enum PipelineState {
    StartObd,
    RunObd,
    StartDle,
    RunDle,
    StartCollect,
    RunCollect,
    Finish,
    Done(Box<RunReport>),
}

/// The serialized form of a [`PipelineExecution`] mid-run: everything that
/// cannot be rebuilt by re-starting the pipeline on the same spec. The
/// runner snapshot is present exactly in the `run-dle` state (before DLE
/// the fresh runner *is* the restored runner; after DLE it has been
/// consumed into [`DleOutcome`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct PipelineSnapshot {
    /// The state-machine position, as a stable string tag.
    state: String,
    reports: Vec<PhaseReport>,
    obd_ran: bool,
    dle: Option<DleOutcome>,
    collect: Option<CollectOutcome>,
    /// The final report, present exactly in the `done` state.
    done: Option<RunReport>,
    runner: Option<RunnerSnapshot<DleMemory>>,
}

/// All in-flight state of one paper-pipeline run: the resumable state
/// machine behind [`PaperPipeline`]'s [`LeaderElection::start`]. Generic
/// over the scheduler it owns, so the same machine backs borrowing
/// executions (`S = &mut dyn Scheduler`) and owned, `'static` ones
/// (`S = Box<dyn Scheduler + Send>`, shape cloned into the `Cow`).
struct PipelineExecution<'a, S: Scheduler> {
    opts: RunOptions,
    scheduler_name: &'static str,
    shape: Cow<'a, Shape>,
    /// Per-phase statistics of completed phases, built exactly once: the
    /// same structs surface in [`StepOutcome::PhaseEnded`] and in the final
    /// [`RunReport::phases`], so the two can never diverge.
    reports: Vec<PhaseReport>,
    obd_ran: bool,
    /// The live round-driven phase; consumed when DLE ends.
    runner: Option<Runner<DleAlgorithm, S>>,
    budget: u64,
    dle: Option<DleOutcome>,
    collect: Option<CollectOutcome>,
    state: PipelineState,
}

impl<'a, S: Scheduler> PipelineExecution<'a, S> {
    fn start(
        shape: Cow<'a, Shape>,
        scheduler: S,
        opts: &RunOptions,
    ) -> Result<PipelineExecution<'a, S>, ElectionError> {
        check_initial_configuration(&shape)?;
        let scheduler_name = scheduler.name();
        let system = ParticleSystem::from_shape_with_backend(&shape, &DleAlgorithm, opts.occupancy);
        let mut runner = Runner::new(system, DleAlgorithm, scheduler);
        runner.track_connectivity = opts.track_connectivity;
        let budget = opts
            .round_budget
            .unwrap_or_else(|| default_round_budget(&shape));
        let state = if opts.assume_outer_boundary_known {
            PipelineState::StartDle
        } else {
            PipelineState::StartObd
        };
        Ok(PipelineExecution {
            opts: *opts,
            scheduler_name,
            shape,
            reports: Vec::new(),
            obd_ran: false,
            runner: Some(runner),
            budget,
            dle: None,
            collect: None,
            state,
        })
    }

    /// Ends a phase: records its report and hands it to the step outcome.
    fn end_phase(&mut self, report: PhaseReport) -> StepOutcome {
        self.reports.push(report.clone());
        StepOutcome::PhaseEnded { report }
    }

    /// `(decided, undecided)` counts of the current execution point.
    fn counts(&self) -> (usize, usize) {
        if let Some(dle) = &self.dle {
            let (leaders, followers, undecided) = dle.status_counts;
            return (leaders + followers, undecided);
        }
        if let Some(runner) = &self.runner {
            if matches!(self.state, PipelineState::RunDle) {
                return count_decisions(runner.system().iter().map(|(_, p)| p.memory().status));
            }
        }
        (0, self.shape.len())
    }
}

impl<S: Scheduler> ExecutionDriver for PipelineExecution<'_, S> {
    fn step(&mut self) -> Result<StepOutcome, ElectionError> {
        match &mut self.state {
            PipelineState::StartObd => {
                self.state = PipelineState::RunObd;
                Ok(StepOutcome::PhaseStarted { phase: phase::OBD })
            }
            PipelineState::RunObd => {
                // Closed-form simulation: the whole phase is one coarse
                // step. Its output is exactly the `outer[0..5]` input DLE's
                // initializer consumes.
                let obd = run_obd(&self.shape);
                self.obd_ran = true;
                self.state = PipelineState::StartDle;
                Ok(self.end_phase(PhaseReport {
                    name: phase::OBD.to_string(),
                    rounds: obd.rounds,
                    activations: 0,
                    moves: 0,
                }))
            }
            PipelineState::StartDle => {
                self.state = PipelineState::RunDle;
                Ok(StepOutcome::PhaseStarted { phase: phase::DLE })
            }
            PipelineState::RunDle => {
                let runner = self.runner.as_mut().expect("RunDle state holds a runner");
                if runner.system().is_empty() {
                    // Only a caller-side perturbation can empty the system
                    // (the initial configuration was checked non-empty).
                    return Err(ElectionError::Run(RunError::EmptySystem));
                }
                if runner.is_complete() {
                    let mut runner = self.runner.take().expect("checked above");
                    let stats = runner.finalize();
                    let dle = DleOutcome::from_run(stats, runner.into_system());
                    let report = PhaseReport {
                        name: phase::DLE.to_string(),
                        rounds: stats.rounds,
                        activations: stats.activations,
                        moves: stats.moves(),
                    };
                    self.dle = Some(dle);
                    self.state = if self.opts.reconnect {
                        PipelineState::StartCollect
                    } else {
                        PipelineState::Finish
                    };
                    return Ok(self.end_phase(report));
                }
                if runner.stats().rounds >= self.budget {
                    return Err(ElectionError::Run(RunError::RoundLimitExceeded {
                        limit: self.budget,
                    }));
                }
                let stats = runner.step();
                Ok(StepOutcome::RoundCompleted {
                    phase: phase::DLE,
                    rounds: stats.rounds,
                })
            }
            PipelineState::StartCollect => {
                self.state = PipelineState::RunCollect;
                Ok(StepOutcome::PhaseStarted {
                    phase: phase::COLLECT,
                })
            }
            PipelineState::RunCollect => {
                let dle = self.dle.as_ref().expect("Collect runs after DLE");
                let mut sim = CollectSimulator::new(dle.leader_point, &dle.final_positions);
                let collect = sim.run();
                let report = PhaseReport {
                    name: phase::COLLECT.to_string(),
                    rounds: collect.rounds,
                    activations: 0,
                    moves: 0,
                };
                self.collect = Some(collect);
                self.state = PipelineState::Finish;
                Ok(self.end_phase(report))
            }
            PipelineState::Finish => {
                let dle = self.dle.as_ref().expect("the pipeline always runs DLE");

                let mut peak_memory_bits = DLE_MEMORY_BITS;
                if self.obd_ran {
                    peak_memory_bits = peak_memory_bits.max(OBD_MEMORY_BITS);
                }
                if self.collect.is_some() {
                    peak_memory_bits = peak_memory_bits.max(COLLECT_MEMORY_BITS);
                }

                let final_positions = self
                    .collect
                    .as_ref()
                    .map(|c| c.final_positions.clone())
                    .unwrap_or_else(|| dle.final_positions.clone());
                let final_connected =
                    Shape::from_points(final_positions.iter().copied()).is_connected();

                let report = RunReport {
                    algorithm: "dle+collect".to_string(),
                    scheduler: self.scheduler_name.to_string(),
                    n: self.shape.len(),
                    leader: dle.leader_point,
                    leaders: dle.status_counts.0,
                    followers: dle.status_counts.1,
                    undecided: dle.status_counts.2,
                    total_rounds: self.reports.iter().map(|p| p.rounds).sum(),
                    activations: self.reports.iter().map(|p| p.activations).sum(),
                    moves: self.reports.iter().map(|p| p.moves).sum(),
                    phases: std::mem::take(&mut self.reports),
                    peak_memory_bits,
                    connectivity: ConnectivityReport {
                        tracked: self.opts.track_connectivity,
                        ever_disconnected: dle.stats.ever_disconnected,
                        disconnected_rounds: dle.stats.disconnected_rounds,
                    },
                    final_connected,
                    final_positions,
                    profile: Vec::new(),
                };
                self.state = PipelineState::Done(Box::new(report.clone()));
                Ok(StepOutcome::Finished(report))
            }
            PipelineState::Done(report) => Ok(StepOutcome::Finished((**report).clone())),
        }
    }

    fn status(&self) -> ExecutionStatus {
        let (phase, rounds_in_phase, next_round) = match &self.state {
            PipelineState::StartObd | PipelineState::StartDle => (None, 0, None),
            PipelineState::RunObd => (Some(phase::OBD), 0, None),
            PipelineState::RunDle => {
                let runner = self.runner.as_ref().expect("RunDle state holds a runner");
                let rounds = runner.stats().rounds;
                let next = if !runner.is_complete() && rounds < self.budget {
                    Some(rounds)
                } else {
                    None
                };
                (Some(phase::DLE), rounds, next)
            }
            PipelineState::StartCollect | PipelineState::Finish => (None, 0, None),
            PipelineState::RunCollect => (Some(phase::COLLECT), 0, None),
            PipelineState::Done(_) => (None, 0, None),
        };
        // Once finished, the phase reports have moved into the final
        // RunReport; read the totals from there.
        let completed: u64 = match &self.state {
            PipelineState::Done(report) => report.total_rounds,
            _ => self.reports.iter().map(|p| p.rounds).sum(),
        };
        let (decided, undecided) = self.counts();
        ExecutionStatus {
            algorithm: "dle+collect",
            phase,
            rounds_in_phase,
            total_rounds: completed
                + if phase == Some(phase::DLE) {
                    rounds_in_phase
                } else {
                    0
                },
            decided,
            undecided,
            next_round,
            finished: matches!(self.state, PipelineState::Done(_)),
        }
    }

    fn next_round(&self) -> Option<(&'static str, u64)> {
        if !matches!(self.state, PipelineState::RunDle) {
            return None;
        }
        let runner = self.runner.as_ref()?;
        let rounds = runner.stats().rounds;
        (!runner.is_complete() && rounds < self.budget).then_some((phase::DLE, rounds))
    }

    fn control(&mut self) -> Option<Box<dyn SystemControl + '_>> {
        if !matches!(self.state, PipelineState::RunDle) {
            return None;
        }
        self.runner
            .as_mut()
            .map(|runner| Box::new(runner.control()) as Box<dyn SystemControl + '_>)
    }

    fn snapshot(&self) -> Option<serde::Value> {
        let (state, done) = match &self.state {
            PipelineState::StartObd => ("start-obd", None),
            PipelineState::RunObd => ("run-obd", None),
            PipelineState::StartDle => ("start-dle", None),
            PipelineState::RunDle => ("run-dle", None),
            PipelineState::StartCollect => ("start-collect", None),
            PipelineState::RunCollect => ("run-collect", None),
            PipelineState::Finish => ("finish", None),
            PipelineState::Done(report) => ("done", Some((**report).clone())),
        };
        let runner = if matches!(self.state, PipelineState::RunDle) {
            Some(
                self.runner
                    .as_ref()
                    .expect("RunDle holds a runner")
                    .snapshot(),
            )
        } else {
            None
        };
        Some(
            PipelineSnapshot {
                state: state.to_string(),
                reports: self.reports.clone(),
                obd_ran: self.obd_ran,
                dle: self.dle.clone(),
                collect: self.collect.clone(),
                done,
                runner,
            }
            .to_value(),
        )
    }

    fn restore_snapshot(&mut self, snapshot: &serde::Value) -> Result<(), String> {
        let snap = PipelineSnapshot::from_value(snapshot)
            .map_err(|e| format!("malformed pipeline snapshot: {e}"))?;
        let state = match snap.state.as_str() {
            "start-obd" => PipelineState::StartObd,
            "run-obd" => PipelineState::RunObd,
            "start-dle" => PipelineState::StartDle,
            "run-dle" => PipelineState::RunDle,
            "start-collect" => PipelineState::StartCollect,
            "run-collect" => PipelineState::RunCollect,
            "finish" => PipelineState::Finish,
            "done" => PipelineState::Done(Box::new(
                snap.done.ok_or("`done` snapshot carries no final report")?,
            )),
            other => return Err(format!("unknown pipeline snapshot state `{other}`")),
        };
        match &state {
            PipelineState::RunDle => {
                let runner_snapshot = snap
                    .runner
                    .as_ref()
                    .ok_or("`run-dle` snapshot carries no runner state")?;
                self.runner
                    .as_mut()
                    .expect("a freshly started pipeline holds a runner")
                    .restore_snapshot(runner_snapshot)?;
            }
            PipelineState::StartObd | PipelineState::RunObd | PipelineState::StartDle => {
                // Pre-DLE: the freshly started runner is exactly the
                // snapshotted one (no rounds have run), so keep it.
            }
            _ => {
                // Post-DLE: the live run consumed its runner when the DLE
                // phase ended.
                self.runner = None;
            }
        }
        self.reports = snap.reports;
        self.obd_ran = snap.obd_ran;
        self.dle = snap.dle;
        self.collect = snap.collect;
        self.state = state;
        Ok(())
    }
}

impl LeaderElection for PaperPipeline {
    fn name(&self) -> &'static str {
        "dle+collect"
    }

    fn start<'a>(
        &'a self,
        shape: &'a Shape,
        scheduler: &'a mut (dyn Scheduler + Send),
        opts: &RunOptions,
    ) -> Result<Execution<'a>, ElectionError> {
        Ok(Execution::new(PipelineExecution::start(
            Cow::Borrowed(shape),
            scheduler,
            opts,
        )?))
    }

    fn start_owned(
        &self,
        shape: &Shape,
        scheduler: Box<dyn Scheduler + Send>,
        opts: &RunOptions,
    ) -> Result<Execution<'static>, ElectionError> {
        Ok(Execution::new(PipelineExecution::start(
            Cow::Owned(shape.clone()),
            scheduler,
            opts,
        )?))
    }
}

// ---------------------------------------------------------------------------
// The fluent runner
// ---------------------------------------------------------------------------

/// Entry point of the fluent runner API: `Election::on(&shape)` starts a
/// builder configured with the paper pipeline, the default measurement
/// scheduler and [`RunOptions::default`].
pub struct Election;

/// The default algorithm of the builder.
static PAPER_PIPELINE: PaperPipeline = PaperPipeline;

impl Election {
    /// Starts building an election run on the given initial shape.
    pub fn on(shape: &Shape) -> ElectionBuilder<'_> {
        ElectionBuilder {
            shape,
            algorithm: &PAPER_PIPELINE,
            scheduler: None,
            observer: None,
            opts: RunOptions::default(),
        }
    }
}

/// Fluent configuration of one election run; see [`Election::on`].
pub struct ElectionBuilder<'a> {
    shape: &'a Shape,
    algorithm: &'a dyn LeaderElection,
    scheduler: Option<Box<dyn Scheduler + Send + 'a>>,
    observer: Option<&'a mut dyn RunObserver>,
    opts: RunOptions,
}

impl<'a> ElectionBuilder<'a> {
    /// Selects the algorithm (default: the paper pipeline).
    pub fn algorithm(mut self, algorithm: &'a dyn LeaderElection) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the scheduler (default: `SeededRandom` with the options'
    /// seed — random activation orders exhibit the generic behaviour the
    /// paper's worst-case bounds describe, whereas a lexicographic sweep can
    /// let a whole erosion front cascade within one round).
    pub fn scheduler(mut self, scheduler: impl Scheduler + Send + 'a) -> Self {
        self.scheduler = Some(Box::new(scheduler));
        self
    }

    /// Installs a round/phase observer.
    pub fn observer(mut self, observer: &'a mut dyn RunObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Replaces all options at once.
    pub fn options(mut self, opts: RunOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Assumes the outer boundary is known initially (skips OBD — the
    /// paper's `O(D_A)` variant).
    pub fn assume_boundary_known(mut self) -> Self {
        self.opts.assume_outer_boundary_known = true;
        self
    }

    /// Stops after DLE without running Collect (the final configuration may
    /// be disconnected).
    pub fn skip_reconnection(mut self) -> Self {
        self.opts.reconnect = false;
        self
    }

    /// Tracks connectivity round by round (one BFS per round).
    pub fn track_connectivity(mut self) -> Self {
        self.opts.track_connectivity = true;
        self
    }

    /// Sets the round budget of round-driven phases.
    pub fn round_budget(mut self, budget: u64) -> Self {
        self.opts.round_budget = Some(budget);
        self
    }

    /// Sets the seed used by randomized algorithms and the default
    /// scheduler.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Selects the occupancy backend for round-driven phases (the dense
    /// fast path by default; the hashed legacy path for differential
    /// testing).
    pub fn occupancy(mut self, backend: OccupancyBackend) -> Self {
        self.opts.occupancy = backend;
        self
    }

    /// Runs the election.
    ///
    /// # Errors
    ///
    /// See [`LeaderElection::elect`].
    pub fn run(self) -> Result<RunReport, ElectionError> {
        let ElectionBuilder {
            shape,
            algorithm,
            scheduler,
            observer,
            opts,
        } = self;
        let mut default_scheduler;
        let mut boxed_scheduler;
        let scheduler: &mut (dyn Scheduler + Send) = match scheduler {
            Some(boxed) => {
                boxed_scheduler = boxed;
                &mut *boxed_scheduler
            }
            None => {
                default_scheduler = SeededRandom::new(opts.seed);
                &mut default_scheduler
            }
        };
        match observer {
            Some(observer) => algorithm.elect_observed(shape, scheduler, &opts, observer),
            None => algorithm.elect(shape, scheduler, &opts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_amoebot::scheduler::{RoundRobin, SeededRandom};
    use pm_grid::builder::{annulus, hexagon, line, swiss_cheese};

    #[test]
    fn builder_defaults_run_the_full_pipeline() {
        let shape = swiss_cheese(5, 3);
        let report = Election::on(&shape).run().unwrap();
        assert_eq!(report.algorithm, "dle+collect");
        assert_eq!(report.scheduler, "seeded-random");
        assert_eq!(report.n, shape.len());
        assert!(report.predicate_holds());
        assert!(report.rounds_consistent());
        assert_eq!(report.final_positions.len(), shape.len());
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, [phase::OBD, phase::DLE, phase::COLLECT]);
        assert!(report.phase_rounds(phase::DLE) > 0);
    }

    #[test]
    fn boundary_knowledge_skips_obd() {
        let report = Election::on(&annulus(4, 1))
            .scheduler(RoundRobin)
            .assume_boundary_known()
            .run()
            .unwrap();
        assert_eq!(report.phase_rounds(phase::OBD), 0);
        assert!(!report.phases.iter().any(|p| p.name == phase::OBD));
        assert!(report.predicate_holds());
        assert_eq!(report.scheduler, "round-robin");
    }

    #[test]
    fn skip_reconnection_may_leave_the_shape_disconnected() {
        // A thin annulus: DLE's inward march leaves a sparse breadcrumb
        // trail, so without Collect the system disconnects (the
        // collect_walkthrough example renders this configuration).
        let report = Election::on(&annulus(8, 7))
            .scheduler(SeededRandom::new(0))
            .assume_boundary_known()
            .skip_reconnection()
            .track_connectivity()
            .run()
            .unwrap();
        assert!(report.unique_leader());
        assert!(!report.phases.iter().any(|p| p.name == phase::COLLECT));
        assert!(report.connectivity.tracked);
        // The report must record the disconnection rather than hide it.
        assert!(report.connectivity.ever_disconnected);
        assert!(report.connectivity.disconnected_rounds > 0);
        assert!(!report.final_connected);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(matches!(
            Election::on(&Shape::new()).run(),
            Err(ElectionError::InvalidInitialConfiguration(_))
        ));
        let mut disconnected = hexagon(1);
        disconnected.insert(Point::new(40, 40));
        assert!(matches!(
            Election::on(&disconnected).run(),
            Err(ElectionError::InvalidInitialConfiguration(_))
        ));
    }

    #[test]
    fn round_budget_is_enforced() {
        let result = Election::on(&hexagon(5)).round_budget(1).run();
        assert!(matches!(
            result,
            Err(ElectionError::Run(RunError::RoundLimitExceeded {
                limit: 1
            }))
        ));
    }

    #[test]
    fn observer_sees_phases_and_rounds() {
        #[derive(Default)]
        struct Recorder {
            phases: Vec<(String, String)>,
            dle_rounds: u64,
            ended: Vec<String>,
        }
        impl RunObserver for Recorder {
            fn on_phase_start(&mut self, algorithm: &str, phase: &str) {
                self.phases.push((algorithm.to_string(), phase.to_string()));
            }
            fn on_round(&mut self, phase: &str, rounds_so_far: u64) {
                assert_eq!(phase, phase::DLE);
                self.dle_rounds = rounds_so_far;
            }
            fn on_phase_end(&mut self, _algorithm: &str, report: &PhaseReport) {
                self.ended.push(report.name.clone());
            }
        }
        let mut recorder = Recorder::default();
        let shape = annulus(4, 2);
        let report = Election::on(&shape)
            .scheduler(SeededRandom::new(1))
            .observer(&mut recorder)
            .run()
            .unwrap();
        assert_eq!(
            recorder.phases,
            [
                ("dle+collect".to_string(), phase::OBD.to_string()),
                ("dle+collect".to_string(), phase::DLE.to_string()),
                ("dle+collect".to_string(), phase::COLLECT.to_string()),
            ]
        );
        assert_eq!(recorder.ended, [phase::OBD, phase::DLE, phase::COLLECT]);
        assert_eq!(recorder.dle_rounds, report.phase_rounds(phase::DLE));
    }

    #[test]
    fn stepping_walks_the_phase_grammar() {
        // PhaseStarted/RoundCompleted/PhaseEnded must nest correctly, with
        // rounds only inside the round-driven DLE phase, and the final step
        // must yield the report.
        let shape = annulus(4, 2);
        let mut scheduler = SeededRandom::new(1);
        let mut execution = PaperPipeline
            .start(&shape, &mut scheduler, &RunOptions::default())
            .unwrap();
        assert_eq!(execution.status().phase, None);
        assert_eq!(execution.status().undecided, shape.len());
        assert!(!execution.status().finished);

        let mut seen = Vec::new();
        let mut dle_rounds = 0u64;
        let report = loop {
            match execution.step_round().unwrap() {
                StepOutcome::PhaseStarted { phase } => seen.push(format!("start:{phase}")),
                StepOutcome::RoundCompleted { phase, rounds } => {
                    assert_eq!(phase, phase::DLE, "only DLE is round-driven");
                    assert_eq!(rounds, dle_rounds + 1, "rounds count up by one");
                    dle_rounds = rounds;
                    assert_eq!(execution.status().rounds_in_phase, rounds);
                }
                StepOutcome::PhaseEnded { report } => seen.push(format!("end:{}", report.name)),
                StepOutcome::Finished(report) => break report,
            }
        };
        assert_eq!(
            seen,
            [
                "start:obd",
                "end:obd",
                "start:dle",
                "end:dle",
                "start:collect",
                "end:collect"
            ]
        );
        assert_eq!(dle_rounds, report.phase_rounds(phase::DLE));
        assert!(report.predicate_holds());
        let status = execution.status();
        assert!(status.finished);
        assert_eq!(status.decided, shape.len());
        assert_eq!(status.undecided, 0);
        // Stepping a finished execution is idempotent.
        assert_eq!(
            execution.step_round().unwrap(),
            StepOutcome::Finished(report)
        );
    }

    #[test]
    fn stepped_execution_equals_eager_elect() {
        let shape = swiss_cheese(4, 2);
        let eager = PaperPipeline
            .elect(&shape, &mut SeededRandom::new(9), &RunOptions::default())
            .unwrap();
        let mut scheduler = SeededRandom::new(9);
        let mut execution = PaperPipeline
            .start(&shape, &mut scheduler, &RunOptions::default())
            .unwrap();
        let stepped = loop {
            if let StepOutcome::Finished(report) = execution.step_round().unwrap() {
                break report;
            }
        };
        assert_eq!(stepped, eager);
    }

    #[test]
    fn system_access_is_scoped_to_the_round_driven_phase() {
        let shape = hexagon(3);
        let mut scheduler = SeededRandom::new(4);
        let mut execution = PaperPipeline
            .start(&shape, &mut scheduler, &RunOptions::default())
            .unwrap();
        // Before and during OBD there is no steppable system.
        assert!(execution.system().is_none());
        assert_eq!(execution.status().next_round, None);
        assert_eq!(execution.next_round(), None);
        // Advance into DLE: obd start, obd end, dle start.
        for _ in 0..3 {
            execution.step_round().unwrap();
        }
        assert_eq!(execution.status().phase, Some(phase::DLE));
        assert_eq!(execution.status().next_round, Some(0));
        // The O(1) accessor agrees with the full status snapshot.
        assert_eq!(execution.next_round(), Some((phase::DLE, 0)));
        assert!(execution.system().is_some());
        let report = execution.finish().unwrap();
        assert!(report.predicate_holds());
    }

    #[test]
    fn caller_side_perturbation_restarts_on_the_mutated_system() {
        // Remove a particle before round 2 of DLE and reset: the election
        // must terminate with a unique leader on the smaller system, and the
        // report must account for every surviving particle.
        let shape = hexagon(4);
        let mut scheduler = SeededRandom::new(3);
        let opts = RunOptions::default();
        let mut execution = PaperPipeline.start(&shape, &mut scheduler, &opts).unwrap();
        let mut fired = false;
        let report = loop {
            if !fired && execution.status().next_round == Some(2) {
                fired = true;
                let mut system = execution.system().expect("DLE is active");
                let victim = system.particle_positions()[0];
                assert!(system.remove_at(victim));
                system.reinitialize();
            }
            if let StepOutcome::Finished(report) = execution.step_round().unwrap() {
                break report;
            }
        };
        assert!(fired);
        assert!(report.unique_leader());
        assert_eq!(report.undecided, 0);
        assert_eq!(report.final_positions.len(), shape.len() - 1);
    }

    #[test]
    fn budget_errors_surface_from_the_failing_step() {
        let shape = hexagon(4);
        let mut scheduler = SeededRandom::new(0);
        let opts = RunOptions {
            round_budget: Some(2),
            ..RunOptions::default()
        };
        let mut execution = PaperPipeline.start(&shape, &mut scheduler, &opts).unwrap();
        let mut rounds = 0;
        let error = loop {
            match execution.step_round() {
                Ok(StepOutcome::RoundCompleted { .. }) => rounds += 1,
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert_eq!(rounds, 2);
        assert_eq!(
            error,
            ElectionError::Run(RunError::RoundLimitExceeded { limit: 2 })
        );
        // Once the budget is gone, next_round reports no upcoming round.
        assert_eq!(execution.status().next_round, None);
        assert_eq!(execution.next_round(), None);
    }

    #[test]
    fn reports_are_consistent_across_small_workloads() {
        for shape in [line(1), line(2), hexagon(2), annulus(3, 1)] {
            let report = Election::on(&shape).run().unwrap();
            assert!(report.rounds_consistent());
            assert!(report.predicate_holds());
            assert!(report.peak_memory_bits >= DLE_MEMORY_BITS);
            assert_eq!(report.moves, report.phases.iter().map(|p| p.moves).sum());
        }
    }

    #[test]
    fn profiling_mirrors_the_phase_reports_without_changing_the_outcome() {
        let shape = annulus(4, 1);
        let mut scheduler = SeededRandom::new(3);
        let opts = RunOptions::default();
        let mut execution = PaperPipeline.start(&shape, &mut scheduler, &opts).unwrap();
        assert!(!execution.profiling_enabled());
        execution.enable_profiling();
        execution.enable_profiling(); // idempotent
        assert!(execution.profiling_enabled());
        let profiled = execution.finish().unwrap();

        let mut scheduler = SeededRandom::new(3);
        let plain = PaperPipeline
            .start(&shape, &mut scheduler, &opts)
            .unwrap()
            .finish()
            .unwrap();
        assert!(plain.profile.is_empty());
        // Telemetry is out-of-band: the deterministic fields (everything
        // PartialEq compares) are untouched by profiling.
        assert_eq!(profiled, plain);

        // One profile entry per executed phase, agreeing with the
        // deterministic per-phase counters; every step was timed.
        assert_eq!(profiled.profile.len(), profiled.phases.len());
        for (profile, phase) in profiled.profile.iter().zip(&profiled.phases) {
            assert_eq!(profile.name, phase.name);
            assert_eq!(profile.rounds, phase.rounds);
            assert_eq!(profile.activations, phase.activations);
            assert_eq!(profile.moves, phase.moves);
            // PhaseStarted + the phase body + PhaseEnded.
            assert!(profile.steps >= 2);
        }
    }

    #[test]
    fn profiles_stay_out_of_the_serialized_report() {
        let shape = hexagon(2);
        let mut scheduler = SeededRandom::new(0);
        let mut execution = PaperPipeline
            .start(&shape, &mut scheduler, &RunOptions::default())
            .unwrap();
        execution.enable_profiling();
        let report = execution.finish().unwrap();
        assert!(!report.profile.is_empty());

        let value = serde::Serialize::to_value(&report);
        if let serde::Value::Object(entries) = &value {
            assert!(
                entries.iter().all(|(key, _)| key != "profile"),
                "profile must not leak into serialized reports"
            );
        } else {
            panic!("reports serialize to objects");
        }
        let restored: RunReport = serde::Deserialize::from_value(&value).unwrap();
        assert!(restored.profile.is_empty());
        // Equality ignores the (non-deterministic, wall-clock) profile.
        assert_eq!(restored, report);
    }
}
