//! The unified leader-election execution API.
//!
//! Every algorithm the workspace can run — the paper's pipeline and the
//! Table 1 baselines in `pm-baselines` — implements one trait,
//! [`LeaderElection`], and produces one result type, [`RunReport`].
//! Experiments, benches, examples and future runners all drive elections
//! through this surface instead of per-algorithm entry points:
//!
//! ```
//! use pm_core::api::Election;
//! use pm_amoebot::scheduler::SeededRandom;
//! use pm_grid::builder::annulus;
//!
//! let shape = annulus(5, 2);
//! let report = Election::on(&shape)
//!     .scheduler(SeededRandom::new(7))
//!     .track_connectivity()
//!     .run()
//!     .expect("election succeeds on a connected shape");
//! assert!(report.unique_leader());
//! assert!(shape.area().contains(report.leader));
//! assert!(report.final_connected);
//! ```
//!
//! The variants of Table 1 are selected through [`RunOptions`] rather than
//! through different entry points: `assume_boundary_known` skips the OBD
//! phase (the paper's `O(D_A)` row), `skip_reconnection` stops after DLE.
//! Round-by-round instrumentation plugs in through [`RunObserver`].

use crate::collect::{CollectOutcome, CollectSimulator};
use crate::dle::{default_round_budget, DleAlgorithm, DleMemory, DleOutcome};
use crate::obd::{run_obd, ObdOutcome};
use pm_amoebot::scheduler::{RunError, Runner, Scheduler, SeededRandom};
use pm_amoebot::system::{OccupancyBackend, ParticleSystem, SystemControl};
use pm_grid::{Point, Shape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Canonical phase names used in [`PhaseReport::name`] and observer
/// callbacks.
pub mod phase {
    /// Outer-boundary detection (Section 5).
    pub const OBD: &str = "obd";
    /// Disconnecting leader election (Section 4.1).
    pub const DLE: &str = "dle";
    /// Reconnection (Section 4.3).
    pub const COLLECT: &str = "collect";
    /// The single phase of a baseline that runs as one round-driven loop.
    pub const ELECTION: &str = "election";
    /// The announcement flood of the randomized boundary baseline.
    pub const FLOOD: &str = "flood";
}

/// Options of a single election run, shared by every [`LeaderElection`]
/// implementation. Options an algorithm has no use for are ignored (the
/// closed-form baselines ignore `track_connectivity`, the deterministic ones
/// ignore `seed`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Whether particles are assumed to know initially which of their
    /// incident empty points lie on the outer face. When `true` the paper
    /// pipeline skips the OBD phase (Table 1, next-to-last row).
    pub assume_outer_boundary_known: bool,
    /// Whether to run Algorithm Collect after DLE to reconnect the system.
    pub reconnect: bool,
    /// Whether to track connectivity round-by-round during round-driven
    /// phases (costs one BFS per round).
    pub track_connectivity: bool,
    /// Round budget for round-driven phases; `None` uses the algorithm's
    /// generous default. Exhausting the budget surfaces as
    /// [`ElectionError::Run`] (paper pipeline, a bug per Theorem 18) or
    /// [`ElectionError::Stuck`] (baselines that legitimately stall, e.g.
    /// erosion on shapes with holes).
    pub round_budget: Option<u64>,
    /// Seed for randomized algorithms and for the default scheduler.
    pub seed: u64,
    /// Which occupancy data structure the particle system uses for
    /// round-driven phases. The dense default is the fast path; the hashed
    /// backend is the legacy reference, kept selectable so differential
    /// tests can prove the two paths produce bit-identical reports.
    pub occupancy: OccupancyBackend,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            assume_outer_boundary_known: false,
            reconnect: true,
            track_connectivity: false,
            round_budget: None,
            seed: 7,
            occupancy: OccupancyBackend::Dense,
        }
    }
}

impl RunOptions {
    /// The `O(D_A)` configuration of the paper pipeline: boundary knowledge
    /// assumed, reconnection enabled.
    pub fn with_boundary_knowledge() -> RunOptions {
        RunOptions {
            assume_outer_boundary_known: true,
            ..RunOptions::default()
        }
    }
}

/// An error from an election run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ElectionError {
    /// The initial configuration is not a permitted one (empty or
    /// disconnected).
    InvalidInitialConfiguration(&'static str),
    /// The underlying execution failed (round budget exhausted — for the
    /// paper pipeline this would indicate a bug given Theorem 18).
    Run(RunError),
    /// The algorithm made no progress within its round budget. This is the
    /// *expected* outcome for some baseline/workload pairs — erosion-based
    /// election stalls on shapes with holes, which is exactly the limitation
    /// Table 1 records.
    Stuck {
        /// Rounds executed before the run was declared stuck.
        after_rounds: u64,
    },
}

impl fmt::Display for ElectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElectionError::InvalidInitialConfiguration(why) => {
                write!(f, "invalid initial configuration: {why}")
            }
            ElectionError::Run(e) => write!(f, "execution failed: {e}"),
            ElectionError::Stuck { after_rounds } => {
                write!(f, "algorithm made no progress after {after_rounds} rounds")
            }
        }
    }
}

impl std::error::Error for ElectionError {}

impl From<RunError> for ElectionError {
    fn from(e: RunError) -> ElectionError {
        ElectionError::Run(e)
    }
}

/// Statistics of one phase of an election run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase name (see [`phase`]).
    pub name: String,
    /// Asynchronous rounds charged to the phase.
    pub rounds: u64,
    /// Particle activations executed in the phase (0 for phases simulated in
    /// closed form).
    pub activations: u64,
    /// Movement operations (expansions + contractions + handovers) executed
    /// in the phase (0 for phases simulated in closed form).
    pub moves: u64,
}

/// Connectivity observations of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectivityReport {
    /// Whether round-by-round tracking was enabled
    /// ([`RunOptions::track_connectivity`]).
    pub tracked: bool,
    /// Whether the occupied shape was ever observed disconnected at a round
    /// boundary (meaningful only when `tracked`).
    pub ever_disconnected: bool,
    /// Number of round boundaries at which the shape was disconnected
    /// (meaningful only when `tracked`).
    pub disconnected_rounds: u64,
}

/// The uniform, serializable result of any [`LeaderElection`] run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The algorithm's [`LeaderElection::name`].
    pub algorithm: String,
    /// The scheduler's name (`Scheduler::name`).
    pub scheduler: String,
    /// Number of particles of the initial configuration.
    pub n: usize,
    /// The elected leader's final position. Multi-leader baselines (the
    /// quadratic boundary election elects up to six) report a representative
    /// leader here and the count in [`RunReport::leaders`].
    pub leader: Point,
    /// Number of leaders elected (1 for every algorithm but the quadratic
    /// baseline).
    pub leaders: usize,
    /// Number of particles that decided follower.
    pub followers: usize,
    /// Number of particles still undecided at termination (0 whenever the
    /// algorithm upholds the election predicate).
    pub undecided: usize,
    /// Per-phase statistics, in execution order.
    pub phases: Vec<PhaseReport>,
    /// Total rounds across all phases (always the sum of
    /// [`RunReport::phases`] rounds).
    pub total_rounds: u64,
    /// Total particle activations across all phases.
    pub activations: u64,
    /// Total movement operations across all phases.
    pub moves: u64,
    /// Peak per-particle memory across phases, in bits. Measured from the
    /// particle memory structs for activation-driven phases; a nominal
    /// constant-word estimate for phases simulated in closed form.
    pub peak_memory_bits: u64,
    /// Connectivity observations.
    pub connectivity: ConnectivityReport,
    /// Whether the final configuration is connected.
    pub final_connected: bool,
    /// Final particle positions.
    pub final_positions: Vec<Point>,
}

impl RunReport {
    /// Whether exactly one leader was elected.
    pub fn unique_leader(&self) -> bool {
        self.leaders == 1
    }

    /// Whether the leader-election predicate holds: a unique leader, every
    /// other particle a follower (none undecided), and a connected final
    /// configuration.
    pub fn predicate_holds(&self) -> bool {
        self.unique_leader() && self.undecided == 0 && self.final_connected
    }

    /// The final shape of the particle system.
    pub fn final_shape(&self) -> Shape {
        Shape::from_points(self.final_positions.iter().copied())
    }

    /// Rounds charged to the named phase (0 if the phase did not run).
    pub fn phase_rounds(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.rounds)
            .sum()
    }

    /// Whether the per-phase rounds sum to the reported total (a report
    /// invariant; the conformance suite asserts it for every algorithm).
    pub fn rounds_consistent(&self) -> bool {
        self.total_rounds == self.phases.iter().map(|p| p.rounds).sum::<u64>()
    }
}

/// Hook for round-by-round instrumentation of an election run.
///
/// Phase boundaries fire for every phase; [`RunObserver::on_round`] fires
/// after each asynchronous round of *round-driven* phases (DLE, erosion).
/// Phases simulated in closed form (OBD, Collect, the boundary baselines)
/// report only their boundaries.
pub trait RunObserver {
    /// A phase is starting.
    fn on_phase_start(&mut self, algorithm: &str, phase: &str) {
        let _ = (algorithm, phase);
    }

    /// A round of a round-driven phase is about to run, with **mutable**
    /// access to the particle system: the entry point for mid-run
    /// perturbations (remove particles, split the configuration — see
    /// `pm-scenarios`). `round` counts rounds within the current phase,
    /// starting at 0. Mutating observers should finish with
    /// [`SystemControl::reinitialize`] so the algorithm restarts cleanly on
    /// the perturbed configuration.
    fn on_round_start(&mut self, phase: &str, round: u64, system: &mut dyn SystemControl) {
        let _ = (phase, round, system);
    }

    /// A round of a round-driven phase completed. `rounds_so_far` counts
    /// rounds within the current phase.
    fn on_round(&mut self, phase: &str, rounds_so_far: u64) {
        let _ = (phase, rounds_so_far);
    }

    /// A phase finished; `report` carries its statistics.
    fn on_phase_end(&mut self, algorithm: &str, report: &PhaseReport) {
        let _ = (algorithm, report);
    }
}

/// The do-nothing observer used when none is supplied.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl RunObserver for NoopObserver {}

/// A leader-election algorithm runnable through the unified API.
///
/// Implementations exist for the paper pipeline ([`PaperPipeline`]) and for
/// the three Table 1 baselines (in `pm-baselines`); experiments iterate over
/// `&[&dyn LeaderElection]` instead of hard-coding per-algorithm drivers.
pub trait LeaderElection {
    /// A short stable identifier used in tables and reports.
    fn name(&self) -> &'static str;

    /// Runs the election on `shape` under `scheduler` with the given
    /// options.
    ///
    /// # Errors
    ///
    /// [`ElectionError::InvalidInitialConfiguration`] for empty or
    /// disconnected shapes; [`ElectionError::Stuck`] when the algorithm
    /// cannot make progress on the workload (e.g. erosion with holes);
    /// [`ElectionError::Run`] for exhausted budgets of algorithms that must
    /// terminate.
    fn elect(
        &self,
        shape: &Shape,
        scheduler: &mut dyn Scheduler,
        opts: &RunOptions,
    ) -> Result<RunReport, ElectionError> {
        self.elect_observed(shape, scheduler, opts, &mut NoopObserver)
    }

    /// Like [`LeaderElection::elect`], with a [`RunObserver`] receiving
    /// phase and round callbacks.
    fn elect_observed(
        &self,
        shape: &Shape,
        scheduler: &mut dyn Scheduler,
        opts: &RunOptions,
        observer: &mut dyn RunObserver,
    ) -> Result<RunReport, ElectionError>;
}

/// Rejects empty and disconnected initial configurations — every
/// implementation shares the paper's permitted-initial-configuration
/// precondition.
pub fn check_initial_configuration(shape: &Shape) -> Result<(), ElectionError> {
    if shape.is_empty() {
        return Err(ElectionError::InvalidInitialConfiguration("empty shape"));
    }
    if !shape.is_connected() {
        return Err(ElectionError::InvalidInitialConfiguration(
            "initial shape must be connected",
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The paper pipeline as a LeaderElection
// ---------------------------------------------------------------------------

/// Per-particle memory of Algorithm DLE, in bits (measured from
/// [`DleMemory`]).
pub const DLE_MEMORY_BITS: u64 = (std::mem::size_of::<DleMemory>() * 8) as u64;

/// Nominal per-particle memory of the OBD primitive, in bits: a constant
/// number of machine words for the segment-competition counters (the
/// primitive is simulated in closed form, so this is the model-level `O(1)`
/// bound, not a measurement).
pub const OBD_MEMORY_BITS: u64 = 96;

/// Nominal per-particle memory of Algorithm Collect, in bits: role, phase
/// parity and movement-primitive state (closed-form simulation; model-level
/// `O(1)` bound).
pub const COLLECT_MEMORY_BITS: u64 = 32;

/// The paper's composed algorithm — `OBD → DLE → Collect` — behind the
/// unified API. Phase selection is driven by [`RunOptions`]:
/// `assume_outer_boundary_known` skips OBD, `reconnect: false` skips
/// Collect.
#[derive(Clone, Copy, Debug, Default)]
pub struct PaperPipeline;

/// The phase outcomes of one pipeline run, before flattening into a
/// [`RunReport`].
struct PipelinePhases {
    obd: Option<ObdOutcome>,
    dle: DleOutcome,
    collect: Option<CollectOutcome>,
    /// The per-phase statistics, built exactly once: the same structs are
    /// handed to the observer's `on_phase_end` and placed in the final
    /// [`RunReport::phases`], so the two can never diverge.
    reports: Vec<PhaseReport>,
}

fn run_pipeline_phases(
    shape: &Shape,
    scheduler: &mut dyn Scheduler,
    opts: &RunOptions,
    observer: &mut dyn RunObserver,
) -> Result<PipelinePhases, ElectionError> {
    const NAME: &str = "dle+collect";
    check_initial_configuration(shape)?;
    let mut reports = Vec::new();

    // Phase 1 (optional): outer-boundary detection. Its output is exactly
    // the `outer[0..5]` input DLE's initializer consumes.
    let obd = if opts.assume_outer_boundary_known {
        None
    } else {
        observer.on_phase_start(NAME, phase::OBD);
        let obd = run_obd(shape);
        reports.push(PhaseReport {
            name: phase::OBD.to_string(),
            rounds: obd.rounds,
            activations: 0,
            moves: 0,
        });
        observer.on_phase_end(NAME, reports.last().expect("just pushed"));
        Some(obd)
    };

    // Phase 2: disconnecting leader election, driven round by round.
    observer.on_phase_start(NAME, phase::DLE);
    let system = ParticleSystem::from_shape_with_backend(shape, &DleAlgorithm, opts.occupancy);
    let mut runner = Runner::new(system, DleAlgorithm, scheduler);
    runner.track_connectivity = opts.track_connectivity;
    let budget = opts
        .round_budget
        .unwrap_or_else(|| default_round_budget(shape));
    // Both hooks need the observer; a RefCell lets the pre-round (mutation)
    // and post-round (instrumentation) closures share it.
    let shared = std::cell::RefCell::new(observer);
    let stats = runner.run_hooked(
        budget,
        |round, system| {
            shared
                .borrow_mut()
                .on_round_start(phase::DLE, round, system)
        },
        |_, stats| shared.borrow_mut().on_round(phase::DLE, stats.rounds),
    )?;
    let observer = shared.into_inner();
    let dle = DleOutcome::from_run(stats, runner.into_system());
    reports.push(PhaseReport {
        name: phase::DLE.to_string(),
        rounds: dle.stats.rounds,
        activations: dle.stats.activations,
        moves: dle.stats.moves(),
    });
    observer.on_phase_end(NAME, reports.last().expect("just pushed"));

    // Phase 3 (optional): reconnection.
    let collect = if opts.reconnect {
        observer.on_phase_start(NAME, phase::COLLECT);
        let mut sim = CollectSimulator::new(dle.leader_point, &dle.final_positions);
        let collect = sim.run();
        reports.push(PhaseReport {
            name: phase::COLLECT.to_string(),
            rounds: collect.rounds,
            activations: 0,
            moves: 0,
        });
        observer.on_phase_end(NAME, reports.last().expect("just pushed"));
        Some(collect)
    } else {
        None
    };

    Ok(PipelinePhases {
        obd,
        dle,
        collect,
        reports,
    })
}

impl LeaderElection for PaperPipeline {
    fn name(&self) -> &'static str {
        "dle+collect"
    }

    fn elect_observed(
        &self,
        shape: &Shape,
        scheduler: &mut dyn Scheduler,
        opts: &RunOptions,
        observer: &mut dyn RunObserver,
    ) -> Result<RunReport, ElectionError> {
        let scheduler_name = scheduler.name();
        let phases = run_pipeline_phases(shape, scheduler, opts, observer)?;
        let reports = phases.reports.clone();

        let mut peak_memory_bits = DLE_MEMORY_BITS;
        if phases.obd.is_some() {
            peak_memory_bits = peak_memory_bits.max(OBD_MEMORY_BITS);
        }
        if phases.collect.is_some() {
            peak_memory_bits = peak_memory_bits.max(COLLECT_MEMORY_BITS);
        }

        let final_positions = phases
            .collect
            .as_ref()
            .map(|c| c.final_positions.clone())
            .unwrap_or_else(|| phases.dle.final_positions.clone());
        let final_connected = Shape::from_points(final_positions.iter().copied()).is_connected();

        Ok(RunReport {
            algorithm: self.name().to_string(),
            scheduler: scheduler_name.to_string(),
            n: shape.len(),
            leader: phases.dle.leader_point,
            leaders: phases.dle.status_counts.0,
            followers: phases.dle.status_counts.1,
            undecided: phases.dle.status_counts.2,
            total_rounds: reports.iter().map(|p| p.rounds).sum(),
            activations: reports.iter().map(|p| p.activations).sum(),
            moves: reports.iter().map(|p| p.moves).sum(),
            phases: reports,
            peak_memory_bits,
            connectivity: ConnectivityReport {
                tracked: opts.track_connectivity,
                ever_disconnected: phases.dle.stats.ever_disconnected,
                disconnected_rounds: phases.dle.stats.disconnected_rounds,
            },
            final_connected,
            final_positions,
        })
    }
}

// ---------------------------------------------------------------------------
// The fluent runner
// ---------------------------------------------------------------------------

/// Entry point of the fluent runner API: `Election::on(&shape)` starts a
/// builder configured with the paper pipeline, the default measurement
/// scheduler and [`RunOptions::default`].
pub struct Election;

/// The default algorithm of the builder.
static PAPER_PIPELINE: PaperPipeline = PaperPipeline;

impl Election {
    /// Starts building an election run on the given initial shape.
    pub fn on(shape: &Shape) -> ElectionBuilder<'_> {
        ElectionBuilder {
            shape,
            algorithm: &PAPER_PIPELINE,
            scheduler: None,
            observer: None,
            opts: RunOptions::default(),
        }
    }
}

/// Fluent configuration of one election run; see [`Election::on`].
pub struct ElectionBuilder<'a> {
    shape: &'a Shape,
    algorithm: &'a dyn LeaderElection,
    scheduler: Option<Box<dyn Scheduler + 'a>>,
    observer: Option<&'a mut dyn RunObserver>,
    opts: RunOptions,
}

impl<'a> ElectionBuilder<'a> {
    /// Selects the algorithm (default: the paper pipeline).
    pub fn algorithm(mut self, algorithm: &'a dyn LeaderElection) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the scheduler (default: `SeededRandom` with the options'
    /// seed — random activation orders exhibit the generic behaviour the
    /// paper's worst-case bounds describe, whereas a lexicographic sweep can
    /// let a whole erosion front cascade within one round).
    pub fn scheduler(mut self, scheduler: impl Scheduler + 'a) -> Self {
        self.scheduler = Some(Box::new(scheduler));
        self
    }

    /// Installs a round/phase observer.
    pub fn observer(mut self, observer: &'a mut dyn RunObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Replaces all options at once.
    pub fn options(mut self, opts: RunOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Assumes the outer boundary is known initially (skips OBD — the
    /// paper's `O(D_A)` variant).
    pub fn assume_boundary_known(mut self) -> Self {
        self.opts.assume_outer_boundary_known = true;
        self
    }

    /// Stops after DLE without running Collect (the final configuration may
    /// be disconnected).
    pub fn skip_reconnection(mut self) -> Self {
        self.opts.reconnect = false;
        self
    }

    /// Tracks connectivity round by round (one BFS per round).
    pub fn track_connectivity(mut self) -> Self {
        self.opts.track_connectivity = true;
        self
    }

    /// Sets the round budget of round-driven phases.
    pub fn round_budget(mut self, budget: u64) -> Self {
        self.opts.round_budget = Some(budget);
        self
    }

    /// Sets the seed used by randomized algorithms and the default
    /// scheduler.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Selects the occupancy backend for round-driven phases (the dense
    /// fast path by default; the hashed legacy path for differential
    /// testing).
    pub fn occupancy(mut self, backend: OccupancyBackend) -> Self {
        self.opts.occupancy = backend;
        self
    }

    /// Runs the election.
    ///
    /// # Errors
    ///
    /// See [`LeaderElection::elect`].
    pub fn run(self) -> Result<RunReport, ElectionError> {
        let ElectionBuilder {
            shape,
            algorithm,
            scheduler,
            observer,
            opts,
        } = self;
        let mut default_scheduler;
        let mut boxed_scheduler;
        let scheduler: &mut dyn Scheduler = match scheduler {
            Some(boxed) => {
                boxed_scheduler = boxed;
                &mut *boxed_scheduler
            }
            None => {
                default_scheduler = SeededRandom::new(opts.seed);
                &mut default_scheduler
            }
        };
        match observer {
            Some(observer) => algorithm.elect_observed(shape, scheduler, &opts, observer),
            None => algorithm.elect(shape, scheduler, &opts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_amoebot::scheduler::{RoundRobin, SeededRandom};
    use pm_grid::builder::{annulus, hexagon, line, swiss_cheese};

    #[test]
    fn builder_defaults_run_the_full_pipeline() {
        let shape = swiss_cheese(5, 3);
        let report = Election::on(&shape).run().unwrap();
        assert_eq!(report.algorithm, "dle+collect");
        assert_eq!(report.scheduler, "seeded-random");
        assert_eq!(report.n, shape.len());
        assert!(report.predicate_holds());
        assert!(report.rounds_consistent());
        assert_eq!(report.final_positions.len(), shape.len());
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, [phase::OBD, phase::DLE, phase::COLLECT]);
        assert!(report.phase_rounds(phase::DLE) > 0);
    }

    #[test]
    fn boundary_knowledge_skips_obd() {
        let report = Election::on(&annulus(4, 1))
            .scheduler(RoundRobin)
            .assume_boundary_known()
            .run()
            .unwrap();
        assert_eq!(report.phase_rounds(phase::OBD), 0);
        assert!(!report.phases.iter().any(|p| p.name == phase::OBD));
        assert!(report.predicate_holds());
        assert_eq!(report.scheduler, "round-robin");
    }

    #[test]
    fn skip_reconnection_may_leave_the_shape_disconnected() {
        // A thin annulus: DLE's inward march leaves a sparse breadcrumb
        // trail, so without Collect the system disconnects (the
        // collect_walkthrough example renders this configuration).
        let report = Election::on(&annulus(8, 7))
            .scheduler(SeededRandom::new(0))
            .assume_boundary_known()
            .skip_reconnection()
            .track_connectivity()
            .run()
            .unwrap();
        assert!(report.unique_leader());
        assert!(!report.phases.iter().any(|p| p.name == phase::COLLECT));
        assert!(report.connectivity.tracked);
        // The report must record the disconnection rather than hide it.
        assert!(report.connectivity.ever_disconnected);
        assert!(report.connectivity.disconnected_rounds > 0);
        assert!(!report.final_connected);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(matches!(
            Election::on(&Shape::new()).run(),
            Err(ElectionError::InvalidInitialConfiguration(_))
        ));
        let mut disconnected = hexagon(1);
        disconnected.insert(Point::new(40, 40));
        assert!(matches!(
            Election::on(&disconnected).run(),
            Err(ElectionError::InvalidInitialConfiguration(_))
        ));
    }

    #[test]
    fn round_budget_is_enforced() {
        let result = Election::on(&hexagon(5)).round_budget(1).run();
        assert!(matches!(
            result,
            Err(ElectionError::Run(RunError::RoundLimitExceeded {
                limit: 1
            }))
        ));
    }

    #[test]
    fn observer_sees_phases_and_rounds() {
        #[derive(Default)]
        struct Recorder {
            phases: Vec<(String, String)>,
            dle_rounds: u64,
            ended: Vec<String>,
        }
        impl RunObserver for Recorder {
            fn on_phase_start(&mut self, algorithm: &str, phase: &str) {
                self.phases.push((algorithm.to_string(), phase.to_string()));
            }
            fn on_round(&mut self, phase: &str, rounds_so_far: u64) {
                assert_eq!(phase, phase::DLE);
                self.dle_rounds = rounds_so_far;
            }
            fn on_phase_end(&mut self, _algorithm: &str, report: &PhaseReport) {
                self.ended.push(report.name.clone());
            }
        }
        let mut recorder = Recorder::default();
        let shape = annulus(4, 2);
        let report = Election::on(&shape)
            .scheduler(SeededRandom::new(1))
            .observer(&mut recorder)
            .run()
            .unwrap();
        assert_eq!(
            recorder.phases,
            [
                ("dle+collect".to_string(), phase::OBD.to_string()),
                ("dle+collect".to_string(), phase::DLE.to_string()),
                ("dle+collect".to_string(), phase::COLLECT.to_string()),
            ]
        );
        assert_eq!(recorder.ended, [phase::OBD, phase::DLE, phase::COLLECT]);
        assert_eq!(recorder.dle_rounds, report.phase_rounds(phase::DLE));
    }

    #[test]
    fn reports_are_consistent_across_small_workloads() {
        for shape in [line(1), line(2), hexagon(2), annulus(3, 1)] {
            let report = Election::on(&shape).run().unwrap();
            assert!(report.rounds_consistent());
            assert!(report.predicate_holds());
            assert!(report.peak_memory_bits >= DLE_MEMORY_BITS);
            assert_eq!(report.moves, report.phases.iter().map(|p| p.moves).sum());
        }
    }
}
