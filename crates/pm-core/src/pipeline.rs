//! The composed leader-election algorithm of the paper:
//! `OBD → DLE → Collect`.
//!
//! * With the known-outer-boundary assumption (Table 1, next-to-last row) the
//!   pipeline is `DLE → Collect` and runs in `O(D_A)` rounds.
//! * Without it (Table 1, last row) the OBD primitive first computes the
//!   `outer[0..5]` inputs in `O(L_out + D)` rounds, and the total stays
//!   `O(L_out + D)` because `D_A ≤ D ≤ L_out + D`.
//!
//! **This module is the legacy entry point.** The pipeline now runs through
//! the unified execution API in [`crate::api`] — [`crate::api::PaperPipeline`]
//! implements [`crate::api::LeaderElection`], and
//! [`crate::api::Election::on`] is the fluent runner. [`elect_leader`],
//! [`ElectionConfig`] and [`ElectionOutcome`] remain as thin deprecated
//! shims so existing call sites keep compiling; new code should use the
//! builder:
//!
//! ```
//! use pm_core::api::Election;
//! use pm_amoebot::scheduler::RoundRobin;
//! use pm_grid::builder::annulus;
//!
//! let report = Election::on(&annulus(5, 2))
//!     .scheduler(RoundRobin)
//!     .run()
//!     .expect("election succeeds");
//! assert!(report.predicate_holds());
//! ```

use crate::api::{run_pipeline_phases, NoopObserver, RunOptions};
use crate::collect::CollectOutcome;
use crate::dle::DleOutcome;
use crate::obd::ObdOutcome;
use pm_amoebot::scheduler::Scheduler;
use pm_grid::{Point, Shape};
use serde::{Deserialize, Serialize};

pub use crate::api::ElectionError;

/// Configuration of the election pipeline.
#[deprecated(
    since = "0.2.0",
    note = "use pm_core::api::RunOptions (via Election::on(..) or LeaderElection::elect)"
)]
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ElectionConfig {
    /// Whether particles are assumed to know initially which of their
    /// incident empty points lie on the outer face. When `false`, the OBD
    /// primitive is run first and its round cost is added.
    pub assume_outer_boundary_known: bool,
    /// Whether to run Algorithm Collect after DLE to reconnect the system.
    pub reconnect: bool,
    /// Whether to track connectivity round-by-round during DLE (reports
    /// whether the system ever disconnected; costs one BFS per round).
    pub track_connectivity: bool,
}

#[allow(deprecated)]
impl Default for ElectionConfig {
    fn default() -> ElectionConfig {
        ElectionConfig {
            assume_outer_boundary_known: false,
            reconnect: true,
            track_connectivity: false,
        }
    }
}

#[allow(deprecated)]
impl ElectionConfig {
    /// The `O(D_A)` configuration: boundary knowledge assumed, reconnection
    /// enabled.
    pub fn with_boundary_knowledge() -> ElectionConfig {
        ElectionConfig {
            assume_outer_boundary_known: true,
            ..ElectionConfig::default()
        }
    }

    /// The equivalent [`RunOptions`] of the new API.
    pub fn to_run_options(&self) -> RunOptions {
        RunOptions {
            assume_outer_boundary_known: self.assume_outer_boundary_known,
            reconnect: self.reconnect,
            track_connectivity: self.track_connectivity,
            ..RunOptions::default()
        }
    }
}

/// The result of the full election pipeline.
#[deprecated(
    since = "0.2.0",
    note = "use pm_core::api::RunReport (leader is a plain Point there)"
)]
#[derive(Clone, Debug)]
pub struct ElectionOutcome {
    /// The elected leader's final position. Historical wart kept for
    /// compatibility: this is always `Some` on success — the replacement
    /// [`crate::api::RunReport::leader`] is a plain [`Point`].
    pub leader: Option<Point>,
    /// The OBD outcome, when the boundary-knowledge assumption was not made.
    pub obd: Option<ObdOutcome>,
    /// The DLE outcome.
    pub dle: DleOutcome,
    /// The Collect outcome, when reconnection was requested.
    pub collect: Option<CollectOutcome>,
    /// Total rounds across all executed phases.
    pub total_rounds: u64,
    /// Whether the final configuration is connected.
    pub final_shape_connected: bool,
    /// Final particle positions.
    pub final_positions: Vec<Point>,
}

#[allow(deprecated)]
impl ElectionOutcome {
    /// Whether the leader-election predicate holds: unique leader, all others
    /// followers, and (when reconnection ran) a connected final shape.
    pub fn predicate_holds(&self) -> bool {
        self.leader.is_some() && self.dle.predicate_holds() && self.final_shape_connected
    }

    /// The final shape of the particle system.
    pub fn final_shape(&self) -> Shape {
        Shape::from_points(self.final_positions.iter().copied())
    }

    /// Rounds spent in each phase: `(obd, dle, collect)`.
    pub fn phase_rounds(&self) -> (u64, u64, u64) {
        (
            self.obd.as_ref().map_or(0, |o| o.rounds),
            self.dle.stats.rounds,
            self.collect.as_ref().map_or(0, |c| c.rounds),
        )
    }
}

/// Runs the election pipeline on the given initial shape.
///
/// # Errors
///
/// Returns [`ElectionError::InvalidInitialConfiguration`] if the shape is
/// empty or disconnected, and [`ElectionError::Run`] if the DLE execution
/// exceeds its (generous) round budget.
#[deprecated(
    since = "0.2.0",
    note = "use pm_core::api::Election::on(&shape)...run() or PaperPipeline::elect"
)]
#[allow(deprecated)]
pub fn elect_leader<S: Scheduler>(
    shape: &Shape,
    config: &ElectionConfig,
    scheduler: &mut S,
) -> Result<ElectionOutcome, ElectionError> {
    let opts = config.to_run_options();
    let phases = run_pipeline_phases(shape, &mut *scheduler, &opts, &mut NoopObserver)?;

    let final_positions = phases
        .collect
        .as_ref()
        .map(|c| c.final_positions.clone())
        .unwrap_or_else(|| phases.dle.final_positions.clone());
    let final_shape_connected = Shape::from_points(final_positions.iter().copied()).is_connected();
    let total_rounds = phases.obd.as_ref().map_or(0, |o| o.rounds)
        + phases.dle.stats.rounds
        + phases.collect.as_ref().map_or(0, |c| c.rounds);

    Ok(ElectionOutcome {
        leader: Some(phases.dle.leader_point),
        obd: phases.obd,
        dle: phases.dle,
        collect: phases.collect,
        total_rounds,
        final_shape_connected,
        final_positions,
    })
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use pm_amoebot::generators::{dumbbell, random_blob, random_holey_hexagon};
    use pm_amoebot::scheduler::{RoundRobin, SeededRandom};
    use pm_grid::builder::{annulus, comb, hexagon, line, swiss_cheese};
    use pm_grid::Metric;

    #[test]
    fn default_pipeline_elects_and_reconnects() {
        for shape in [hexagon(3), annulus(5, 2), comb(5, 4), swiss_cheese(6, 3)] {
            let n = shape.len();
            let outcome =
                elect_leader(&shape, &ElectionConfig::default(), &mut RoundRobin).unwrap();
            assert!(outcome.predicate_holds());
            assert_eq!(outcome.final_positions.len(), n);
            assert!(outcome.obd.is_some());
            assert!(outcome.collect.is_some());
            let (obd_r, dle_r, col_r) = outcome.phase_rounds();
            assert_eq!(outcome.total_rounds, obd_r + dle_r + col_r);
        }
    }

    #[test]
    fn shim_matches_the_new_api() {
        // The deprecated entry point must stay behaviourally identical to the
        // unified API it delegates to.
        use crate::api::{phase, Election};
        let shape = swiss_cheese(5, 2);
        let outcome = elect_leader(
            &shape,
            &ElectionConfig::default(),
            &mut SeededRandom::new(7),
        )
        .unwrap();
        let report = Election::on(&shape)
            .scheduler(SeededRandom::new(7))
            .run()
            .unwrap();
        assert_eq!(outcome.leader, Some(report.leader));
        assert_eq!(outcome.total_rounds, report.total_rounds);
        assert_eq!(outcome.phase_rounds().0, report.phase_rounds(phase::OBD));
        assert_eq!(outcome.phase_rounds().1, report.phase_rounds(phase::DLE));
        assert_eq!(
            outcome.phase_rounds().2,
            report.phase_rounds(phase::COLLECT)
        );
        assert_eq!(outcome.final_positions, report.final_positions);
    }

    #[test]
    fn boundary_knowledge_variant_skips_obd() {
        let shape = annulus(4, 1);
        let outcome = elect_leader(
            &shape,
            &ElectionConfig::with_boundary_knowledge(),
            &mut RoundRobin,
        )
        .unwrap();
        assert!(outcome.obd.is_none());
        assert!(outcome.predicate_holds());
    }

    #[test]
    fn no_reconnect_variant_may_stay_disconnected() {
        let config = ElectionConfig {
            assume_outer_boundary_known: true,
            reconnect: false,
            track_connectivity: true,
        };
        let outcome = elect_leader(&annulus(6, 3), &config, &mut RoundRobin).unwrap();
        assert!(outcome.leader.is_some());
        assert!(outcome.collect.is_none());
        // The DLE-only outcome satisfies the *disconnecting* leader election
        // predicate but not necessarily connectivity.
        assert!(outcome.dle.predicate_holds());
    }

    #[test]
    fn empty_and_disconnected_shapes_are_rejected() {
        let empty = Shape::new();
        assert!(matches!(
            elect_leader(&empty, &ElectionConfig::default(), &mut RoundRobin),
            Err(ElectionError::InvalidInitialConfiguration(_))
        ));
        let mut disconnected = hexagon(1);
        disconnected.insert(Point::new(30, 30));
        assert!(matches!(
            elect_leader(&disconnected, &ElectionConfig::default(), &mut RoundRobin),
            Err(ElectionError::InvalidInitialConfiguration(_))
        ));
    }

    #[test]
    fn random_shapes_elect_under_random_schedulers() {
        for seed in 0..3u64 {
            let shape = random_blob(120, seed);
            let mut scheduler = SeededRandom::new(seed);
            let outcome = elect_leader(&shape, &ElectionConfig::default(), &mut scheduler).unwrap();
            assert!(outcome.predicate_holds(), "seed {seed}");
        }
        for seed in 0..2u64 {
            let shape = random_holey_hexagon(6, 0.1, seed);
            let outcome =
                elect_leader(&shape, &ElectionConfig::default(), &mut RoundRobin).unwrap();
            assert!(outcome.predicate_holds(), "holey seed {seed}");
        }
    }

    #[test]
    fn total_rounds_scale_linearly_without_assumption() {
        // The full pipeline is O(L_out + D) (Table 1, last row).
        let mut ratios = Vec::new();
        for radius in [3u32, 6, 9] {
            let shape = hexagon(radius);
            let metric = Metric::new(&shape);
            let denom = shape.outer_boundary_len() as f64 + metric.grid_diameter() as f64;
            let outcome =
                elect_leader(&shape, &ElectionConfig::default(), &mut RoundRobin).unwrap();
            ratios.push(outcome.total_rounds as f64 / denom);
        }
        assert!(
            ratios.last().unwrap() < &(ratios.first().unwrap() * 2.0 + 2.0),
            "ratios {ratios:?} suggest super-linear scaling"
        );
    }

    #[test]
    fn dumbbell_large_diameter_shape_works() {
        let shape = dumbbell(3, 12);
        let outcome = elect_leader(&shape, &ElectionConfig::default(), &mut RoundRobin).unwrap();
        assert!(outcome.predicate_holds());
    }

    #[test]
    fn line_of_one_particle() {
        let outcome = elect_leader(&line(1), &ElectionConfig::default(), &mut RoundRobin).unwrap();
        assert!(outcome.predicate_holds());
        assert_eq!(outcome.final_positions.len(), 1);
    }

    #[test]
    fn error_display() {
        let e = ElectionError::InvalidInitialConfiguration("empty shape");
        assert!(e.to_string().contains("empty shape"));
        let stuck = ElectionError::Stuck { after_rounds: 9 };
        assert!(stuck.to_string().contains("9 rounds"));
    }
}
