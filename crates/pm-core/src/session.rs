//! Multi-tenant session scheduling over owned [`Execution`] handles.
//!
//! The batch runner ([`crate::batch`]) finishes each election eagerly —
//! right for experiment sweeps, wrong for a long-lived server where
//! thousands of elections are *live at once* and progress must be fair:
//! a giant workload must not starve the small ones, and any session must be
//! pausable, inspectable and cancellable between rounds.
//!
//! [`SessionScheduler`] holds owned executions
//! ([`crate::api::LeaderElection::start_owned`]) and advances them
//! cooperatively: each
//! [`SessionScheduler::sweep`] gives every *runnable* session at most
//! `slice_steps` calls to [`Execution::step_round`], in session-id order
//! (optionally sharded across threads — sessions are independent, so the
//! thread count never changes any session's observable behaviour). What
//! "runnable" means is per-session policy ([`Goal`]): parked, run until a
//! round target, or run to completion.
//!
//! # Checkpoints
//!
//! [`ExecutionCheckpoint`] snapshots a session as *replay instructions*:
//! the checkpoint pins the step cursor plus the status counters, and
//! [`SessionScheduler::restore`] rebuilds the session by replaying exactly
//! `steps` steps on a freshly started execution — every run in this
//! workspace is deterministic given its inputs, which is what makes
//! replay-based snapshots byte-exact. The counters are *validation*, not
//! state: after replay the restored status must reproduce them, or the
//! restore is rejected as diverged (e.g. a checkpoint presented against a
//! different corpus or code version).
//!
//! Replaying from step zero makes restore cost grow with session age, so
//! long-lived servers periodically call [`SessionScheduler::rebaseline`]:
//! it embeds a native mid-run state snapshot ([`BaselineSnapshot`], from
//! [`Execution::snapshot`]) into subsequent checkpoints, and restore then
//! fast-forwards to the baseline and replays only the steps after it. The
//! baseline is a shortcut, never an authority — the same counters validate
//! the result, and executions without native snapshot support (or broken
//! baselines) fall back to the full replay path.

use crate::api::{ElectionError, Execution, ExecutionStatus, RunReport, StepOutcome};
use pm_telemetry::trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies one live session within a [`SessionScheduler`]. Ids are
/// assigned sequentially from 1 and never reused, so a scripted request
/// sequence always observes the same ids.
pub type SessionId = u64;

/// How far the scheduler should advance a session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Goal {
    /// Parked: admitted but not advanced (the state of freshly submitted
    /// sessions, and of sessions whose watch window has been served).
    #[default]
    Hold,
    /// Advance until the session has completed the given *cumulative* number
    /// of round-driven rounds (a `watch` window), then hold.
    Rounds(u64),
    /// Advance until the session produces its final report or an error.
    Complete,
}

/// A read-only snapshot of a session's bookkeeping (not the election state
/// itself — that is [`SessionScheduler::status`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionView {
    /// Step cursor: how many [`Execution::step_round`] calls the session has
    /// executed (the replay count a checkpoint records).
    pub steps: u64,
    /// Completed rounds of the round-driven phase, cumulative.
    pub rounds: u64,
    /// The session's current goal.
    pub goal: Goal,
    /// Whether the session is paused (overrides the goal).
    pub paused: bool,
    /// Whether the session has an outcome (final report or error).
    pub done: bool,
}

/// A native mid-run state snapshot taken at a known step cursor — the
/// *re-baselining* companion to replay-based checkpoints. A checkpoint
/// carrying a baseline restores by applying the baseline's state to a fresh
/// execution and replaying only the steps *after* it, so replay cost is
/// bounded by the baseline's age instead of the session's (the server
/// refreshes baselines from its housekeeping pass, bounding it by the
/// autosave interval). The state value comes from [`Execution::snapshot`];
/// executions without native snapshot support simply never get a baseline
/// and keep replaying from step zero.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineSnapshot {
    /// The step cursor the state was captured at.
    pub steps: u64,
    /// Cumulative round-driven rounds at capture time.
    pub rounds: u64,
    /// The execution's native state tree ([`Execution::snapshot`]).
    pub state: serde::Value,
}

/// A serializable snapshot of one session: replay cursor + validation
/// counters, plus an optional replay [`BaselineSnapshot`]. Produced by
/// [`SessionScheduler::checkpoint`], consumed by
/// [`SessionScheduler::restore`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecutionCheckpoint {
    /// The algorithm's [`LeaderElection::name`]
    /// (validation: a checkpoint only restores onto the same algorithm).
    ///
    /// [`LeaderElection::name`]: crate::api::LeaderElection::name
    pub algorithm: String,
    /// How many steps to replay on a freshly started execution.
    pub steps: u64,
    /// Validation: cumulative round-driven rounds at capture time.
    pub rounds: u64,
    /// Validation: [`ExecutionStatus::total_rounds`] at capture time.
    pub total_rounds: u64,
    /// Validation: [`ExecutionStatus::rounds_in_phase`] at capture time.
    pub rounds_in_phase: u64,
    /// Validation: the active phase at capture time.
    pub phase: Option<String>,
    /// Validation: decided particles at capture time.
    pub decided: usize,
    /// Validation: undecided particles at capture time.
    pub undecided: usize,
    /// Validation: whether the run had finished at capture time.
    pub finished: bool,
    /// Replay shortcut: when present, restore starts from this mid-run
    /// state instead of step zero (see [`BaselineSnapshot`]). Never taken
    /// on faith — the validation counters above still guard the result.
    pub baseline: Option<BaselineSnapshot>,
}

impl ExecutionCheckpoint {
    fn capture(steps: u64, rounds: u64, status: &ExecutionStatus) -> ExecutionCheckpoint {
        ExecutionCheckpoint {
            algorithm: status.algorithm.to_string(),
            steps,
            rounds,
            total_rounds: status.total_rounds,
            rounds_in_phase: status.rounds_in_phase,
            phase: status.phase.map(str::to_string),
            decided: status.decided,
            undecided: status.undecided,
            finished: status.finished,
            baseline: None,
        }
    }

    /// Whether the validation counters (everything except the baseline,
    /// which is a replay shortcut rather than an observation) agree with
    /// `other`'s — the comparison [`SessionScheduler::restore`] performs.
    pub fn same_counters(&self, other: &ExecutionCheckpoint) -> bool {
        self.algorithm == other.algorithm
            && self.steps == other.steps
            && self.rounds == other.rounds
            && self.total_rounds == other.total_rounds
            && self.rounds_in_phase == other.rounds_in_phase
            && self.phase == other.phase
            && self.decided == other.decided
            && self.undecided == other.undecided
            && self.finished == other.finished
    }
}

/// Why a [`SessionScheduler::restore`] was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum RestoreError {
    /// The checkpoint names a different algorithm than the execution it was
    /// presented with.
    AlgorithmMismatch {
        /// The algorithm the checkpoint was captured from.
        expected: String,
        /// The algorithm of the execution offered for restore.
        actual: String,
    },
    /// Replaying `steps` steps did not reproduce the checkpoint's counters:
    /// the offered execution is not the run the checkpoint came from.
    Diverged {
        /// The counters the checkpoint recorded.
        expected: Box<ExecutionCheckpoint>,
        /// The counters the replay actually produced.
        actual: Box<ExecutionCheckpoint>,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::AlgorithmMismatch { expected, actual } => {
                write!(f, "checkpoint is for `{expected}`, not `{actual}`")
            }
            RestoreError::Diverged { expected, actual } => write!(
                f,
                "replay diverged from checkpoint (expected {expected:?}, got {actual:?})"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// One live session: the owned execution plus scheduling bookkeeping and a
/// caller-defined payload (the server stores each session's perturbation
/// script here, so threaded sweeps carry the per-session fault hook with the
/// slot they own).
struct Slot<P> {
    execution: Execution<'static>,
    payload: P,
    goal: Goal,
    paused: bool,
    steps: u64,
    rounds: u64,
    recording: bool,
    recorded: Vec<ExecutionStatus>,
    outcome: Option<Result<RunReport, ElectionError>>,
    /// The most recent native state snapshot, refreshed by
    /// [`SessionScheduler::rebaseline`]; embedded into checkpoints so
    /// restores replay only the steps since it.
    baseline: Option<BaselineSnapshot>,
}

impl<P> Slot<P> {
    fn runnable(&self) -> bool {
        !self.paused
            && self.outcome.is_none()
            && match self.goal {
                Goal::Hold => false,
                Goal::Rounds(target) => self.rounds < target,
                Goal::Complete => true,
            }
    }

    /// Executes one step: fires the caller's hook (fault injection), pumps
    /// the execution, and updates the cursor, round tally, recording buffer
    /// and outcome. The single code path behind sweeps *and* checkpoint
    /// replay — both observe byte-identical behaviour by construction.
    fn step(&mut self, hook: &(dyn Fn(&mut P, &mut Execution<'static>) + Sync)) {
        hook(&mut self.payload, &mut self.execution);
        let outcome = self.execution.step_round();
        self.steps += 1;
        match outcome {
            Ok(StepOutcome::RoundCompleted { .. }) => {
                self.rounds += 1;
                if self.recording {
                    self.recorded.push(self.execution.status());
                }
            }
            Ok(StepOutcome::Finished(report)) => {
                if self.outcome.is_none() {
                    self.outcome = Some(Ok(report));
                }
            }
            Ok(_) => {}
            Err(e) => {
                if self.outcome.is_none() {
                    self.outcome = Some(Err(e));
                }
            }
        }
    }

    /// Gives the slot at most `slice` steps; returns how many it took.
    fn advance(
        &mut self,
        slice: u64,
        hook: &(dyn Fn(&mut P, &mut Execution<'static>) + Sync),
    ) -> u64 {
        let mut taken = 0;
        while taken < slice && self.runnable() {
            self.step(hook);
            taken += 1;
        }
        taken
    }
}

/// A cooperative, fair, multi-tenant scheduler over owned executions; see
/// the [module docs](self) for the model.
///
/// The payload type `P` is per-session state swept along with the execution
/// (the server keeps each session's perturbation script there); use `()`
/// when no per-session hook state is needed.
pub struct SessionScheduler<P = ()> {
    slots: BTreeMap<SessionId, Slot<P>>,
    next_id: SessionId,
    slice_steps: u64,
    threads: usize,
    totals: SweepTotals,
}

/// Cumulative sweep accounting, kept by the scheduler across its lifetime.
/// Deterministic (no wall-clock — callers time sweeps themselves if they
/// want latency), so it is safe to read anywhere without perturbing
/// byte-reproducible runs. `slices / sweeps` is the mean number of sessions
/// granted a slice per sweep — the fairness denominator a server's
/// telemetry reports alongside sweep latency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepTotals {
    /// Sweeps performed ([`SessionScheduler::sweep`] calls).
    pub sweeps: u64,
    /// Execution steps performed across all sweeps.
    pub steps: u64,
    /// Session-slices granted: one per runnable session per sweep,
    /// whether or not the session used its whole step budget.
    pub slices: u64,
}

/// The hook type sweeps thread through to every step: called with the
/// session's payload and execution *before* each [`Execution::step_round`],
/// exactly like a perturbation script's caller-side loop.
pub type StepHook<'h, P> = &'h (dyn Fn(&mut P, &mut Execution<'static>) + Sync);

/// The no-op hook for sessions without fault injection.
pub fn no_hook<P>(_: &mut P, _: &mut Execution<'static>) {}

/// The trace span for one session's sweep slice, `None` (and
/// allocation-free) while no recorder is active. Sharded sweeps open these
/// on their worker threads, so each slice nests under whatever that thread
/// has open — the round spans an execution records during the slice nest
/// under it in turn.
fn slice_span(id: SessionId) -> Option<trace::SpanGuard> {
    trace::enabled().then(|| trace::span("scheduler", format!("session:{id}")))
}

impl<P: Send> SessionScheduler<P> {
    /// A sequential scheduler giving each runnable session at most
    /// `slice_steps` steps per sweep.
    pub fn new(slice_steps: u64) -> SessionScheduler<P> {
        SessionScheduler::with_threads(slice_steps, 1)
    }

    /// Like [`SessionScheduler::new`], sharding each sweep across up to
    /// `threads` worker threads. Sessions are independent, so results are
    /// bit-identical to the sequential scheduler's.
    pub fn with_threads(slice_steps: u64, threads: usize) -> SessionScheduler<P> {
        SessionScheduler {
            slots: BTreeMap::new(),
            next_id: 1,
            slice_steps: slice_steps.max(1),
            threads: threads.max(1),
            totals: SweepTotals::default(),
        }
    }

    /// Cumulative sweep accounting since the scheduler was created.
    pub fn sweep_totals(&self) -> SweepTotals {
        self.totals
    }

    /// Number of live sessions (any goal, paused or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The live session ids, ascending.
    pub fn ids(&self) -> Vec<SessionId> {
        self.slots.keys().copied().collect()
    }

    /// Admits an owned execution as a new parked session ([`Goal::Hold`])
    /// and returns its id.
    pub fn admit(&mut self, execution: Execution<'static>, payload: P) -> SessionId {
        let id = self.next_id;
        self.next_id += 1;
        self.slots.insert(
            id,
            Slot {
                execution,
                payload,
                goal: Goal::Hold,
                paused: false,
                steps: 0,
                rounds: 0,
                recording: false,
                recorded: Vec::new(),
                outcome: None,
                baseline: None,
            },
        );
        id
    }

    /// Removes a session (cancellation), returning its payload.
    pub fn remove(&mut self, id: SessionId) -> Option<P> {
        self.slots.remove(&id).map(|slot| slot.payload)
    }

    /// The session's bookkeeping snapshot.
    pub fn view(&self, id: SessionId) -> Option<SessionView> {
        self.slots.get(&id).map(|slot| SessionView {
            steps: slot.steps,
            rounds: slot.rounds,
            goal: slot.goal,
            paused: slot.paused,
            done: slot.outcome.is_some(),
        })
    }

    /// The session's election status snapshot.
    pub fn status(&self, id: SessionId) -> Option<ExecutionStatus> {
        self.slots.get(&id).map(|slot| slot.execution.status())
    }

    /// The session's final outcome, once produced.
    pub fn outcome(&self, id: SessionId) -> Option<&Result<RunReport, ElectionError>> {
        self.slots.get(&id).and_then(|slot| slot.outcome.as_ref())
    }

    /// Shared access to the session's payload.
    pub fn payload(&self, id: SessionId) -> Option<&P> {
        self.slots.get(&id).map(|slot| &slot.payload)
    }

    /// Mutable access to the session's payload (the server appends
    /// `perturb` events to the stored script through this).
    pub fn payload_mut(&mut self, id: SessionId) -> Option<&mut P> {
        self.slots.get_mut(&id).map(|slot| &mut slot.payload)
    }

    /// Sets the session's goal; `true` if the session exists.
    pub fn set_goal(&mut self, id: SessionId, goal: Goal) -> bool {
        match self.slots.get_mut(&id) {
            Some(slot) => {
                slot.goal = goal;
                true
            }
            None => false,
        }
    }

    /// Pauses the session (overrides its goal); `true` if it exists.
    pub fn pause(&mut self, id: SessionId) -> bool {
        match self.slots.get_mut(&id) {
            Some(slot) => {
                slot.paused = true;
                true
            }
            None => false,
        }
    }

    /// Clears the session's pause flag; `true` if it exists.
    pub fn resume(&mut self, id: SessionId) -> bool {
        match self.slots.get_mut(&id) {
            Some(slot) => {
                slot.paused = false;
                true
            }
            None => false,
        }
    }

    /// Whether a sweep would advance this session right now.
    pub fn runnable(&self, id: SessionId) -> bool {
        self.slots.get(&id).is_some_and(Slot::runnable)
    }

    /// Turns per-round status recording on or off; `true` if the session
    /// exists. While on, every completed round appends an
    /// [`ExecutionStatus`] to the session's buffer (drained by
    /// [`SessionScheduler::drain_recorded`]) — the `watch` stream.
    pub fn set_recording(&mut self, id: SessionId, on: bool) -> bool {
        match self.slots.get_mut(&id) {
            Some(slot) => {
                slot.recording = on;
                true
            }
            None => false,
        }
    }

    /// Takes the statuses recorded since the last drain.
    pub fn drain_recorded(&mut self, id: SessionId) -> Vec<ExecutionStatus> {
        self.slots
            .get_mut(&id)
            .map(|slot| std::mem::take(&mut slot.recorded))
            .unwrap_or_default()
    }

    /// One fair pass: every runnable session gets at most `slice_steps`
    /// steps, in session-id order, with `hook` fired before each step.
    /// Returns the total steps executed (0 = nothing runnable; pump loops
    /// use this as their progress signal).
    pub fn sweep(&mut self, hook: StepHook<'_, P>) -> u64 {
        // Tracing is out-of-band: the sweep span and the per-session slice
        // spans below time the sweep without influencing it, and with no
        // recorder installed each gate is one relaxed atomic load.
        let _sweep = trace::span("scheduler", "sweep");
        let slice = self.slice_steps;
        let mut runnable: Vec<(SessionId, &mut Slot<P>)> = self
            .slots
            .iter_mut()
            .filter(|(_, slot)| slot.runnable())
            .map(|(id, slot)| (*id, slot))
            .collect();
        let granted = runnable.len() as u64;
        let workers = self.threads.min(runnable.len());
        let steps = if workers <= 1 {
            runnable
                .iter_mut()
                .map(|(id, slot)| {
                    let _slice = slice_span(*id);
                    slot.advance(slice, hook)
                })
                .sum()
        } else {
            // Contiguous shards: any partition yields identical results
            // because sessions never interact — the shard boundary is pure
            // wall-clock.
            let shard = runnable.len().div_ceil(workers);
            std::thread::scope(|scope| {
                runnable
                    .chunks_mut(shard)
                    .map(|chunk| {
                        scope.spawn(move || {
                            chunk
                                .iter_mut()
                                .map(|(id, slot)| {
                                    let _slice = slice_span(*id);
                                    slot.advance(slice, hook)
                                })
                                .sum::<u64>()
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|handle| handle.join().expect("sweep workers do not panic"))
                    .sum()
            })
        };
        self.totals.sweeps += 1;
        self.totals.steps += steps;
        self.totals.slices += granted;
        steps
    }

    /// Sweeps until the given session stops being runnable (goal reached,
    /// outcome produced, paused or removed), advancing every *other*
    /// runnable session fairly along the way. Returns total steps executed.
    pub fn drive(&mut self, id: SessionId, hook: StepHook<'_, P>) -> u64 {
        let mut total = 0;
        while self.runnable(id) {
            total += self.sweep(hook);
        }
        total
    }

    /// Snapshots a session for [`SessionScheduler::restore`]. The
    /// checkpoint embeds the session's current [`BaselineSnapshot`] (if one
    /// was ever taken via [`SessionScheduler::rebaseline`]), so restores
    /// replay only the steps since the baseline.
    pub fn checkpoint(&self, id: SessionId) -> Option<ExecutionCheckpoint> {
        self.slots.get(&id).map(|slot| {
            let mut checkpoint =
                ExecutionCheckpoint::capture(slot.steps, slot.rounds, &slot.execution.status());
            checkpoint.baseline = slot.baseline.clone();
            checkpoint
        })
    }

    /// Refreshes the session's replay baseline from the execution's native
    /// state snapshot, so subsequent checkpoints replay only steps taken
    /// after *now*. Returns `true` if a baseline was captured; `false` when
    /// the session does not exist or its execution has no native snapshot
    /// support (such sessions keep replaying from step zero).
    pub fn rebaseline(&mut self, id: SessionId) -> bool {
        let Some(slot) = self.slots.get_mut(&id) else {
            return false;
        };
        // An errored session's outcome lives outside the execution's state
        // (only the failing replay step can reproduce it), so it keeps its
        // from-zero replay checkpoint.
        if matches!(slot.outcome, Some(Err(_))) {
            return false;
        }
        match slot.execution.snapshot() {
            Some(state) => {
                slot.baseline = Some(BaselineSnapshot {
                    steps: slot.steps,
                    rounds: slot.rounds,
                    state,
                });
                true
            }
            None => false,
        }
    }

    /// Restores a checkpoint onto a freshly started execution: admits it as
    /// a parked session, replays exactly `checkpoint.steps` steps (with
    /// `hook` fired before each, exactly as live sweeps do), and validates
    /// that the replayed counters reproduce the checkpoint's. On validation
    /// failure the session is removed again and an error is returned.
    ///
    /// # Errors
    ///
    /// [`RestoreError::AlgorithmMismatch`] before any replay;
    /// [`RestoreError::Diverged`] when the replayed execution does not
    /// reproduce the checkpoint's counters.
    pub fn restore(
        &mut self,
        execution: Execution<'static>,
        payload: P,
        checkpoint: &ExecutionCheckpoint,
        hook: StepHook<'_, P>,
    ) -> Result<SessionId, RestoreError> {
        if execution.status().algorithm != checkpoint.algorithm {
            return Err(RestoreError::AlgorithmMismatch {
                expected: checkpoint.algorithm.clone(),
                actual: execution.status().algorithm.to_string(),
            });
        }
        let id = self.admit(execution, payload);
        let slot = self.slots.get_mut(&id).expect("just admitted");
        // Fast-forward to the checkpoint's baseline when it carries one and
        // the fresh execution accepts it; otherwise fall back to replaying
        // from step zero. Either path lands on the same state — the
        // validation below guards both equally.
        if let Some(baseline) = &checkpoint.baseline {
            if baseline.steps <= checkpoint.steps
                && slot.execution.restore_snapshot(&baseline.state).is_ok()
            {
                slot.steps = baseline.steps;
                slot.rounds = baseline.rounds;
                slot.baseline = Some(baseline.clone());
            }
        }
        // Replay ignores goals and pausing: the cursor, not policy, decides
        // how far to go. Stepping past an error just re-surfaces it, so an
        // errored session replays to the same errored state.
        while slot.steps < checkpoint.steps {
            slot.step(hook);
        }
        // A baseline taken at (or after) the finishing step leaves no replay
        // step to surface the final report; harvest it directly — stepping a
        // finished execution re-returns `Finished` without advancing.
        if slot.outcome.is_none() && slot.execution.status().finished {
            if let Ok(StepOutcome::Finished(report)) = slot.execution.step_round() {
                slot.outcome = Some(Ok(report));
            }
        }
        let replayed =
            ExecutionCheckpoint::capture(slot.steps, slot.rounds, &slot.execution.status());
        if !replayed.same_counters(checkpoint) {
            self.slots.remove(&id);
            return Err(RestoreError::Diverged {
                expected: Box::new(checkpoint.clone()),
                actual: Box::new(replayed),
            });
        }
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{LeaderElection, PaperPipeline, RunOptions};
    use crate::batch::SchedulerSpec;
    use pm_grid::builder::{annulus, hexagon};

    fn start(seed: u64) -> Execution<'static> {
        PaperPipeline
            .start_owned(
                &annulus(4, 2),
                SchedulerSpec::SeededRandom(seed).build(),
                &RunOptions::default(),
            )
            .expect("valid configuration")
    }

    fn reference_report(seed: u64) -> RunReport {
        PaperPipeline
            .elect(
                &annulus(4, 2),
                &mut *SchedulerSpec::SeededRandom(seed).build(),
                &RunOptions::default(),
            )
            .expect("terminates")
    }

    #[test]
    fn sessions_complete_and_match_eager_elect() {
        let mut scheduler: SessionScheduler = SessionScheduler::new(8);
        let a = scheduler.admit(start(1), ());
        let b = scheduler.admit(start(2), ());
        scheduler.set_goal(a, Goal::Complete);
        scheduler.set_goal(b, Goal::Complete);
        while scheduler.sweep(&no_hook) > 0 {}
        for (id, seed) in [(a, 1), (b, 2)] {
            let report = scheduler.outcome(id).expect("done").as_ref().expect("ok");
            assert_eq!(report, &reference_report(seed));
        }
    }

    #[test]
    fn sweeps_are_fair_and_bounded() {
        let mut scheduler: SessionScheduler = SessionScheduler::new(4);
        let a = scheduler.admit(start(1), ());
        let b = scheduler.admit(start(2), ());
        scheduler.set_goal(a, Goal::Complete);
        scheduler.set_goal(b, Goal::Complete);
        let steps = scheduler.sweep(&no_hook);
        assert_eq!(steps, 8, "both sessions got exactly their slice");
        let (va, vb) = (
            scheduler.view(a).unwrap().steps,
            scheduler.view(b).unwrap().steps,
        );
        assert_eq!((va, vb), (4, 4));
    }

    #[test]
    fn threaded_sweeps_equal_sequential_sweeps() {
        let run = |threads: usize| -> Vec<RunReport> {
            let mut scheduler: SessionScheduler = SessionScheduler::with_threads(16, threads);
            let ids: Vec<SessionId> = (0..6).map(|s| scheduler.admit(start(s), ())).collect();
            for &id in &ids {
                scheduler.set_goal(id, Goal::Complete);
            }
            while scheduler.sweep(&no_hook) > 0 {}
            ids.iter()
                .map(|&id| {
                    scheduler
                        .outcome(id)
                        .expect("done")
                        .as_ref()
                        .expect("ok")
                        .clone()
                })
                .collect()
        };
        let sequential = run(1);
        assert_eq!(sequential, run(2));
        assert_eq!(sequential, run(8));
    }

    #[test]
    fn round_goals_stop_exactly_and_record_statuses() {
        let mut scheduler: SessionScheduler = SessionScheduler::new(3);
        let id = scheduler.admit(start(7), ());
        scheduler.set_recording(id, true);
        scheduler.set_goal(id, Goal::Rounds(5));
        scheduler.drive(id, &no_hook);
        let view = scheduler.view(id).unwrap();
        assert_eq!(view.rounds, 5);
        assert!(!view.done);
        let recorded = scheduler.drain_recorded(id);
        assert_eq!(recorded.len(), 5);
        assert!(recorded.iter().all(|s| s.phase.is_some()));
        assert!(scheduler.drain_recorded(id).is_empty(), "drained");
        // Extending the window resumes from where the session stopped.
        scheduler.set_goal(id, Goal::Rounds(7));
        scheduler.drive(id, &no_hook);
        assert_eq!(scheduler.drain_recorded(id).len(), 2);
    }

    #[test]
    fn pause_overrides_goal_and_resume_continues() {
        let mut scheduler: SessionScheduler = SessionScheduler::new(4);
        let id = scheduler.admit(start(3), ());
        scheduler.set_goal(id, Goal::Complete);
        scheduler.pause(id);
        assert!(!scheduler.runnable(id));
        assert_eq!(scheduler.sweep(&no_hook), 0);
        scheduler.resume(id);
        scheduler.drive(id, &no_hook);
        let report = scheduler.outcome(id).expect("done").as_ref().expect("ok");
        assert_eq!(report, &reference_report(3));
    }

    #[test]
    fn checkpoint_restore_is_byte_identical_to_uninterrupted_stepping() {
        // The differential pin: run to round r, checkpoint, restore onto a
        // fresh execution in a fresh scheduler, finish — the final report
        // must equal the uninterrupted run's, byte for byte.
        let reference = reference_report(7);
        for target in [1, 6] {
            let mut live: SessionScheduler = SessionScheduler::new(5);
            let id = live.admit(start(7), ());
            live.set_goal(id, Goal::Rounds(target));
            live.drive(id, &no_hook);
            let checkpoint = live.checkpoint(id).expect("session exists");
            assert_eq!(checkpoint.rounds, target);
            assert!(!checkpoint.finished);

            let mut restored: SessionScheduler = SessionScheduler::new(5);
            let id = restored
                .restore(start(7), (), &checkpoint, &no_hook)
                .expect("replay validates");
            assert_eq!(restored.view(id).unwrap().steps, checkpoint.steps);
            restored.set_goal(id, Goal::Complete);
            restored.drive(id, &no_hook);
            let report = restored.outcome(id).expect("done").as_ref().expect("ok");
            assert_eq!(report, &reference);
            let bytes = serde_json::to_string(report).unwrap();
            assert_eq!(bytes, serde_json::to_string(&reference).unwrap());
        }
    }

    #[test]
    fn rebaselined_checkpoints_restore_byte_identically_with_short_replays() {
        // Same differential pin as the replay-from-zero test, but with a
        // baseline refreshed mid-run: the restore must fast-forward to the
        // baseline (cheap) and still finish byte-identically.
        let reference = reference_report(7);
        let mut live: SessionScheduler = SessionScheduler::new(5);
        let id = live.admit(start(7), ());
        live.set_goal(id, Goal::Rounds(3));
        live.drive(id, &no_hook);
        assert!(live.rebaseline(id), "pipeline supports native snapshots");
        live.set_goal(id, Goal::Rounds(6));
        live.drive(id, &no_hook);
        let checkpoint = live.checkpoint(id).expect("session exists");
        let baseline = checkpoint.baseline.as_ref().expect("baseline embedded");
        assert!(baseline.steps < checkpoint.steps);
        assert_eq!(baseline.rounds, 3);

        let mut restored: SessionScheduler = SessionScheduler::new(5);
        let id = restored
            .restore(start(7), (), &checkpoint, &no_hook)
            .expect("baseline restore validates");
        assert_eq!(restored.view(id).unwrap().steps, checkpoint.steps);
        restored.set_goal(id, Goal::Complete);
        restored.drive(id, &no_hook);
        let report = restored.outcome(id).expect("done").as_ref().expect("ok");
        assert_eq!(report, &reference);
        assert_eq!(
            serde_json::to_string(report).unwrap(),
            serde_json::to_string(&reference).unwrap()
        );
    }

    #[test]
    fn rebaselined_finished_sessions_restore_their_outcome_without_replay() {
        let mut live: SessionScheduler = SessionScheduler::new(64);
        let id = live.admit(start(5), ());
        live.set_goal(id, Goal::Complete);
        live.drive(id, &no_hook);
        assert!(live.rebaseline(id));
        let checkpoint = live.checkpoint(id).unwrap();
        assert!(checkpoint.finished);
        assert_eq!(
            checkpoint.baseline.as_ref().unwrap().steps,
            checkpoint.steps,
            "baseline at the cursor: nothing left to replay"
        );

        let mut fresh: SessionScheduler = SessionScheduler::new(64);
        let id = fresh
            .restore(start(5), (), &checkpoint, &no_hook)
            .expect("restore validates");
        let report = fresh.outcome(id).expect("done").as_ref().expect("ok");
        assert_eq!(report, &reference_report(5));
    }

    #[test]
    fn corrupt_baselines_fall_back_to_full_replay() {
        let mut live: SessionScheduler = SessionScheduler::new(5);
        let id = live.admit(start(7), ());
        live.set_goal(id, Goal::Rounds(4));
        live.drive(id, &no_hook);
        live.rebaseline(id);
        let mut checkpoint = live.checkpoint(id).unwrap();
        // Garble the baseline's state tree: restore must ignore it, replay
        // from step zero, and still validate.
        checkpoint.baseline.as_mut().unwrap().state = serde::Value::Str("garbage".to_string());
        let mut fresh: SessionScheduler = SessionScheduler::new(5);
        let id = fresh
            .restore(start(7), (), &checkpoint, &no_hook)
            .expect("fallback replay validates");
        assert_eq!(fresh.view(id).unwrap().steps, checkpoint.steps);
    }

    #[test]
    fn rebaseline_skips_errored_sessions() {
        // A round budget of 1 forces a Stuck/RoundLimit error quickly.
        let mut scheduler: SessionScheduler = SessionScheduler::new(8);
        let execution = PaperPipeline
            .start_owned(
                &annulus(4, 2),
                SchedulerSpec::SeededRandom(7).build(),
                &RunOptions {
                    round_budget: Some(1),
                    ..RunOptions::default()
                },
            )
            .expect("valid configuration");
        let id = scheduler.admit(execution, ());
        scheduler.set_goal(id, Goal::Complete);
        while scheduler.sweep(&no_hook) > 0 {}
        assert!(scheduler.outcome(id).expect("errored").is_err());
        assert!(
            !scheduler.rebaseline(id),
            "errored sessions keep full replay"
        );
        assert!(scheduler.checkpoint(id).unwrap().baseline.is_none());
    }

    #[test]
    fn restore_rejects_wrong_algorithm_and_diverged_replays() {
        let mut live: SessionScheduler = SessionScheduler::new(5);
        let id = live.admit(start(7), ());
        live.set_goal(id, Goal::Rounds(4));
        live.drive(id, &no_hook);
        let mut checkpoint = live.checkpoint(id).unwrap();

        let mut fresh: SessionScheduler = SessionScheduler::new(5);
        checkpoint.algorithm = "erosion-le".to_string();
        assert!(matches!(
            fresh.restore(start(7), (), &checkpoint, &no_hook),
            Err(RestoreError::AlgorithmMismatch { .. })
        ));
        checkpoint.algorithm = "dle+collect".to_string();
        checkpoint.decided += 1;
        assert!(matches!(
            fresh.restore(start(7), (), &checkpoint, &no_hook),
            Err(RestoreError::Diverged { .. })
        ));
        assert!(fresh.is_empty(), "rejected restores leave no session");
    }

    #[test]
    fn checkpoints_of_finished_sessions_restore_their_outcome() {
        let mut live: SessionScheduler = SessionScheduler::new(64);
        let id = live.admit(start(5), ());
        live.set_goal(id, Goal::Complete);
        live.drive(id, &no_hook);
        let checkpoint = live.checkpoint(id).unwrap();
        assert!(checkpoint.finished);

        let mut fresh: SessionScheduler = SessionScheduler::new(64);
        let id = fresh
            .restore(start(5), (), &checkpoint, &no_hook)
            .expect("replay validates");
        let report = fresh.outcome(id).expect("done").as_ref().expect("ok");
        assert_eq!(report, &reference_report(5));
    }

    #[test]
    fn hooks_fire_before_every_step_and_replay_identically() {
        // A fault hook that removes one particle before round 2, live and
        // under replay: the restored run must reproduce the perturbed run.
        fn faulting_hook(fired: &mut bool, execution: &mut Execution<'static>) {
            if !*fired && execution.next_round().map(|(_, r)| r) == Some(2) {
                *fired = true;
                let mut system = execution.system().expect("round-driven phase");
                let victim = system.particle_positions()[0];
                system.remove_at(victim);
                system.reinitialize();
            }
        }
        let perturbed = |target: Goal| -> SessionScheduler<bool> {
            let mut scheduler: SessionScheduler<bool> = SessionScheduler::new(4);
            let shape = hexagon(4);
            let execution = PaperPipeline
                .start_owned(
                    &shape,
                    SchedulerSpec::SeededRandom(3).build(),
                    &RunOptions::default(),
                )
                .unwrap();
            let id = scheduler.admit(execution, false);
            scheduler.set_goal(id, target);
            scheduler.drive(id, &faulting_hook);
            scheduler
        };
        let full = perturbed(Goal::Complete);
        let reference = full.outcome(1).expect("done").as_ref().expect("ok").clone();
        assert_eq!(reference.final_positions.len(), hexagon(4).len() - 1);

        let live = perturbed(Goal::Rounds(5));
        assert!(*live.payload(1).unwrap(), "hook fired before round 5");
        let checkpoint = live.checkpoint(1).unwrap();
        let mut fresh: SessionScheduler<bool> = SessionScheduler::new(4);
        let execution = PaperPipeline
            .start_owned(
                &hexagon(4),
                SchedulerSpec::SeededRandom(3).build(),
                &RunOptions::default(),
            )
            .unwrap();
        let id = fresh
            .restore(execution, false, &checkpoint, &faulting_hook)
            .expect("replay validates");
        fresh.set_goal(id, Goal::Complete);
        fresh.drive(id, &faulting_hook);
        let report = fresh.outcome(id).expect("done").as_ref().expect("ok");
        assert_eq!(report, &reference);
    }

    #[test]
    fn removed_sessions_stop_existing() {
        let mut scheduler: SessionScheduler = SessionScheduler::new(4);
        let id = scheduler.admit(start(1), ());
        assert_eq!(scheduler.len(), 1);
        assert!(scheduler.remove(id).is_some());
        assert!(scheduler.is_empty());
        assert!(scheduler.status(id).is_none());
        assert!(!scheduler.runnable(id));
        assert_eq!(scheduler.drive(id, &no_hook), 0);
    }

    #[test]
    fn sweep_totals_account_every_sweep_step_and_slice() {
        let mut scheduler: SessionScheduler = SessionScheduler::new(4);
        assert_eq!(scheduler.sweep_totals(), SweepTotals::default());

        let a = scheduler.admit(start(1), ());
        let b = scheduler.admit(start(2), ());
        scheduler.set_goal(a, Goal::Complete);
        scheduler.set_goal(b, Goal::Complete);

        // Two runnable sessions, each stepped its full budget.
        let steps = scheduler.sweep(&no_hook);
        let totals = scheduler.sweep_totals();
        assert_eq!(
            totals,
            SweepTotals {
                sweeps: 1,
                steps,
                slices: 2
            }
        );

        // Drain both sessions; every later sweep keeps the books balanced.
        let mut expected = totals;
        loop {
            let granted = u64::from(scheduler.runnable(a)) + u64::from(scheduler.runnable(b));
            let steps = scheduler.sweep(&no_hook);
            expected = SweepTotals {
                sweeps: expected.sweeps + 1,
                steps: expected.steps + steps,
                slices: expected.slices + granted,
            };
            assert_eq!(scheduler.sweep_totals(), expected);
            if steps == 0 {
                break;
            }
        }
        // An idle sweep still counts as a sweep but grants no slices.
        assert_eq!(scheduler.sweep_totals().sweeps, expected.sweeps);
    }
}
