//! Deterministic fault injection and recovery measurement.
//!
//! This crate generalises the one-shot reset-and-recover perturbations of
//! `pm-scenarios` into a full fault model. A [`FaultPlan`] is a seeded,
//! serializable schedule of fault *processes* — periodic removals, regrow
//! (particle additions), state corruption, and move-based relocation — each
//! fired deterministically between rounds through the
//! [`Execution::system`] mutation surface by a [`FaultScript`]. Whether the
//! adversary also resets the survivors after each firing is the plan's
//! [`ResetPolicy`]: `Reinitialize` reproduces the legacy reset-and-recover
//! semantics, while `None` leaves the algorithm to *recover on its own* —
//! the regime self-stabilising leader election (Chalopin–Das–Kokkou, arXiv
//! 2408.08775) is built for, and the regime this crate exists to measure.
//!
//! Recovery is quantified by a [`RecoveryReport`], computed caller-side by
//! [`RecoveryDriver`]: it drives a steppable execution round by round,
//! fires the plan's due faults before each step, and records the rounds
//! between the last fault and stabilisation. [`measure_recovery`] wraps the
//! driver with the fallback policy the benchmarks compare against: try the
//! plan as given (no reset), and if the election errors out or fails to
//! produce a unique leader, rerun with [`ResetPolicy::Reinitialize`] and
//! flag [`RecoveryReport::reset_needed`].
//!
//! **Determinism.** Every firing derives a fresh RNG from
//! `(plan.seed, process index, round)` — no streaming RNG state survives
//! between firings — so replaying a checkpoint that fast-forwards past
//! earlier firings still produces bit-identical faults at later rounds.

use pm_amoebot::scheduler::Scheduler;
use pm_amoebot::system::SystemControl;
use pm_core::api::{phase, ElectionError, Execution, LeaderElection, RunOptions, RunReport};
use pm_core::batch::SchedulerSpec;
use pm_grid::{Point, Shape};
use pm_telemetry::trace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What one fault process does each time it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Remove `count` particles chosen uniformly at random, then prune to
    /// the largest connected component (a fault never empties the system:
    /// at least one particle always survives).
    Removals,
    /// Add up to `count` fresh particles on empty points adjacent to the
    /// occupied shape (regrow), memories initialized on the post-addition
    /// configuration.
    Regrow,
    /// Scramble the memories of `count` random particles through the
    /// algorithm's corruption hook
    /// ([`pm_amoebot::algorithm::Algorithm::corrupt`]); algorithms without
    /// a corruption model ignore it (counted as not applied).
    Corruption,
    /// A move-based adversary: pick `count` random particles and teleport
    /// each to a random empty point adjacent to the remaining shape —
    /// skipping any particle whose removal would disconnect the system, so
    /// the shape stays connected throughout.
    Relocate,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultKind::Removals => "removals",
            FaultKind::Regrow => "regrow",
            FaultKind::Corruption => "corruption",
            FaultKind::Relocate => "relocate",
        };
        f.write_str(name)
    }
}

/// One deterministic fault process: fires at round `start`, then every
/// `period` rounds until `until` (inclusive). `period == 0` means one-shot
/// (fires at `start` only). Rounds are 0-based within the election's
/// round-driven phase, exactly as `PerturbationSpec` rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultProcess {
    /// What the process does when it fires.
    pub kind: FaultKind,
    /// First round the process fires at.
    pub start: u64,
    /// Firing period in rounds; 0 = one-shot.
    pub period: u64,
    /// Last round (inclusive) the process may fire at; ignored for
    /// one-shot processes.
    pub until: u64,
    /// How many particles each firing targets.
    pub count: u32,
}

impl FaultProcess {
    /// A one-shot process firing at `round` only.
    pub fn once(kind: FaultKind, round: u64, count: u32) -> FaultProcess {
        FaultProcess {
            kind,
            start: round,
            period: 0,
            until: round,
            count,
        }
    }

    /// A periodic process firing at `start`, `start + period`, … up to
    /// `until` (inclusive).
    pub fn periodic(
        kind: FaultKind,
        start: u64,
        period: u64,
        until: u64,
        count: u32,
    ) -> FaultProcess {
        FaultProcess {
            kind,
            start,
            period,
            until,
            count,
        }
    }

    /// Whether the process fires at the given phase round.
    pub fn fires_at(&self, round: u64) -> bool {
        if round < self.start {
            return false;
        }
        if self.period == 0 {
            return round == self.start;
        }
        round <= self.until && (round - self.start).is_multiple_of(self.period)
    }

    /// The last round this process can fire at.
    pub fn horizon(&self) -> u64 {
        if self.period == 0 {
            self.start
        } else {
            self.until.max(self.start)
        }
    }
}

impl fmt::Display for FaultProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.period == 0 {
            write!(f, "{}(r{},{})", self.kind, self.start, self.count)
        } else {
            write!(
                f,
                "{}(r{}..={}/{},{})",
                self.kind, self.start, self.until, self.period, self.count
            )
        }
    }
}

/// Whether the adversary resets the survivors after each firing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResetPolicy {
    /// No reset: the algorithm must absorb the fault on its own (the
    /// self-stabilisation regime). The default.
    #[default]
    None,
    /// Re-initialize every surviving particle after each firing — the
    /// legacy reset-and-recover semantics of `PerturbationSpec`, kept as
    /// the labelled baseline.
    Reinitialize,
}

/// A deterministic seeded fault schedule: the generalisation of a
/// perturbation list. Serializable, so scenario specs and server sessions
/// carry plans verbatim and checkpoints replay them bit-identically.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed; each firing reseeds from `(seed, process index, round)`.
    pub seed: u64,
    /// Whether each firing is followed by a global reset.
    pub reset: ResetPolicy,
    /// The fault processes, fired in order on rounds where several are due.
    pub processes: Vec<FaultProcess>,
}

/// The wire/spec-level alias used by `pm-scenarios` and the server
/// protocol: a scenario's fault specification *is* a fault plan.
pub type FaultSpec = FaultPlan;

impl FaultPlan {
    /// A plan with the given seed and no processes (add with
    /// [`FaultPlan::process`]).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            reset: ResetPolicy::None,
            processes: Vec::new(),
        }
    }

    /// Builder: appends one process.
    #[must_use]
    pub fn process(mut self, process: FaultProcess) -> FaultPlan {
        self.processes.push(process);
        self
    }

    /// Builder: sets the reset policy.
    #[must_use]
    pub fn reset(mut self, reset: ResetPolicy) -> FaultPlan {
        self.reset = reset;
        self
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// The last round any process can fire at (`None` for an empty plan).
    pub fn horizon(&self) -> Option<u64> {
        self.processes.iter().map(FaultProcess::horizon).max()
    }
}

/// Mixes the plan seed, process index and round into one firing seed
/// (SplitMix64 chain): every firing gets an independent deterministic RNG,
/// and no RNG state survives between firings.
fn firing_seed(seed: u64, process: u64, round: u64) -> u64 {
    fn splitmix(state: u64) -> u64 {
        let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    splitmix(seed ^ splitmix(process ^ splitmix(round)))
}

/// Removes every particle outside the largest connected component of the
/// occupied shape (largest by size; ties broken by the lexicographically
/// smallest point, so the choice is deterministic). Returns how many
/// particles were removed.
pub fn prune_to_largest_component(system: &mut dyn SystemControl) -> usize {
    let shape = system.occupied_shape();
    if shape.is_empty() || shape.is_connected() {
        return 0;
    }
    let components = shape.connected_components();
    let keep: &Shape = components
        .iter()
        .max_by_key(|c| (c.len(), std::cmp::Reverse(c.first_point())))
        .expect("a non-empty shape has at least one component");
    let mut removed = 0;
    for p in shape.iter() {
        if !keep.contains(p) && system.remove_at(p) {
            removed += 1;
        }
    }
    removed
}

/// The empty points adjacent to the occupied shape, sorted (deterministic
/// regrow/relocation candidates).
fn frontier(shape: &Shape) -> Vec<Point> {
    let mut out: Vec<Point> = shape
        .iter()
        .flat_map(|p| p.neighbors())
        .filter(|n| !shape.contains(*n))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// A fault plan bound to one run: fires each due process before the
/// matching round of the election's round-driven phase, through
/// [`Execution::system`]. The runtime mirror of `PerturbationScript`, with
/// periodic processes and per-firing reseeding.
#[derive(Clone, Debug)]
pub struct FaultScript {
    plan: FaultPlan,
    /// Round each process last fired at (guards against double firing when
    /// the driver polls the same upcoming round more than once).
    last_fired: Vec<Option<u64>>,
    fired: usize,
    removed: usize,
    added: usize,
    corrupted: usize,
    relocated: usize,
    last_fault_round: Option<u64>,
    rounds_at_last_fault: u64,
}

impl FaultScript {
    /// A script firing the given plan.
    pub fn new(plan: FaultPlan) -> FaultScript {
        let last_fired = vec![None; plan.processes.len()];
        FaultScript {
            plan,
            last_fired,
            fired: 0,
            removed: 0,
            added: 0,
            corrupted: 0,
            relocated: 0,
            last_fault_round: None,
            rounds_at_last_fault: 0,
        }
    }

    /// The script's plan (appended processes included).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Appends a process to a live script — the server's `fault` verb
    /// injects processes into running sessions through this.
    pub fn push(&mut self, process: FaultProcess) {
        self.plan.processes.push(process);
        self.last_fired.push(None);
    }

    /// Number of firings so far.
    pub fn fired(&self) -> usize {
        self.fired
    }

    /// Particles removed by firings so far (pruning included).
    pub fn removed(&self) -> usize {
        self.removed
    }

    /// Particles added by firings so far.
    pub fn added(&self) -> usize {
        self.added
    }

    /// Memories scrambled by firings so far.
    pub fn corrupted(&self) -> usize {
        self.corrupted
    }

    /// Particles relocated by firings so far.
    pub fn relocated(&self) -> usize {
        self.relocated
    }

    /// The phase round of the most recent firing.
    pub fn last_fault_round(&self) -> Option<u64> {
        self.last_fault_round
    }

    /// The execution's *total* round count at the most recent firing (zero
    /// if nothing fired) — the cursor recovery measurements subtract from
    /// the final round count.
    pub fn rounds_at_last_fault(&self) -> u64 {
        self.rounds_at_last_fault
    }

    /// Fires every process due at the round the execution is about to run
    /// ([`Execution::next_round`]); a no-op at phase boundaries, during
    /// closed-form phases and after completion. Returns how many processes
    /// fired.
    pub fn apply_due(&mut self, execution: &mut Execution<'_>) -> usize {
        let Some((phase_name, round)) = execution.next_round() else {
            return 0;
        };
        // Faults target the election's round-driven phase, exactly as
        // perturbations do.
        if phase_name != phase::DLE && phase_name != phase::ELECTION {
            return 0;
        }
        let due: Vec<usize> = (0..self.plan.processes.len())
            .filter(|i| {
                self.plan.processes[*i].fires_at(round) && self.last_fired[*i] != Some(round)
            })
            .collect();
        if due.is_empty() {
            return 0;
        }
        {
            let mut system = execution
                .system()
                .expect("an upcoming round implies a live system");
            for i in due.iter().copied() {
                self.last_fired[i] = Some(round);
                let process = self.plan.processes[i];
                let mut rng = StdRng::seed_from_u64(firing_seed(self.plan.seed, i as u64, round));
                self.apply_process(&process, &mut *system, &mut rng);
                self.fired += 1;
                self.last_fault_round = Some(round);
                // Firings land on the trace timeline so a drained trace
                // shows recovery rounds in causal order after their cause;
                // out-of-band, like all telemetry.
                if trace::enabled() {
                    trace::instant("fault", format!("fault:{}@r{round}", process.kind));
                }
            }
            if self.plan.reset == ResetPolicy::Reinitialize {
                system.reinitialize();
            }
        }
        // The full status snapshot is only taken on firing rounds, so the
        // per-round polling cost stays one `next_round` call.
        self.rounds_at_last_fault = execution.status().total_rounds;
        due.len()
    }

    /// Applies one firing of one process to the system.
    fn apply_process(
        &mut self,
        process: &FaultProcess,
        system: &mut dyn SystemControl,
        rng: &mut StdRng,
    ) {
        match process.kind {
            FaultKind::Removals => {
                let before = system.particle_count();
                if before <= 1 {
                    return;
                }
                let mut positions = system.particle_positions();
                positions.shuffle(rng);
                // Clamp: a fault shrinks the system, it never empties it.
                let take = (process.count as usize).min(before - 1);
                for p in positions.into_iter().take(take) {
                    system.remove_at(p);
                }
                prune_to_largest_component(system);
                self.removed += before - system.particle_count();
            }
            FaultKind::Regrow => {
                let mut candidates = frontier(&system.occupied_shape());
                candidates.shuffle(rng);
                let mut added = 0;
                for p in candidates {
                    if added == process.count as usize {
                        break;
                    }
                    if system.add_at(p) {
                        added += 1;
                    }
                }
                self.added += added;
            }
            FaultKind::Corruption => {
                let mut positions = system.particle_positions();
                positions.shuffle(rng);
                for p in positions.into_iter().take(process.count as usize) {
                    if system.corrupt_at(p, rng.next_u64()) {
                        self.corrupted += 1;
                    }
                }
            }
            FaultKind::Relocate => {
                for _ in 0..process.count {
                    let positions = system.particle_positions();
                    if positions.len() <= 1 {
                        break;
                    }
                    let victim = positions[rng.gen_range(0..positions.len())];
                    if !system.remove_at(victim) {
                        continue;
                    }
                    if !system.is_connected() {
                        // Removing this particle splits the shape: undo
                        // (the re-added particle gets a fresh memory, which
                        // is itself within the adversary's power).
                        system.add_at(victim);
                        continue;
                    }
                    let targets: Vec<Point> = frontier(&system.occupied_shape())
                        .into_iter()
                        .filter(|p| *p != victim)
                        .collect();
                    if targets.is_empty() {
                        system.add_at(victim);
                        continue;
                    }
                    let target = targets[rng.gen_range(0..targets.len())];
                    if system.add_at(target) {
                        self.relocated += 1;
                    } else {
                        system.add_at(victim);
                    }
                }
            }
        }
    }
}

/// The outcome of one fault-injected run: what the faults did and how long
/// the algorithm took to come back from the last one.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// The algorithm that ran.
    pub algorithm: String,
    /// Fault firings over the run.
    pub faults_fired: usize,
    /// Particles removed by faults (pruning included).
    pub removed: usize,
    /// Particles added by regrow faults.
    pub added: usize,
    /// Memories scrambled by corruption faults.
    pub corrupted: usize,
    /// Particles relocated by move faults.
    pub relocated: usize,
    /// Phase round of the last firing (`None` if nothing fired).
    pub last_fault_round: Option<u64>,
    /// Rounds from the last firing to completion — the recovery cost. Zero
    /// if no fault fired.
    pub recovery_rounds: u64,
    /// Total rounds of the whole run.
    pub total_rounds: u64,
    /// Whether recovery required falling back to reset-and-recover
    /// ([`measure_recovery`] sets this; a plain [`RecoveryDriver`] run
    /// reports the plan's own policy outcome with `false`).
    pub reset_needed: bool,
    /// Whether the run ended with a unique leader and no undecided
    /// particles.
    pub recovered: bool,
    /// Leaders in the final configuration.
    pub leaders: usize,
    /// Undecided particles in the final configuration.
    pub undecided: usize,
}

/// Drives one election under a [`FaultPlan`] from the caller's side — a
/// loop over [`Execution::step_round`] and [`Execution::status`], firing
/// due faults before each step — and measures recovery.
#[derive(Clone, Debug)]
pub struct RecoveryDriver {
    plan: FaultPlan,
}

impl RecoveryDriver {
    /// A driver for the given plan.
    pub fn new(plan: FaultPlan) -> RecoveryDriver {
        RecoveryDriver { plan }
    }

    /// Runs the election to completion under the plan and reports recovery.
    /// Returns the [`RecoveryReport`] together with the election's own
    /// [`RunReport`].
    ///
    /// # Errors
    ///
    /// Whatever the underlying election surfaces — notably `Stuck` when an
    /// algorithm without self-stabilisation is asked to absorb faults
    /// without a reset ([`measure_recovery`] turns that into a
    /// reset-and-recover fallback).
    pub fn run(
        &self,
        algorithm: &dyn LeaderElection,
        shape: &Shape,
        scheduler: &mut (dyn Scheduler + Send),
        opts: &RunOptions,
    ) -> Result<(RecoveryReport, RunReport), ElectionError> {
        let mut script = FaultScript::new(self.plan.clone());
        let mut execution = algorithm.start(shape, scheduler, opts)?;
        let report = loop {
            script.apply_due(&mut execution);
            if let pm_core::api::StepOutcome::Finished(report) = execution.step_round()? {
                break report;
            }
        };
        let status = execution.status();
        debug_assert!(status.finished);
        let recovery_rounds = if script.fired() > 0 {
            report
                .total_rounds
                .saturating_sub(script.rounds_at_last_fault())
        } else {
            0
        };
        let recovery = RecoveryReport {
            algorithm: report.algorithm.clone(),
            faults_fired: script.fired(),
            removed: script.removed(),
            added: script.added(),
            corrupted: script.corrupted(),
            relocated: script.relocated(),
            last_fault_round: script.last_fault_round(),
            recovery_rounds,
            total_rounds: report.total_rounds,
            reset_needed: false,
            recovered: report.leaders == 1 && report.undecided == 0,
            leaders: report.leaders,
            undecided: report.undecided,
        };
        Ok((recovery, report))
    }
}

/// Measures recovery with the reset fallback the benchmarks compare: run
/// the plan as given; if the election errors out or does not end with a
/// unique leader, rerun the identical schedule under
/// [`ResetPolicy::Reinitialize`] (a fresh scheduler from `scheduler`, so
/// both attempts see the same activation stream) and flag
/// [`RecoveryReport::reset_needed`].
///
/// # Errors
///
/// Only if even the reset-and-recover rerun fails.
pub fn measure_recovery(
    algorithm: &dyn LeaderElection,
    shape: &Shape,
    scheduler: &SchedulerSpec,
    opts: &RunOptions,
    plan: &FaultPlan,
) -> Result<RecoveryReport, ElectionError> {
    let driver = RecoveryDriver::new(plan.clone());
    match driver.run(algorithm, shape, &mut *scheduler.build(), opts) {
        Ok((recovery, _)) if recovery.recovered => Ok(recovery),
        first => {
            if plan.reset == ResetPolicy::Reinitialize {
                // The fallback *is* the plan; nothing else to try.
                return first.map(|(recovery, _)| recovery);
            }
            let retry = plan.clone().reset(ResetPolicy::Reinitialize);
            let (mut recovery, _) =
                RecoveryDriver::new(retry).run(algorithm, shape, &mut *scheduler.build(), opts)?;
            recovery.reset_needed = true;
            Ok(recovery)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_baselines::SelfStabMaxElection;
    use pm_core::api::PaperPipeline;
    use pm_grid::builder::{hexagon, line};

    fn corruption_plan() -> FaultPlan {
        FaultPlan::new(7).process(FaultProcess::once(FaultKind::Corruption, 3, 8))
    }

    #[test]
    fn one_shot_fires_exactly_once() {
        let p = FaultProcess::once(FaultKind::Removals, 5, 2);
        assert!(!p.fires_at(4));
        assert!(p.fires_at(5));
        assert!(!p.fires_at(6));
        assert_eq!(p.horizon(), 5);
    }

    #[test]
    fn periodic_fires_on_the_grid_up_to_until() {
        let p = FaultProcess::periodic(FaultKind::Regrow, 2, 3, 9, 1);
        let rounds: Vec<u64> = (0..15).filter(|r| p.fires_at(*r)).collect();
        assert_eq!(rounds, [2, 5, 8]);
        assert_eq!(p.horizon(), 9);

        // Period 1 fires every round of the window.
        let every = FaultProcess::periodic(FaultKind::Corruption, 1, 1, 3, 1);
        let rounds: Vec<u64> = (0..6).filter(|r| every.fires_at(*r)).collect();
        assert_eq!(rounds, [1, 2, 3]);
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = FaultPlan::new(42)
            .reset(ResetPolicy::Reinitialize)
            .process(FaultProcess::once(FaultKind::Removals, 4, 3))
            .process(FaultProcess::periodic(FaultKind::Relocate, 0, 2, 10, 1));
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.horizon(), Some(10));
        assert!(!back.is_empty());
        assert!(FaultPlan::new(0).is_empty());
        assert_eq!(FaultPlan::new(0).horizon(), None);
    }

    #[test]
    fn firing_seeds_are_independent_per_process_and_round() {
        let a = firing_seed(1, 0, 5);
        assert_eq!(a, firing_seed(1, 0, 5));
        assert_ne!(a, firing_seed(1, 1, 5));
        assert_ne!(a, firing_seed(1, 0, 6));
        assert_ne!(a, firing_seed(2, 0, 5));
    }

    #[test]
    fn removals_never_empty_a_tiny_system() {
        // Satellite (a) on the fault path: count far beyond n leaves at
        // least one survivor. (Round 0: a two-particle line stabilises
        // after a single round, so later faults would never fire.)
        let plan = FaultPlan::new(3).process(FaultProcess::once(FaultKind::Removals, 0, 1000));
        let (recovery, report) = RecoveryDriver::new(plan)
            .run(
                &SelfStabMaxElection,
                &line(2),
                &mut *SchedulerSpec::RoundRobin.build(),
                &RunOptions::default(),
            )
            .unwrap();
        assert_eq!(recovery.removed, 1);
        assert_eq!(report.n, 2);
        assert!(recovery.recovered);
        assert_eq!(recovery.leaders, 1);
    }

    #[test]
    fn regrow_adds_particles_and_the_election_still_stabilises() {
        let plan =
            FaultPlan::new(11).process(FaultProcess::periodic(FaultKind::Regrow, 2, 2, 6, 2));
        let (recovery, _) = RecoveryDriver::new(plan)
            .run(
                &SelfStabMaxElection,
                &hexagon(2),
                &mut *SchedulerSpec::SeededRandom(5).build(),
                &RunOptions::default(),
            )
            .unwrap();
        assert!(recovery.added > 0);
        assert!(recovery.recovered, "{recovery:?}");
        assert!(recovery.recovery_rounds > 0);
    }

    #[test]
    fn relocation_keeps_the_system_connected_and_recoverable() {
        let plan =
            FaultPlan::new(23).process(FaultProcess::periodic(FaultKind::Relocate, 1, 2, 9, 2));
        let (recovery, report) = RecoveryDriver::new(plan)
            .run(
                &SelfStabMaxElection,
                &hexagon(2),
                &mut *SchedulerSpec::SeededRandom(9).build(),
                &RunOptions::default(),
            )
            .unwrap();
        assert!(recovery.relocated > 0);
        assert!(recovery.recovered, "{recovery:?}");
        // Relocation preserves the particle count.
        assert_eq!(report.n, hexagon(2).len());
    }

    #[test]
    fn scripts_are_deterministic_across_runs() {
        let plan = FaultPlan::new(99)
            .process(FaultProcess::periodic(FaultKind::Removals, 2, 3, 11, 1))
            .process(FaultProcess::periodic(FaultKind::Corruption, 3, 3, 12, 4));
        let run = || {
            RecoveryDriver::new(plan.clone())
                .run(
                    &SelfStabMaxElection,
                    &hexagon(3),
                    &mut *SchedulerSpec::SeededRandom(17).build(),
                    &RunOptions::default(),
                )
                .unwrap()
        };
        let (first, first_report) = run();
        let (second, second_report) = run();
        assert_eq!(first, second);
        assert_eq!(first_report, second_report);
        assert!(first.faults_fired > 0);
    }

    #[test]
    fn self_stabilising_election_recovers_from_corruption_without_reset() {
        // The acceptance-criteria demonstration: a corruption fault under
        // ResetPolicy::None, absorbed without reinitialize.
        let recovery = measure_recovery(
            &SelfStabMaxElection,
            &hexagon(3),
            &SchedulerSpec::SeededRandom(13),
            &RunOptions::default(),
            &corruption_plan(),
        )
        .unwrap();
        assert!(recovery.recovered, "{recovery:?}");
        assert!(!recovery.reset_needed, "{recovery:?}");
        assert!(recovery.corrupted > 0);
        assert_eq!(recovery.leaders, 1);
        assert_eq!(recovery.undecided, 0);
    }

    #[test]
    fn reset_fallback_is_flagged_for_non_stabilising_algorithms() {
        // Corrupting DLE memories mid-run breaks the election (it has no
        // certificate to detect the damage); the measurement falls back to
        // reset-and-recover and says so.
        let recovery = measure_recovery(
            &PaperPipeline,
            &hexagon(3),
            &SchedulerSpec::SeededRandom(3),
            &RunOptions::default(),
            &corruption_plan(),
        )
        .unwrap();
        assert!(recovery.recovered, "{recovery:?}");
        assert!(recovery.reset_needed, "{recovery:?}");
        assert!(recovery.corrupted > 0);
    }

    #[test]
    fn reinitialize_plans_report_their_own_policy_outcome() {
        let plan = FaultPlan::new(5)
            .reset(ResetPolicy::Reinitialize)
            .process(FaultProcess::once(FaultKind::Removals, 3, 6));
        let recovery = measure_recovery(
            &PaperPipeline,
            &hexagon(3),
            &SchedulerSpec::SeededRandom(3),
            &RunOptions::default(),
            &plan,
        )
        .unwrap();
        assert!(recovery.recovered);
        // The plan itself asked for resets, so no fallback was needed.
        assert!(!recovery.reset_needed);
    }

    #[test]
    fn faults_scheduled_after_completion_never_fire() {
        let plan = FaultPlan::new(1).process(FaultProcess::once(FaultKind::Removals, 1_000_000, 3));
        let (recovery, _) = RecoveryDriver::new(plan)
            .run(
                &SelfStabMaxElection,
                &hexagon(2),
                &mut *SchedulerSpec::RoundRobin.build(),
                &RunOptions::default(),
            )
            .unwrap();
        assert_eq!(recovery.faults_fired, 0);
        assert_eq!(recovery.recovery_rounds, 0);
        assert_eq!(recovery.last_fault_round, None);
        assert!(recovery.recovered);
    }
}
