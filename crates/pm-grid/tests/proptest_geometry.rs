//! Property-based tests of the low-level grid geometry (coordinates,
//! rotations, rings, local boundaries), plus the differential test of the
//! dense indexed [`ShapeAnalysis`](pm_grid::ShapeAnalysis) against a naive
//! hash-set reference classification.

use pm_grid::{builder, Direction, LocalBoundary, Point, PointClass, Shape, DIRECTIONS};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashSet, VecDeque};

fn point_strategy() -> impl Strategy<Value = Point> {
    (-40i32..40, -40i32..40).prop_map(|(q, r)| Point::new(q, r))
}

/// A deterministic pseudo-random connected blob grown with a bare LCG (no
/// dependence on the shapes other crates generate).
fn lcg_blob(n: usize, seed: u64) -> Shape {
    let mut points = vec![Point::ORIGIN];
    let mut state = seed | 1;
    while points.len() < n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let base = points[(state >> 33) as usize % points.len()];
        let dir = Direction::from_index((state >> 7) as i32);
        let candidate = base.neighbor(dir);
        if !points.contains(&candidate) {
            points.push(candidate);
        }
    }
    Shape::from_points(points)
}

/// The pre-indexed reference face decomposition: flood-fill over hash sets,
/// exactly the shape of the algorithm the dense `ShapeAnalysis` replaced.
/// Returns (outer face within the expanded box, holes ordered by smallest
/// point, outer boundary, inner boundaries per hole).
type ReferenceFaces = (
    HashSet<Point>,
    Vec<BTreeSet<Point>>,
    BTreeSet<Point>,
    Vec<BTreeSet<Point>>,
);

fn reference_faces(shape: &Shape) -> ReferenceFaces {
    let Some((min, max)) = shape.bounding_box() else {
        return (HashSet::new(), Vec::new(), BTreeSet::new(), Vec::new());
    };
    let (min_q, min_r) = (min.q - 1, min.r - 1);
    let (max_q, max_r) = (max.q + 1, max.r + 1);
    let in_box = |p: Point| p.q >= min_q && p.q <= max_q && p.r >= min_r && p.r <= max_r;

    let start = Point::new(min_q, min_r);
    let mut outer_face = HashSet::new();
    outer_face.insert(start);
    let mut queue = VecDeque::from([start]);
    while let Some(p) = queue.pop_front() {
        for n in p.neighbors() {
            if in_box(n) && !shape.contains(n) && !outer_face.contains(&n) {
                outer_face.insert(n);
                queue.push_back(n);
            }
        }
    }

    let mut hole_points: BTreeSet<Point> = BTreeSet::new();
    for q in min_q..=max_q {
        for r in min_r..=max_r {
            let p = Point::new(q, r);
            if !shape.contains(p) && !outer_face.contains(&p) {
                hole_points.insert(p);
            }
        }
    }

    let mut holes: Vec<BTreeSet<Point>> = Vec::new();
    let mut remaining = hole_points;
    while let Some(start) = remaining.iter().next().copied() {
        let mut comp = BTreeSet::new();
        comp.insert(start);
        remaining.remove(&start);
        let mut queue = VecDeque::from([start]);
        while let Some(p) = queue.pop_front() {
            for n in p.neighbors() {
                if remaining.remove(&n) {
                    comp.insert(n);
                    queue.push_back(n);
                }
            }
        }
        holes.push(comp);
    }

    let mut outer_boundary = BTreeSet::new();
    let mut inner_boundaries = vec![BTreeSet::new(); holes.len()];
    for p in shape.iter() {
        for n in p.neighbors() {
            if shape.contains(n) {
                continue;
            }
            match holes.iter().position(|h| h.contains(&n)) {
                Some(idx) => {
                    inner_boundaries[idx].insert(p);
                }
                None => {
                    outer_boundary.insert(p);
                }
            }
        }
    }
    (outer_face, holes, outer_boundary, inner_boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grid distance is a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn grid_distance_is_a_metric(a in point_strategy(), b in point_strategy(), c in point_strategy()) {
        prop_assert_eq!(a.grid_distance(b), b.grid_distance(a));
        prop_assert_eq!(a.grid_distance(a), 0);
        if a != b {
            prop_assert!(a.grid_distance(b) >= 1);
        }
        prop_assert!(a.grid_distance(c) <= a.grid_distance(b) + b.grid_distance(c));
    }

    /// Moving one step in any direction changes the distance to any anchor by
    /// at most one.
    #[test]
    fn distance_is_1_lipschitz_along_edges(a in point_strategy(), b in point_strategy(), dir in 0i32..6) {
        let d = Direction::from_index(dir);
        let moved = a.neighbor(d);
        let before = a.grid_distance(b) as i64;
        let after = moved.grid_distance(b) as i64;
        prop_assert!((before - after).abs() <= 1);
    }

    /// Rotation about a centre is a bijective isometry of order six.
    #[test]
    fn rotation_is_an_isometry(a in point_strategy(), b in point_strategy(), center in point_strategy(), steps in 0i32..6) {
        let ra = a.rotate_cw_about(center, steps);
        let rb = b.rotate_cw_about(center, steps);
        prop_assert_eq!(a.grid_distance(b), ra.grid_distance(rb));
        prop_assert_eq!(center.grid_distance(a), center.grid_distance(ra));
        // Applying the remaining steps completes a full turn.
        prop_assert_eq!(ra.rotate_cw_about(center, 6 - steps), a);
    }

    /// Rings are closed cycles of adjacent points at the exact radius, and
    /// balls have the closed-form size.
    #[test]
    fn rings_and_balls_are_well_formed(center in point_strategy(), radius in 0u32..12) {
        let ring = center.ring(radius);
        let expected = if radius == 0 { 1 } else { 6 * radius as usize };
        prop_assert_eq!(ring.len(), expected);
        for (i, p) in ring.iter().enumerate() {
            prop_assert_eq!(center.grid_distance(*p), radius);
            if radius >= 1 {
                let next = ring[(i + 1) % ring.len()];
                prop_assert!(p.is_adjacent(next));
            }
        }
        let ball = center.ball(radius);
        let r = radius as usize;
        prop_assert_eq!(ball.len(), 3 * r * (r + 1) + 1);
    }

    /// Opposite directions cancel and the six offsets sum to zero.
    #[test]
    fn direction_algebra(p in point_strategy()) {
        let mut sum = Point::ORIGIN;
        for d in DIRECTIONS {
            prop_assert_eq!(p.neighbor(d).neighbor(d.opposite()), p);
            let (dq, dr) = d.offset();
            sum = sum + Point::new(dq, dr);
        }
        prop_assert_eq!(sum, Point::ORIGIN);
    }

    /// For every boundary point of a random blob, the local boundaries
    /// partition its empty incident edges, and boundary counts are in the
    /// documented range.
    #[test]
    fn local_boundaries_partition_empty_edges(n in 5usize..80, seed in any::<u64>()) {
        // Deterministic blob built without rand (seeded LCG Eden growth), so
        // this test exercises shapes other crates don't generate.
        let shape = lcg_blob(n, seed);
        for p in shape.iter() {
            let empty_edges = p.neighbors().filter(|q| !shape.contains(*q)).count();
            let lbs = LocalBoundary::of_point(&shape, p);
            let covered: usize = lbs.iter().map(|b| b.len()).sum();
            prop_assert_eq!(covered, empty_edges);
            prop_assert!(lbs.len() <= 3);
            for b in &lbs {
                prop_assert!((-1..=4).contains(&b.count()));
                for edge in b.edges() {
                    prop_assert!(!shape.contains(p.neighbor(edge)));
                }
            }
        }
    }

    /// Differential test: the dense indexed `ShapeAnalysis` agrees with the
    /// naive hash-set flood-fill reference on random blobs — hole
    /// decomposition (sets *and* ordering), boundary sets, per-point
    /// classification over the expanded box and beyond, and the outer-face
    /// sample.
    #[test]
    fn dense_analysis_matches_reference_classification(n in 3usize..90, seed in any::<u64>()) {
        let shape = lcg_blob(n, seed);
        let (ref_outer_face, ref_holes, ref_outer_boundary, ref_inner) = reference_faces(&shape);
        let analysis = shape.analyze();

        prop_assert_eq!(analysis.hole_count(), ref_holes.len());
        for (i, hole) in ref_holes.iter().enumerate() {
            prop_assert_eq!(&analysis.holes()[i], hole, "hole {} differs", i);
            prop_assert_eq!(analysis.inner_boundary(i), &ref_inner[i], "inner boundary {}", i);
        }
        prop_assert_eq!(analysis.outer_boundary(), &ref_outer_boundary);
        prop_assert_eq!(analysis.outer_face_sample(), ref_outer_face);

        // Per-point classification over the expanded bounding box plus a
        // ring beyond it (everything out there must be Outer).
        let (min, max) = shape.bounding_box().expect("non-empty");
        for q in (min.q - 2)..=(max.q + 2) {
            for r in (min.r - 2)..=(max.r + 2) {
                let p = Point::new(q, r);
                let expected = if shape.contains(p) {
                    if p.neighbors().all(|m| shape.contains(m)) {
                        PointClass::Interior
                    } else {
                        PointClass::Boundary
                    }
                } else if ref_holes.iter().any(|h| h.contains(&p)) {
                    PointClass::Hole
                } else {
                    PointClass::Outer
                };
                prop_assert_eq!(analysis.classify(p), expected, "classify({}) differs", p);
                prop_assert_eq!(analysis.contains(p), shape.contains(p));
                prop_assert_eq!(
                    analysis.is_outer_face_point(p),
                    !shape.contains(p) && expected == PointClass::Outer
                );
            }
        }
    }

    /// The parametric families have the documented structural properties for
    /// arbitrary parameters.
    #[test]
    fn parametric_builders_hold_their_contracts(radius in 1u32..8, inner in 0u32..4) {
        let hexagon = builder::hexagon(radius);
        prop_assert!(hexagon.is_simply_connected());
        prop_assert_eq!(hexagon.len(), (3 * radius * (radius + 1) + 1) as usize);
        if inner < radius {
            let annulus = builder::annulus(radius, inner);
            prop_assert!(annulus.is_connected());
            prop_assert_eq!(annulus.analyze().hole_count(), 1);
            prop_assert_eq!(annulus.area(), hexagon);
        }
        let line = builder::line(radius * 3);
        prop_assert_eq!(line.outer_boundary_len(), (radius * 3) as usize);
    }
}
