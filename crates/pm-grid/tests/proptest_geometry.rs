//! Property-based tests of the low-level grid geometry (coordinates,
//! rotations, rings, local boundaries).

use pm_grid::{builder, Direction, LocalBoundary, Point, Shape, DIRECTIONS};
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = Point> {
    (-40i32..40, -40i32..40).prop_map(|(q, r)| Point::new(q, r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grid distance is a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn grid_distance_is_a_metric(a in point_strategy(), b in point_strategy(), c in point_strategy()) {
        prop_assert_eq!(a.grid_distance(b), b.grid_distance(a));
        prop_assert_eq!(a.grid_distance(a), 0);
        if a != b {
            prop_assert!(a.grid_distance(b) >= 1);
        }
        prop_assert!(a.grid_distance(c) <= a.grid_distance(b) + b.grid_distance(c));
    }

    /// Moving one step in any direction changes the distance to any anchor by
    /// at most one.
    #[test]
    fn distance_is_1_lipschitz_along_edges(a in point_strategy(), b in point_strategy(), dir in 0i32..6) {
        let d = Direction::from_index(dir);
        let moved = a.neighbor(d);
        let before = a.grid_distance(b) as i64;
        let after = moved.grid_distance(b) as i64;
        prop_assert!((before - after).abs() <= 1);
    }

    /// Rotation about a centre is a bijective isometry of order six.
    #[test]
    fn rotation_is_an_isometry(a in point_strategy(), b in point_strategy(), center in point_strategy(), steps in 0i32..6) {
        let ra = a.rotate_cw_about(center, steps);
        let rb = b.rotate_cw_about(center, steps);
        prop_assert_eq!(a.grid_distance(b), ra.grid_distance(rb));
        prop_assert_eq!(center.grid_distance(a), center.grid_distance(ra));
        // Applying the remaining steps completes a full turn.
        prop_assert_eq!(ra.rotate_cw_about(center, 6 - steps), a);
    }

    /// Rings are closed cycles of adjacent points at the exact radius, and
    /// balls have the closed-form size.
    #[test]
    fn rings_and_balls_are_well_formed(center in point_strategy(), radius in 0u32..12) {
        let ring = center.ring(radius);
        let expected = if radius == 0 { 1 } else { 6 * radius as usize };
        prop_assert_eq!(ring.len(), expected);
        for (i, p) in ring.iter().enumerate() {
            prop_assert_eq!(center.grid_distance(*p), radius);
            if radius >= 1 {
                let next = ring[(i + 1) % ring.len()];
                prop_assert!(p.is_adjacent(next));
            }
        }
        let ball = center.ball(radius);
        let r = radius as usize;
        prop_assert_eq!(ball.len(), 3 * r * (r + 1) + 1);
    }

    /// Opposite directions cancel and the six offsets sum to zero.
    #[test]
    fn direction_algebra(p in point_strategy()) {
        let mut sum = Point::ORIGIN;
        for d in DIRECTIONS {
            prop_assert_eq!(p.neighbor(d).neighbor(d.opposite()), p);
            let (dq, dr) = d.offset();
            sum = sum + Point::new(dq, dr);
        }
        prop_assert_eq!(sum, Point::ORIGIN);
    }

    /// For every boundary point of a random blob, the local boundaries
    /// partition its empty incident edges, and boundary counts are in the
    /// documented range.
    #[test]
    fn local_boundaries_partition_empty_edges(n in 5usize..80, seed in any::<u64>()) {
        // Deterministic blob built without rand: take the first n points of a
        // seeded pseudo-random Eden growth implemented with a simple LCG, so
        // this test exercises shapes other crates don't generate.
        let mut points = vec![Point::ORIGIN];
        let mut state = seed | 1;
        while points.len() < n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let base = points[(state >> 33) as usize % points.len()];
            let dir = Direction::from_index((state >> 7) as i32);
            let candidate = base.neighbor(dir);
            if !points.contains(&candidate) {
                points.push(candidate);
            }
        }
        let shape = Shape::from_points(points);
        for p in shape.iter() {
            let empty_edges = p.neighbors().filter(|q| !shape.contains(*q)).count();
            let lbs = LocalBoundary::of_point(&shape, p);
            let covered: usize = lbs.iter().map(|b| b.len()).sum();
            prop_assert_eq!(covered, empty_edges);
            prop_assert!(lbs.len() <= 3);
            for b in &lbs {
                prop_assert!((-1..=4).contains(&b.count()));
                for edge in b.edges() {
                    prop_assert!(!shape.contains(p.neighbor(edge)));
                }
            }
        }
    }

    /// The parametric families have the documented structural properties for
    /// arbitrary parameters.
    #[test]
    fn parametric_builders_hold_their_contracts(radius in 1u32..8, inner in 0u32..4) {
        let hexagon = builder::hexagon(radius);
        prop_assert!(hexagon.is_simply_connected());
        prop_assert_eq!(hexagon.len(), (3 * radius * (radius + 1) + 1) as usize);
        if inner < radius {
            let annulus = builder::annulus(radius, inner);
            prop_assert!(annulus.is_connected());
            prop_assert_eq!(annulus.analyze().hole_count(), 1);
            prop_assert_eq!(annulus.area(), hexagon);
        }
        let line = builder::line(radius * 3);
        prop_assert_eq!(line.outer_boundary_len(), (radius * 3) as usize);
    }
}
