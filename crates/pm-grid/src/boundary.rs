//! Local boundaries and boundary counts (Section 2.1 of the paper).
//!
//! A *local boundary* of a boundary point `v` (with respect to a shape `S`)
//! is a maximal clockwise cyclic interval of `v`'s incident edges leading to
//! points not in `S`. A boundary point has between one and three local
//! boundaries. The *boundary count* of `v` with respect to a local boundary
//! `B` is `c(v, B) = |B| - 2 ∈ {-1, …, 3}` (a lone point, excluded by the
//! paper, has count 4). A point with positive count is *(strictly) convex*
//! with respect to `B`.

use crate::coords::{Direction, Point, DIRECTIONS};
use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// The boundary count `c(v, B) = |B| − 2` of a point w.r.t. one of its local
/// boundaries; ranges over `{-1, …, 3}` (and `4` for an isolated point).
pub type BoundaryCount = i32;

/// A local boundary of a boundary point: a maximal clockwise cyclic interval
/// of incident edges leading out of the shape.
///
/// ```
/// use pm_grid::{LocalBoundary, Point, Shape};
/// // A straight line: each interior point of the line has two local
/// // boundaries (one on each side), each of two edges, i.e. count 0.
/// let line = Shape::from_points((0..5).map(|i| Point::new(i, 0)));
/// let lbs = LocalBoundary::of_point(&line, Point::new(2, 0));
/// assert_eq!(lbs.len(), 2);
/// assert!(lbs.iter().all(|b| b.count() == 0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LocalBoundary {
    /// The boundary point this local boundary belongs to.
    point: Point,
    /// The first edge (direction) of the clockwise interval.
    start: Direction,
    /// The number of edges in the interval (`1..=6`).
    len: u8,
}

impl LocalBoundary {
    /// Computes all local boundaries of `point` with respect to `shape`, in
    /// clockwise order of their starting edge.
    ///
    /// Returns an empty vector if `point` is not in the shape or is an
    /// interior point.
    pub fn of_point(shape: &Shape, point: Point) -> Vec<LocalBoundary> {
        if !shape.contains(point) {
            return Vec::new();
        }
        let empty: Vec<bool> = DIRECTIONS
            .iter()
            .map(|d| !shape.contains(point.neighbor(*d)))
            .collect();
        let empty_count = empty.iter().filter(|e| **e).count();
        if empty_count == 0 {
            return Vec::new();
        }
        if empty_count == 6 {
            // Isolated point: one local boundary consisting of all six edges.
            return vec![LocalBoundary {
                point,
                start: Direction::E,
                len: 6,
            }];
        }
        // Find maximal cyclic runs of empty directions. A run starts at an
        // empty direction whose (counter-clockwise) predecessor is occupied.
        let mut out = Vec::new();
        for i in 0..6usize {
            let prev = (i + 5) % 6;
            if empty[i] && !empty[prev] {
                let mut len = 1u8;
                let mut j = (i + 1) % 6;
                while empty[j] {
                    len += 1;
                    j = (j + 1) % 6;
                }
                out.push(LocalBoundary {
                    point,
                    start: DIRECTIONS[i],
                    len,
                });
            }
        }
        out.sort_by_key(|b| b.start.index());
        out
    }

    /// The boundary point this local boundary belongs to.
    pub fn point(&self) -> Point {
        self.point
    }

    /// Number of edges in the interval.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// A local boundary always has at least one edge.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The first (counter-clockwise-most) edge of the interval.
    pub fn first_edge(&self) -> Direction {
        self.start
    }

    /// The last (clockwise-most) edge of the interval.
    pub fn last_edge(&self) -> Direction {
        self.start.rotate_cw(self.len as i32 - 1)
    }

    /// The edges of the interval in clockwise order.
    pub fn edges(&self) -> impl Iterator<Item = Direction> + '_ {
        (0..self.len as i32).map(|i| self.start.rotate_cw(i))
    }

    /// The empty points this local boundary's edges lead to, in clockwise
    /// order.
    pub fn outside_points(&self) -> impl Iterator<Item = Point> + '_ {
        let p = self.point;
        self.edges().map(move |d| p.neighbor(d))
    }

    /// Whether this local boundary contains the given incident edge.
    pub fn contains_edge(&self, dir: Direction) -> bool {
        let rel = (dir.index() as i32 - self.start.index() as i32).rem_euclid(6);
        (rel as u8) < self.len
    }

    /// The boundary count `c(v, B) = |B| − 2`.
    pub fn count(&self) -> BoundaryCount {
        self.len as BoundaryCount - 2
    }

    /// Whether the point is strictly convex with respect to this local
    /// boundary (`c(v, B) > 0`).
    pub fn is_strictly_convex(&self) -> bool {
        self.count() > 0
    }

    /// The clockwise successor point of the boundary point with respect to
    /// this local boundary: the point reached by the clockwise successor of
    /// the interval's last edge. By maximality of the interval this point is
    /// in the shape (except for an isolated point).
    pub fn cw_successor_point(&self) -> Point {
        self.point.neighbor(self.last_edge().cw())
    }

    /// The clockwise predecessor point: the point reached by the clockwise
    /// predecessor of the interval's first edge.
    pub fn cw_predecessor_point(&self) -> Point {
        self.point.neighbor(self.first_edge().ccw())
    }

    /// The *common point* shared with the clockwise successor v-node
    /// (Observation 3): the other endpoint of the interval's last edge, which
    /// is not in the shape.
    pub fn common_point_with_successor(&self) -> Point {
        self.point.neighbor(self.last_edge())
    }

    /// The common point shared with the clockwise predecessor v-node: the
    /// other endpoint of the interval's first edge.
    pub fn common_point_with_predecessor(&self) -> Point {
        self.point.neighbor(self.first_edge())
    }
}

/// Computes all local boundaries of every boundary point of the shape, in a
/// deterministic order (by point, then by starting edge).
pub fn all_local_boundaries(shape: &Shape) -> Vec<LocalBoundary> {
    shape
        .iter()
        .flat_map(|p| LocalBoundary::of_point(shape, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_point_has_no_local_boundary() {
        let s = Shape::from_points(Point::ORIGIN.ball(1));
        assert!(LocalBoundary::of_point(&s, Point::ORIGIN).is_empty());
    }

    #[test]
    fn outside_point_has_no_local_boundary() {
        let s = Shape::from_points(Point::ORIGIN.ball(1));
        assert!(LocalBoundary::of_point(&s, Point::new(5, 5)).is_empty());
    }

    #[test]
    fn isolated_point_count_is_four() {
        let s = Shape::from_points([Point::ORIGIN]);
        let lbs = LocalBoundary::of_point(&s, Point::ORIGIN);
        assert_eq!(lbs.len(), 1);
        assert_eq!(lbs[0].count(), 4);
        assert_eq!(lbs[0].len(), 6);
    }

    #[test]
    fn line_endpoint_count_is_three() {
        // The endpoint of a straight line has five empty incident edges in a
        // single run: count 3.
        let line = Shape::from_points((0..4).map(|i| Point::new(i, 0)));
        let lbs = LocalBoundary::of_point(&line, Point::new(0, 0));
        assert_eq!(lbs.len(), 1);
        assert_eq!(lbs[0].count(), 3);
        assert!(lbs[0].is_strictly_convex());
    }

    #[test]
    fn line_midpoint_has_two_local_boundaries() {
        let line = Shape::from_points((0..5).map(|i| Point::new(i, 0)));
        let lbs = LocalBoundary::of_point(&line, Point::new(2, 0));
        assert_eq!(lbs.len(), 2);
        for b in &lbs {
            assert_eq!(b.count(), 0);
            assert_eq!(b.len(), 2);
            assert!(!b.is_strictly_convex());
        }
    }

    #[test]
    fn ball_boundary_counts() {
        // On the boundary of a hexagonal ball, corner points have count 1 and
        // side points have count 0; the sum over the boundary is 6.
        let s = Shape::from_points(Point::ORIGIN.ball(3));
        let mut total = 0;
        let mut corners = 0;
        for p in Point::ORIGIN.ring(3) {
            let lbs = LocalBoundary::of_point(&s, p);
            assert_eq!(lbs.len(), 1, "ball boundary point has one local boundary");
            total += lbs[0].count();
            if lbs[0].count() == 1 {
                corners += 1;
            } else {
                assert_eq!(lbs[0].count(), 0);
            }
        }
        assert_eq!(corners, 6);
        assert_eq!(total, 6);
    }

    #[test]
    fn successor_and_common_points_are_consistent() {
        let s = Shape::from_points(Point::ORIGIN.ball(2));
        for p in Point::ORIGIN.ring(2) {
            for b in LocalBoundary::of_point(&s, p) {
                let succ = b.cw_successor_point();
                assert!(s.contains(succ), "successor point must be in the shape");
                assert!(p.is_adjacent(succ));
                let common = b.common_point_with_successor();
                assert!(!s.contains(common), "common point must be unoccupied");
                assert!(common.is_adjacent(p) && common.is_adjacent(succ));
                let pred = b.cw_predecessor_point();
                assert!(s.contains(pred));
            }
        }
    }

    #[test]
    fn contains_edge_wraps_around() {
        let s = Shape::from_points([Point::ORIGIN, Point::new(0, 1)]);
        // ORIGIN has one occupied neighbour (SE), so its single local
        // boundary has 5 edges starting at SW and wrapping around to E.
        let lbs = LocalBoundary::of_point(&s, Point::ORIGIN);
        assert_eq!(lbs.len(), 1);
        let b = lbs[0];
        assert_eq!(b.len(), 5);
        assert_eq!(b.count(), 3);
        assert!(b.contains_edge(Direction::E));
        assert!(b.contains_edge(Direction::SW));
        assert!(!b.contains_edge(Direction::SE));
        assert_eq!(b.edges().count(), 5);
    }

    #[test]
    fn all_local_boundaries_covers_every_boundary_point() {
        let mut s = Shape::from_points(Point::ORIGIN.ball(3));
        s.remove(Point::ORIGIN); // a hole
        let all = all_local_boundaries(&s);
        for p in s.iter() {
            let expected = LocalBoundary::of_point(&s, p).len();
            let got = all.iter().filter(|b| b.point() == p).count();
            assert_eq!(expected, got);
        }
        // Ring-1 points around the removed origin have one extra local
        // boundary towards the hole.
        let inner = Point::ORIGIN.ring(1);
        for p in inner {
            assert!(all.iter().filter(|b| b.point() == p).count() >= 1);
        }
    }
}
