//! Virtual nodes (v-nodes) and oriented rings on global boundaries
//! (Section 2.1 of the paper).
//!
//! Every boundary point is subdivided into one v-node per local boundary.
//! Following clockwise successors, the v-nodes of one global boundary form a
//! ring; by Observation 4 the boundary counts on that ring sum to `+6` for
//! the outer boundary and `−6` for every inner (hole) boundary. This fact is
//! the decision rule of the Outer-Boundary Detection primitive.

use crate::boundary::{BoundaryCount, LocalBoundary};
use crate::coords::Point;
use crate::shape::{BoundaryKind, Shape, ShapeAnalysis};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a v-node within a [`BoundaryRing`]: its position along the
/// ring in clockwise-successor order.
pub type VNodeId = usize;

/// A virtual node: a boundary point together with one of its local
/// boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VNode {
    /// The occupied boundary point.
    pub point: Point,
    /// The local boundary this v-node corresponds to.
    pub local_boundary: LocalBoundary,
}

impl VNode {
    /// The boundary count of this v-node, `c(v(B)) = c(v, B)`.
    pub fn count(&self) -> BoundaryCount {
        self.local_boundary.count()
    }
}

/// Orientation of a boundary ring as seen from the global embedding.
///
/// The successor-directed ring of the outer boundary is clockwise; the
/// successor-directed ring of an inner boundary is counter-clockwise. The
/// particles cannot observe this (it has no algorithmic impact, exactly as
/// noted in Section 5.1), but it is useful for tests and rendering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RingOrientation {
    /// The ring is traversed clockwise in the global embedding.
    Clockwise,
    /// The ring is traversed counter-clockwise in the global embedding.
    CounterClockwise,
}

/// The ring of v-nodes of one global boundary, in clockwise-successor order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryRing {
    kind: BoundaryKind,
    vnodes: Vec<VNode>,
}

impl BoundaryRing {
    /// Which global boundary this ring corresponds to.
    pub fn kind(&self) -> BoundaryKind {
        self.kind
    }

    /// Whether this is the outer boundary's ring.
    pub fn is_outer(&self) -> bool {
        self.kind == BoundaryKind::Outer
    }

    /// The v-nodes in clockwise-successor order.
    pub fn vnodes(&self) -> &[VNode] {
        &self.vnodes
    }

    /// Number of v-nodes on the ring.
    pub fn len(&self) -> usize {
        self.vnodes.len()
    }

    /// Rings are never empty.
    pub fn is_empty(&self) -> bool {
        self.vnodes.is_empty()
    }

    /// The boundary counts along the ring, in order.
    pub fn counts(&self) -> Vec<BoundaryCount> {
        self.vnodes.iter().map(|v| v.count()).collect()
    }

    /// The sum of the boundary counts along the ring.
    ///
    /// By Observation 4 this is `+6` for the outer boundary and `−6` for an
    /// inner boundary (and `+4 + ... ` degenerate cases never arise for the
    /// connected, multi-point shapes the paper considers; a single-point
    /// shape yields `4`).
    pub fn count_sum(&self) -> i64 {
        self.vnodes.iter().map(|v| v.count() as i64).sum()
    }

    /// The successor v-node id of `i` on the ring.
    pub fn successor(&self, i: VNodeId) -> VNodeId {
        (i + 1) % self.vnodes.len()
    }

    /// The predecessor v-node id of `i` on the ring.
    pub fn predecessor(&self, i: VNodeId) -> VNodeId {
        (i + self.vnodes.len() - 1) % self.vnodes.len()
    }

    /// The number of *distinct points* on this boundary (the paper's notion
    /// of boundary length; a point occurs once even if it contributes several
    /// v-nodes to the ring).
    pub fn point_len(&self) -> usize {
        let mut pts: Vec<Point> = self.vnodes.iter().map(|v| v.point).collect();
        pts.sort();
        pts.dedup();
        pts.len()
    }

    /// Orientation of the successor-directed traversal in the global
    /// embedding (outer boundaries are clockwise, inner ones
    /// counter-clockwise).
    pub fn orientation(&self) -> RingOrientation {
        if self.is_outer() {
            RingOrientation::Clockwise
        } else {
            RingOrientation::CounterClockwise
        }
    }
}

/// Builds all boundary rings of a shape: the outer ring plus one ring per
/// hole, each as the clockwise-successor traversal of its v-nodes.
///
/// The shape must be non-empty. For a connected shape this returns exactly
/// `1 + #holes` rings. For a disconnected shape each component contributes
/// its own rings (the outer rings of the non-first components are reported
/// with [`BoundaryKind::Outer`] as well; the leader-election algorithms only
/// ever call this on connected shapes).
///
/// ```
/// use pm_grid::{boundary_rings, Point, Shape};
/// let mut shape = Shape::from_points(Point::ORIGIN.ball(3));
/// shape.remove(Point::ORIGIN);
/// let rings = boundary_rings(&shape);
/// assert_eq!(rings.len(), 2);
/// let outer = rings.iter().find(|r| r.is_outer()).unwrap();
/// let inner = rings.iter().find(|r| !r.is_outer()).unwrap();
/// assert_eq!(outer.count_sum(), 6);
/// assert_eq!(inner.count_sum(), -6);
/// ```
pub fn boundary_rings(shape: &Shape) -> Vec<BoundaryRing> {
    boundary_rings_with_analysis(shape, &shape.analyze())
}

/// As [`boundary_rings`], but reusing an existing [`ShapeAnalysis`].
pub fn boundary_rings_with_analysis(shape: &Shape, analysis: &ShapeAnalysis) -> Vec<BoundaryRing> {
    // Gather every v-node and index them for successor lookups.
    let mut vnodes: Vec<VNode> = Vec::new();
    let mut index: HashMap<(Point, LocalBoundary), usize> = HashMap::new();
    for p in shape.iter() {
        for lb in LocalBoundary::of_point(shape, p) {
            index.insert((p, lb), vnodes.len());
            vnodes.push(VNode {
                point: p,
                local_boundary: lb,
            });
        }
    }

    // Successor of a v-node v(B): the v-node v'(B') where v' is the clockwise
    // successor point of v w.r.t. B and B' is v's local boundary containing
    // the edge towards the common (unoccupied) point.
    let successor_of = |v: &VNode| -> usize {
        if shape.len() == 1 {
            // Degenerate single-point shape: the ring is the single v-node.
            return index[&(v.point, v.local_boundary)];
        }
        let succ_point = v.local_boundary.cw_successor_point();
        let common = v.local_boundary.common_point_with_successor();
        debug_assert!(shape.contains(succ_point));
        debug_assert!(!shape.contains(common));
        let succ_lbs = LocalBoundary::of_point(shape, succ_point);
        let dir = crate::coords::Direction::between(succ_point, common)
            .expect("common point is adjacent to the successor point");
        let lb = succ_lbs
            .into_iter()
            .find(|b| b.contains_edge(dir))
            .expect("successor point has a local boundary containing the common edge");
        index[&(succ_point, lb)]
    };

    // Walk successors to decompose the v-nodes into rings.
    let mut ring_of: Vec<Option<usize>> = vec![None; vnodes.len()];
    let mut rings: Vec<Vec<usize>> = Vec::new();
    for start in 0..vnodes.len() {
        if ring_of[start].is_some() {
            continue;
        }
        let ring_id = rings.len();
        let mut ring = Vec::new();
        let mut cur = start;
        loop {
            ring_of[cur] = Some(ring_id);
            ring.push(cur);
            let next = successor_of(&vnodes[cur]);
            if next == start {
                break;
            }
            debug_assert!(
                ring_of[next].is_none(),
                "successor walk must not enter a previously closed ring"
            );
            cur = next;
        }
        rings.push(ring);
    }

    // Classify each ring by looking at the face its common points belong to.
    rings
        .into_iter()
        .map(|ids| {
            let members: Vec<VNode> = ids.iter().map(|i| vnodes[*i]).collect();
            let kind = members
                .iter()
                .flat_map(|v| v.local_boundary.outside_points())
                .find_map(|p| analysis.face_of_empty_point(p))
                .unwrap_or(BoundaryKind::Outer);
            BoundaryRing {
                kind,
                vnodes: members,
            }
        })
        .collect()
}

/// Returns the outer boundary ring of a shape (panics if the shape is empty).
///
/// # Panics
///
/// Panics if the shape is empty.
pub fn outer_boundary_ring(shape: &Shape) -> BoundaryRing {
    boundary_rings(shape)
        .into_iter()
        .find(|r| r.is_outer())
        .expect("a non-empty shape has an outer boundary")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ball_has_single_outer_ring_with_sum_six() {
        let s = Shape::from_points(Point::ORIGIN.ball(4));
        let rings = boundary_rings(&s);
        assert_eq!(rings.len(), 1);
        assert!(rings[0].is_outer());
        assert_eq!(rings[0].count_sum(), 6);
        assert_eq!(rings[0].point_len(), 24);
        assert_eq!(rings[0].orientation(), RingOrientation::Clockwise);
    }

    #[test]
    fn annulus_rings_sum_plus_and_minus_six() {
        let mut s = Shape::from_points(Point::ORIGIN.ball(4));
        for p in Point::ORIGIN.ball(1) {
            s.remove(p);
        }
        let rings = boundary_rings(&s);
        assert_eq!(rings.len(), 2);
        let outer = rings.iter().find(|r| r.is_outer()).unwrap();
        let inner = rings.iter().find(|r| !r.is_outer()).unwrap();
        assert_eq!(outer.count_sum(), 6);
        assert_eq!(inner.count_sum(), -6);
        assert_eq!(inner.orientation(), RingOrientation::CounterClockwise);
        assert_eq!(inner.kind(), BoundaryKind::Inner(0));
    }

    #[test]
    fn line_ring_visits_midpoints_twice() {
        // A straight line of k >= 3 points: the single (outer) global
        // boundary visits every interior line point twice (two v-nodes each)
        // and the endpoints once.
        let k = 6;
        let line = Shape::from_points((0..k).map(|i| Point::new(i, 0)));
        let rings = boundary_rings(&line);
        assert_eq!(rings.len(), 1);
        let ring = &rings[0];
        assert_eq!(ring.len() as i32, 2 * k - 2);
        assert_eq!(ring.point_len() as i32, k);
        assert_eq!(ring.count_sum(), 6);
    }

    #[test]
    fn single_point_ring() {
        let s = Shape::from_points([Point::ORIGIN]);
        let rings = boundary_rings(&s);
        assert_eq!(rings.len(), 1);
        assert_eq!(rings[0].len(), 1);
        assert_eq!(rings[0].count_sum(), 4);
    }

    #[test]
    fn two_point_shape_ring() {
        let s = Shape::from_points([Point::ORIGIN, Point::new(1, 0)]);
        let rings = boundary_rings(&s);
        assert_eq!(rings.len(), 1);
        assert_eq!(rings[0].len(), 2);
        assert_eq!(rings[0].count_sum(), 6);
    }

    #[test]
    fn successor_predecessor_roundtrip() {
        let s = Shape::from_points(Point::ORIGIN.ball(2));
        let ring = outer_boundary_ring(&s);
        for i in 0..ring.len() {
            assert_eq!(ring.predecessor(ring.successor(i)), i);
        }
    }

    #[test]
    fn multi_hole_shape_has_one_ring_per_hole() {
        let mut s = Shape::from_points(Point::ORIGIN.ball(4));
        s.remove(Point::new(2, 0));
        s.remove(Point::new(-2, 0));
        s.remove(Point::new(0, 2));
        let rings = boundary_rings(&s);
        assert_eq!(rings.len(), 4);
        assert_eq!(rings.iter().filter(|r| r.is_outer()).count(), 1);
        for ring in rings.iter().filter(|r| !r.is_outer()) {
            assert_eq!(ring.count_sum(), -6);
            assert_eq!(ring.len(), 6);
        }
    }
}
