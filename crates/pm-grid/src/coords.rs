//! Axial coordinates and directions on the triangular grid.
//!
//! The triangular grid (equivalently, the hexagonal lattice: every vertex has
//! six neighbours) is addressed with axial coordinates `(q, r)`. The six unit
//! directions are indexed **clockwise** by `0..=5`, which is exactly the port
//! numbering used by the amoebot model under the common-chirality assumption
//! of the paper (Section 2.2).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A point of the infinite triangular grid, in axial coordinates.
///
/// Two points are adjacent iff their difference is one of the six unit
/// vectors of [`DIRECTIONS`].
///
/// ```
/// use pm_grid::{Point, Direction};
/// let p = Point::new(2, -1);
/// assert_eq!(p.neighbor(Direction::E), Point::new(3, -1));
/// assert_eq!(p.neighbors().count(), 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Point {
    /// Axial `q` coordinate (grows towards the east).
    pub q: i32,
    /// Axial `r` coordinate (grows towards the south-east).
    pub r: i32,
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.q, self.r)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.q, self.r)
    }
}

/// The six directions of the triangular grid, indexed clockwise.
///
/// The concrete compass names are only mnemonic: particles in the amoebot
/// model do not know the global embedding, but all directions here share the
/// same (clockwise) cyclic order, which encodes the common chirality
/// assumption.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum Direction {
    /// East, axial offset `(1, 0)`.
    E = 0,
    /// South-east, axial offset `(0, 1)`.
    SE = 1,
    /// South-west, axial offset `(-1, 1)`.
    SW = 2,
    /// West, axial offset `(-1, 0)`.
    W = 3,
    /// North-west, axial offset `(0, -1)`.
    NW = 4,
    /// North-east, axial offset `(1, -1)`.
    NE = 5,
}

/// All six directions in clockwise order, starting from [`Direction::E`].
pub const DIRECTIONS: [Direction; 6] = [
    Direction::E,
    Direction::SE,
    Direction::SW,
    Direction::W,
    Direction::NW,
    Direction::NE,
];

impl Direction {
    /// Returns the direction with the given clockwise index.
    ///
    /// The index is taken modulo 6, so any `i32` is accepted; this makes
    /// "port arithmetic" (`port + 3 mod 6` and friends from the paper's
    /// pseudocode) convenient.
    ///
    /// ```
    /// use pm_grid::Direction;
    /// assert_eq!(Direction::from_index(7), Direction::SE);
    /// assert_eq!(Direction::from_index(-1), Direction::NE);
    /// ```
    pub fn from_index(i: i32) -> Direction {
        DIRECTIONS[i.rem_euclid(6) as usize]
    }

    /// The clockwise index of this direction in `0..=5`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The axial coordinate offset of this direction.
    pub fn offset(self) -> (i32, i32) {
        match self {
            Direction::E => (1, 0),
            Direction::SE => (0, 1),
            Direction::SW => (-1, 1),
            Direction::W => (-1, 0),
            Direction::NW => (0, -1),
            Direction::NE => (1, -1),
        }
    }

    /// The opposite direction (`self + 3 mod 6`).
    ///
    /// ```
    /// use pm_grid::Direction;
    /// assert_eq!(Direction::E.opposite(), Direction::W);
    /// assert_eq!(Direction::NW.opposite(), Direction::SE);
    /// ```
    pub fn opposite(self) -> Direction {
        self.rotate_cw(3)
    }

    /// The clockwise successor direction (`self + 1 mod 6`).
    pub fn cw(self) -> Direction {
        self.rotate_cw(1)
    }

    /// The counter-clockwise successor direction (`self - 1 mod 6`).
    pub fn ccw(self) -> Direction {
        self.rotate_cw(-1)
    }

    /// Rotates this direction by `steps` sixths of a full turn clockwise.
    pub fn rotate_cw(self, steps: i32) -> Direction {
        Direction::from_index(self.index() as i32 + steps)
    }

    /// The direction from `from` to `to`, if they are adjacent.
    ///
    /// ```
    /// use pm_grid::{Direction, Point};
    /// let a = Point::new(0, 0);
    /// let b = Point::new(0, 1);
    /// assert_eq!(Direction::between(a, b), Some(Direction::SE));
    /// assert_eq!(Direction::between(b, a), Some(Direction::NW));
    /// assert_eq!(Direction::between(a, Point::new(5, 5)), None);
    /// ```
    pub fn between(from: Point, to: Point) -> Option<Direction> {
        let d = (to.q - from.q, to.r - from.r);
        DIRECTIONS.iter().copied().find(|dir| dir.offset() == d)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { q: 0, r: 0 };

    /// Creates a point from axial coordinates.
    pub fn new(q: i32, r: i32) -> Point {
        Point { q, r }
    }

    /// The third (redundant) cube coordinate `s = -q - r`.
    ///
    /// Cube coordinates satisfy `q + r + s = 0` and make distance and
    /// rotation formulas symmetric.
    pub fn s(self) -> i32 {
        -self.q - self.r
    }

    /// The neighbouring point in the given direction.
    pub fn neighbor(self, dir: Direction) -> Point {
        let (dq, dr) = dir.offset();
        Point::new(self.q + dq, self.r + dr)
    }

    /// Iterator over the six neighbouring points, in clockwise order starting
    /// from [`Direction::E`].
    pub fn neighbors(self) -> impl Iterator<Item = Point> {
        DIRECTIONS.into_iter().map(move |d| self.neighbor(d))
    }

    /// Whether `self` and `other` are adjacent on the grid.
    pub fn is_adjacent(self, other: Point) -> bool {
        self != other && self.grid_distance(other) == 1
    }

    /// The grid distance (shortest-path length on the full triangular grid).
    ///
    /// ```
    /// use pm_grid::Point;
    /// assert_eq!(Point::new(0, 0).grid_distance(Point::new(3, -1)), 3);
    /// assert_eq!(Point::new(2, 2).grid_distance(Point::new(2, 2)), 0);
    /// ```
    pub fn grid_distance(self, other: Point) -> u32 {
        let dq = self.q - other.q;
        let dr = self.r - other.r;
        let ds = self.s() - other.s();
        ((dq.abs() + dr.abs() + ds.abs()) / 2) as u32
    }

    /// Rotates this point by `steps` sixths of a full turn clockwise around
    /// the origin.
    ///
    /// Rotation by one step clockwise maps cube `(x, y, z)` to `(-z, -x, -y)`
    /// in our orientation convention; six steps are the identity.
    ///
    /// ```
    /// use pm_grid::{Direction, Point};
    /// let p = Point::ORIGIN.neighbor(Direction::E);
    /// assert_eq!(p.rotate_cw_about_origin(1), Point::ORIGIN.neighbor(Direction::SE));
    /// assert_eq!(p.rotate_cw_about_origin(6), p);
    /// ```
    pub fn rotate_cw_about_origin(self, steps: i32) -> Point {
        let steps = steps.rem_euclid(6);
        let (mut x, mut y, mut z) = (self.q, self.s(), self.r);
        for _ in 0..steps {
            // One clockwise rotation in cube coordinates (x, y, z) -> (-z, -x, -y)
            // with our axis naming; verified against Direction indices in tests.
            let (nx, ny, nz) = (-z, -x, -y);
            x = nx;
            y = ny;
            z = nz;
        }
        Point::new(x, z)
    }

    /// Rotates this point by `steps` sixths of a full turn clockwise around
    /// `center`.
    pub fn rotate_cw_about(self, center: Point, steps: i32) -> Point {
        (self - center).rotate_cw_about_origin(steps) + center
    }

    /// All points at exactly grid distance `radius` from `self`, in clockwise
    /// order starting from the point `radius` steps east of `self`.
    ///
    /// The ring of radius `r ≥ 1` has exactly `6 r` points; the ring of
    /// radius 0 is the single point itself.
    ///
    /// ```
    /// use pm_grid::Point;
    /// let c = Point::new(1, 1);
    /// assert_eq!(c.ring(0), vec![c]);
    /// assert_eq!(c.ring(2).len(), 12);
    /// assert!(c.ring(3).iter().all(|p| c.grid_distance(*p) == 3));
    /// ```
    pub fn ring(self, radius: u32) -> Vec<Point> {
        if radius == 0 {
            return vec![self];
        }
        let mut out = Vec::with_capacity(6 * radius as usize);
        // Start at the point `radius` steps to the east and walk clockwise:
        // each side of the hexagonal ring follows one direction for `radius`
        // steps. Starting eastwards, the sides successively head SE+1 turns.
        let mut cur = self;
        for _ in 0..radius {
            cur = cur.neighbor(Direction::E);
        }
        // Walking clockwise around the ring: the first side heads SW... We
        // derive side directions by rotating the spoke: the side direction at
        // a corner reached via spoke direction `d` is `d.rotate_cw(2)`.
        let mut side_dir = Direction::E.rotate_cw(2);
        for _side in 0..6 {
            for _ in 0..radius {
                out.push(cur);
                cur = cur.neighbor(side_dir);
            }
            side_dir = side_dir.rotate_cw(1);
        }
        debug_assert_eq!(cur, out[0]);
        out
    }

    /// All points at grid distance at most `radius` from `self` (a "filled
    /// hexagon"), in deterministic order.
    ///
    /// The ball of radius `r` has `3 r (r + 1) + 1` points.
    pub fn ball(self, radius: u32) -> Vec<Point> {
        let mut out = Vec::new();
        for d in 0..=radius {
            out.extend(self.ring(d));
        }
        out
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.q + rhs.q, self.r + rhs.r)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.q - rhs.q, self.r - rhs.r)
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.q, -self.r)
    }
}

impl From<(i32, i32)> for Point {
    fn from((q, r): (i32, i32)) -> Point {
        Point::new(q, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn directions_are_clockwise_consistent() {
        // Neighbouring directions in the clockwise order must themselves be
        // adjacent points (the triangular grid's defining property: the two
        // endpoints of consecutive incident edges are adjacent).
        for d in DIRECTIONS {
            let a = Point::ORIGIN.neighbor(d);
            let b = Point::ORIGIN.neighbor(d.cw());
            assert!(a.is_adjacent(b), "{d:?} and {:?} not adjacent", d.cw());
        }
    }

    #[test]
    fn direction_round_trips() {
        for d in DIRECTIONS {
            assert_eq!(Direction::from_index(d.index() as i32), d);
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.cw().ccw(), d);
            assert_eq!(d.rotate_cw(6), d);
            let n = Point::ORIGIN.neighbor(d);
            assert_eq!(Direction::between(Point::ORIGIN, n), Some(d));
            assert_eq!(Direction::between(n, Point::ORIGIN), Some(d.opposite()));
        }
    }

    #[test]
    fn opposite_offsets_cancel() {
        for d in DIRECTIONS {
            let (dq, dr) = d.offset();
            let (oq, or) = d.opposite().offset();
            assert_eq!((dq + oq, dr + or), (0, 0));
        }
    }

    #[test]
    fn grid_distance_matches_bfs_on_small_ball() {
        // Compare the closed-form distance against BFS distances on a ball.
        use std::collections::VecDeque;
        let origin = Point::ORIGIN;
        let mut dist = std::collections::HashMap::new();
        dist.insert(origin, 0u32);
        let mut queue = VecDeque::from([origin]);
        while let Some(p) = queue.pop_front() {
            let d = dist[&p];
            if d >= 5 {
                continue;
            }
            for n in p.neighbors() {
                dist.entry(n).or_insert_with(|| {
                    queue.push_back(n);
                    d + 1
                });
            }
        }
        for (p, d) in dist {
            assert_eq!(origin.grid_distance(p), d, "distance mismatch at {p:?}");
        }
    }

    #[test]
    fn rotation_about_origin_permutes_directions() {
        for d in DIRECTIONS {
            let p = Point::ORIGIN.neighbor(d);
            let rotated = p.rotate_cw_about_origin(1);
            assert_eq!(rotated, Point::ORIGIN.neighbor(d.cw()), "rotating {d:?}");
        }
    }

    #[test]
    fn rotation_about_center_preserves_distance() {
        let center = Point::new(3, -2);
        let p = Point::new(7, 1);
        for steps in 0..6 {
            let r = p.rotate_cw_about(center, steps);
            assert_eq!(center.grid_distance(r), center.grid_distance(p));
        }
        assert_eq!(p.rotate_cw_about(center, 6), p);
    }

    #[test]
    fn ring_has_expected_size_and_distance() {
        let c = Point::new(-2, 5);
        for radius in 0u32..6 {
            let ring = c.ring(radius);
            let expected = if radius == 0 { 1 } else { 6 * radius as usize };
            assert_eq!(ring.len(), expected);
            let unique: HashSet<_> = ring.iter().copied().collect();
            assert_eq!(unique.len(), ring.len(), "ring points must be distinct");
            for p in &ring {
                assert_eq!(c.grid_distance(*p), radius);
            }
            // Consecutive ring points (radius >= 1) are adjacent, and the ring
            // is closed.
            if radius >= 1 {
                for i in 0..ring.len() {
                    let a = ring[i];
                    let b = ring[(i + 1) % ring.len()];
                    assert!(a.is_adjacent(b), "ring not contiguous at index {i}");
                }
            }
        }
    }

    #[test]
    fn ball_size_formula() {
        for radius in 0u32..6 {
            let ball = Point::ORIGIN.ball(radius);
            let r = radius as usize;
            assert_eq!(ball.len(), 3 * r * (r + 1) + 1);
            let unique: HashSet<_> = ball.iter().copied().collect();
            assert_eq!(unique.len(), ball.len());
        }
    }

    #[test]
    fn point_arithmetic() {
        let a = Point::new(2, -3);
        let b = Point::new(-1, 4);
        assert_eq!(a + b, Point::new(1, 1));
        assert_eq!(a - b, Point::new(3, -7));
        assert_eq!(-a, Point::new(-2, 3));
        assert_eq!(Point::from((5, 6)), Point::new(5, 6));
        assert_eq!(format!("{}", a), "(2, -3)");
    }
}
