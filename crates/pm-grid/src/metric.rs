//! Distances, eccentricities, diameters and level sets (Section 2.1 and the
//! level-set machinery of Section 4.2.2).
//!
//! For a shape `S` and a superset `S* ⊇ S`, the distance between two points
//! of `S` *with respect to* `S*` is the length of the shortest path inside
//! `S*`. The paper uses three instances: `dist_S` (within the shape itself),
//! `dist_{S_A}` (within the area, i.e. shape plus holes) and `dist_G` (on the
//! whole grid), giving the three diameters `D`, `D_A` and `D_G`.

use crate::coords::Point;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Single-source shortest-path distances restricted to a point set.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DistanceMap {
    source: Point,
    dist: HashMap<Point, u32>,
}

impl DistanceMap {
    /// Breadth-first distances from `source` within `within` (the source must
    /// belong to `within`; otherwise the map contains only unreachable
    /// points).
    pub fn within_shape(within: &Shape, source: Point) -> DistanceMap {
        let mut dist = HashMap::new();
        if within.contains(source) {
            dist.insert(source, 0);
            let mut queue = VecDeque::from([source]);
            while let Some(p) = queue.pop_front() {
                let d = dist[&p];
                for n in within.neighbors_in(p) {
                    if let std::collections::hash_map::Entry::Vacant(slot) = dist.entry(n) {
                        slot.insert(d + 1);
                        queue.push_back(n);
                    }
                }
            }
        }
        DistanceMap { source, dist }
    }

    /// The source point of this map.
    pub fn source(&self) -> Point {
        self.source
    }

    /// The distance to `p`, if reachable.
    pub fn get(&self, p: Point) -> Option<u32> {
        self.dist.get(&p).copied()
    }

    /// Whether `p` is reachable from the source within the restriction set.
    pub fn reaches(&self, p: Point) -> bool {
        self.dist.contains_key(&p)
    }

    /// The greatest distance to any point of `targets` (the eccentricity of
    /// the source restricted to `targets`), or `None` if some target is
    /// unreachable or `targets` is empty.
    pub fn eccentricity_over<I: IntoIterator<Item = Point>>(&self, targets: I) -> Option<u32> {
        let mut max = None;
        for t in targets {
            let d = self.get(t)?;
            max = Some(max.map_or(d, |m: u32| m.max(d)));
        }
        max
    }

    /// Iterates over `(point, distance)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Point, u32)> + '_ {
        self.dist.iter().map(|(p, d)| (*p, *d))
    }

    /// Number of reachable points.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// Whether no point is reachable (the source was outside the set).
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }
}

/// The metric toolkit of a shape: distances and diameters with respect to the
/// shape, its area, and the full grid.
///
/// ```
/// use pm_grid::{Metric, Point, Shape};
/// // An annulus: the shape-distance between opposite points must go around
/// // the hole, the area distance may cut across it.
/// let mut s = Shape::from_points(Point::ORIGIN.ball(3));
/// for p in Point::ORIGIN.ball(1) { s.remove(p); }
/// let m = Metric::new(&s);
/// assert!(m.diameter() >= m.area_diameter());   // Observation 1 (1)
/// assert!(m.area_diameter().unwrap() >= m.grid_diameter());
/// ```
#[derive(Clone, Debug)]
pub struct Metric {
    shape: Shape,
    area: Shape,
}

impl Metric {
    /// Builds the metric toolkit for `shape`.
    pub fn new(shape: &Shape) -> Metric {
        Metric {
            shape: shape.clone(),
            area: shape.area(),
        }
    }

    /// The underlying shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The area of the shape (shape plus hole points).
    pub fn area(&self) -> &Shape {
        &self.area
    }

    /// Distance between two shape points within the shape (`dist_S`).
    pub fn distance_in_shape(&self, a: Point, b: Point) -> Option<u32> {
        DistanceMap::within_shape(&self.shape, a).get(b)
    }

    /// Distance between two shape points within the area (`dist_{S_A}`).
    pub fn distance_in_area(&self, a: Point, b: Point) -> Option<u32> {
        DistanceMap::within_shape(&self.area, a).get(b)
    }

    /// Grid distance (`dist_G`).
    pub fn grid_distance(&self, a: Point, b: Point) -> u32 {
        a.grid_distance(b)
    }

    /// Eccentricity of `v` within the shape: greatest `dist_S(v, ·)` over the
    /// shape's points.
    pub fn eccentricity_in_shape(&self, v: Point) -> Option<u32> {
        DistanceMap::within_shape(&self.shape, v).eccentricity_over(self.shape.iter())
    }

    /// Eccentricity of `v` within the area, over the shape's points.
    pub fn eccentricity_in_area(&self, v: Point) -> Option<u32> {
        DistanceMap::within_shape(&self.area, v).eccentricity_over(self.shape.iter())
    }

    /// Grid eccentricity `ε_G(v)`: greatest grid distance from `v` to any
    /// shape point.
    pub fn grid_eccentricity(&self, v: Point) -> u32 {
        self.shape
            .iter()
            .map(|p| v.grid_distance(p))
            .max()
            .unwrap_or(0)
    }

    /// The diameter `D` of the shape (with respect to itself). `None` for a
    /// disconnected or empty shape.
    pub fn diameter(&self) -> Option<u32> {
        self.diameter_wrt(&self.shape)
    }

    /// The diameter `D_A` of the shape with respect to its area.
    pub fn area_diameter(&self) -> Option<u32> {
        self.diameter_wrt(&self.area)
    }

    /// The diameter `D_G` of the shape with respect to the full grid.
    pub fn grid_diameter(&self) -> u32 {
        let pts: Vec<Point> = self.shape.iter().collect();
        let mut max = 0;
        for (i, a) in pts.iter().enumerate() {
            for b in &pts[i + 1..] {
                max = max.max(a.grid_distance(*b));
            }
        }
        max
    }

    /// Exact diameter of the shape's points with respect to an arbitrary
    /// superset `within` (runs one BFS per shape point).
    pub fn diameter_wrt(&self, within: &Shape) -> Option<u32> {
        if self.shape.is_empty() {
            return None;
        }
        let mut max = 0;
        for p in self.shape.iter() {
            let d = DistanceMap::within_shape(within, p).eccentricity_over(self.shape.iter())?;
            max = max.max(d);
        }
        Some(max)
    }

    /// A cheap lower bound on the diameter with respect to `within`, via a
    /// double BFS sweep (exact on many "tree-like" shapes, never larger than
    /// the true diameter). Useful for very large benchmark shapes.
    pub fn diameter_lower_bound_wrt(&self, within: &Shape) -> Option<u32> {
        let start = self.shape.first_point()?;
        let first = DistanceMap::within_shape(within, start);
        let far = self
            .shape
            .iter()
            .filter(|p| first.reaches(*p))
            .max_by_key(|p| first.get(*p).unwrap_or(0))?;
        let second = DistanceMap::within_shape(within, far);
        second.eccentricity_over(self.shape.iter().filter(|p| second.reaches(*p)))
    }

    /// The level sets of `center` within `within`, over the shape's points:
    /// `levels[i]` contains the shape points at distance exactly `i` from
    /// `center` (with respect to `within`). Unreachable points are omitted.
    pub fn level_sets(&self, within: &Shape, center: Point) -> Vec<Vec<Point>> {
        let dmap = DistanceMap::within_shape(within, center);
        let mut levels: Vec<Vec<Point>> = Vec::new();
        for p in self.shape.iter() {
            if let Some(d) = dmap.get(p) {
                if levels.len() <= d as usize {
                    levels.resize(d as usize + 1, Vec::new());
                }
                levels[d as usize].push(p);
            }
        }
        levels
    }

    /// Checks the inequalities of Observation 1 for this shape; returns an
    /// error message describing the first violated inequality, if any.
    ///
    /// (1) `D >= D_A`; (2) for simply-connected shapes, `n = O(D²)`
    /// instantiated as `n <= 3 D (D + 1) + 1` (the hexagonal-ball bound);
    /// (3) for simply-connected shapes, `L_out >= D`.
    pub fn check_observation_1(&self) -> Result<(), String> {
        let (Some(d), Some(da)) = (self.diameter(), self.area_diameter()) else {
            return Ok(()); // Disconnected / empty: nothing to check.
        };
        if d < da {
            return Err(format!(
                "diameter D={d} smaller than area diameter D_A={da}"
            ));
        }
        if self.shape.is_simply_connected() {
            let n = self.shape.len() as u64;
            let d64 = d as u64;
            if n > 3 * d64 * (d64 + 1) + 1 {
                return Err(format!("n={n} exceeds hexagonal ball bound for D={d}"));
            }
            let lout = self.shape.outer_boundary_len() as u32;
            if lout < d {
                return Err(format!("L_out={lout} smaller than diameter D={d}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn annulus(outer: u32, inner: u32) -> Shape {
        let mut s = Shape::from_points(Point::ORIGIN.ball(outer));
        for p in Point::ORIGIN.ball(inner) {
            s.remove(p);
        }
        s
    }

    #[test]
    fn distances_on_a_line() {
        let line = Shape::from_points((0..8).map(|i| Point::new(i, 0)));
        let m = Metric::new(&line);
        assert_eq!(
            m.distance_in_shape(Point::new(0, 0), Point::new(7, 0)),
            Some(7)
        );
        assert_eq!(m.diameter(), Some(7));
        assert_eq!(m.area_diameter(), Some(7));
        assert_eq!(m.grid_diameter(), 7);
        assert_eq!(m.grid_eccentricity(Point::new(0, 0)), 7);
        assert_eq!(m.eccentricity_in_shape(Point::new(3, 0)), Some(4));
    }

    #[test]
    fn annulus_distances_differ_by_restriction() {
        let s = annulus(3, 1);
        let m = Metric::new(&s);
        let a = Point::new(2, 0);
        let b = Point::new(-2, 0);
        // Inside the shape the path must go around the hole.
        let in_shape = m.distance_in_shape(a, b).unwrap();
        // Inside the area it can cut straight across.
        let in_area = m.distance_in_area(a, b).unwrap();
        assert_eq!(in_area, 4);
        assert!(in_shape > in_area);
        assert_eq!(m.grid_distance(a, b), 4);
        // Observation 1 (1).
        assert!(m.diameter().unwrap() >= m.area_diameter().unwrap());
    }

    #[test]
    fn observation_1_holds_on_sample_shapes() {
        let shapes = vec![
            Shape::from_points(Point::ORIGIN.ball(4)),
            Shape::from_points((0..12).map(|i| Point::new(i, 0))),
            annulus(4, 2),
            annulus(5, 1),
        ];
        for s in shapes {
            let m = Metric::new(&s);
            m.check_observation_1().expect("Observation 1 must hold");
        }
    }

    #[test]
    fn level_sets_partition_reachable_points() {
        let s = annulus(3, 1);
        let m = Metric::new(&s);
        let area = m.area().clone();
        let center = Point::new(3, 0);
        let levels = m.level_sets(&area, center);
        let total: usize = levels.iter().map(|l| l.len()).sum();
        assert_eq!(total, s.len());
        assert_eq!(levels[0], vec![center]);
        for (d, level) in levels.iter().enumerate() {
            for p in level {
                assert_eq!(m.distance_in_area(center, *p), Some(d as u32));
            }
        }
    }

    #[test]
    fn diameter_lower_bound_is_a_lower_bound() {
        for s in [annulus(4, 2), Shape::from_points(Point::ORIGIN.ball(3))] {
            let m = Metric::new(&s);
            let exact = m.diameter().unwrap();
            let lb = m.diameter_lower_bound_wrt(m.shape()).unwrap();
            assert!(lb <= exact);
            assert!(lb * 2 >= exact, "double BFS is a 2-approximation");
        }
    }

    #[test]
    fn unreachable_points_are_reported() {
        let mut s = Shape::from_points(Point::ORIGIN.ball(1));
        s.insert(Point::new(20, 20));
        let m = Metric::new(&s);
        assert_eq!(m.distance_in_shape(Point::ORIGIN, Point::new(20, 20)), None);
        assert_eq!(m.diameter(), None);
        let dm = DistanceMap::within_shape(&s, Point::ORIGIN);
        assert!(!dm.reaches(Point::new(20, 20)));
        assert!(dm.reaches(Point::new(1, 0)));
        assert_eq!(dm.source(), Point::ORIGIN);
        assert_eq!(dm.len(), 7);
    }

    #[test]
    fn distance_map_outside_source_is_empty() {
        let s = Shape::from_points(Point::ORIGIN.ball(1));
        let dm = DistanceMap::within_shape(&s, Point::new(9, 9));
        assert!(dm.is_empty());
        assert_eq!(dm.eccentricity_over(s.iter()), None);
    }
}
