//! Convenience constructors for shapes: ASCII art parsing/rendering and
//! simple parametric families.
//!
//! Random and larger workload families live in `pm-amoebot::generators`; this
//! module only contains the deterministic, dependency-free constructors that
//! the geometry tests and the documentation use.

use crate::coords::Point;
use crate::shape::Shape;

/// Parses a shape from ASCII art.
///
/// Every line is a row of the triangular grid (row index is the axial `r`
/// coordinate); the `i`-th non-space character of a row sits at axial
/// `q = i - r_offset` where column positions are taken verbatim (column index
/// is the axial `q` coordinate). Occupied cells are marked `#`, `X`, `x`, or
/// `*`; every other character is empty. Because axial rows are sheared, a
/// row's indentation simply selects different `q` values; this keeps parsing
/// deterministic and round-trippable with [`to_ascii`].
///
/// ```
/// use pm_grid::builder::parse_ascii;
/// let shape = parse_ascii("###\n##\n#");
/// assert_eq!(shape.len(), 6);
/// assert!(shape.is_connected());
/// ```
pub fn parse_ascii(art: &str) -> Shape {
    let mut points = Vec::new();
    for (r, line) in art.lines().enumerate() {
        for (q, ch) in line.chars().enumerate() {
            if matches!(ch, '#' | 'X' | 'x' | '*') {
                points.push(Point::new(q as i32, r as i32));
            }
        }
    }
    Shape::from_points(points)
}

/// Renders a shape as ASCII art (inverse of [`parse_ascii`] up to
/// translation): occupied cells are `#`, hole cells are `o`, other cells are
/// `.`. Rows are axial `r`, columns axial `q`.
pub fn to_ascii(shape: &Shape) -> String {
    let Some((min, max)) = shape.bounding_box() else {
        return String::new();
    };
    let analysis = shape.analyze();
    let mut out = String::new();
    for r in min.r..=max.r {
        for q in min.q..=max.q {
            let p = Point::new(q, r);
            let ch = if shape.contains(p) {
                '#'
            } else if analysis.is_hole_point(p) {
                'o'
            } else {
                '.'
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// A straight line of `n` points heading east from the origin.
pub fn line(n: u32) -> Shape {
    Shape::from_points((0..n as i32).map(|i| Point::new(i, 0)))
}

/// A filled hexagonal ball of the given radius around the origin
/// (`3r(r+1)+1` points, diameter `2r`).
pub fn hexagon(radius: u32) -> Shape {
    Shape::from_points(Point::ORIGIN.ball(radius))
}

/// A filled parallelogram (rhombus) with the given side lengths.
pub fn parallelogram(width: u32, height: u32) -> Shape {
    let mut pts = Vec::new();
    for q in 0..width as i32 {
        for r in 0..height as i32 {
            pts.push(Point::new(q, r));
        }
    }
    Shape::from_points(pts)
}

/// An annulus: the ball of radius `outer` minus the ball of radius `inner`
/// (requires `inner < outer`); it has exactly one hole when `inner >= 0`.
///
/// # Panics
///
/// Panics if `inner >= outer`.
pub fn annulus(outer: u32, inner: u32) -> Shape {
    assert!(inner < outer, "annulus requires inner < outer");
    let mut s = hexagon(outer);
    for p in Point::ORIGIN.ball(inner) {
        s.remove(p);
    }
    s
}

/// A "Swiss cheese" hexagon: the ball of radius `radius` with a regular
/// pattern of single-point holes punched every `spacing` cells (holes are
/// kept off the outer boundary so the shape stays connected).
pub fn swiss_cheese(radius: u32, spacing: u32) -> Shape {
    let spacing = spacing.max(2) as i32;
    let mut s = hexagon(radius);
    if radius < 2 {
        return s;
    }
    for p in Point::ORIGIN.ball(radius - 1) {
        if Point::ORIGIN.grid_distance(p) >= radius {
            continue;
        }
        if p.q.rem_euclid(spacing) == 0 && p.r.rem_euclid(spacing) == 0 && p != Point::ORIGIN {
            // Only punch the hole if all its neighbours stay occupied, so
            // holes never merge with each other or with the outside.
            if p.neighbors()
                .all(|n| s.contains(n) && n.neighbors().filter(|m| !s.contains(*m)).count() == 0)
            {
                s.remove(p);
            }
        }
    }
    s
}

/// A comb: a spine of `teeth` points with a tooth of length `tooth_len`
/// hanging from every other spine point. Combs have large diameter relative
/// to their point count and exercise the erosion worst cases.
pub fn comb(teeth: u32, tooth_len: u32) -> Shape {
    let mut pts = Vec::new();
    for i in 0..(2 * teeth.max(1)) as i32 {
        pts.push(Point::new(i, 0));
        if i % 2 == 0 {
            for j in 1..=tooth_len as i32 {
                pts.push(Point::new(i, j));
            }
        }
    }
    Shape::from_points(pts)
}

/// A connected "dumbbell": two hexagonal balls of the given radius joined by
/// a thin corridor of the given length. Its diameter is much larger than the
/// diameter suggested by its point count, stressing diameter-sensitive
/// algorithms.
pub fn dumbbell(radius: u32, corridor: u32) -> Shape {
    let left = hexagon(radius);
    let offset = Point::new((2 * radius + corridor + 1) as i32, 0);
    let mut shape = left;
    for p in Point::ORIGIN.ball(radius) {
        shape.insert(p + offset);
    }
    for i in 0..=(2 * radius + corridor) as i32 {
        shape.insert(Point::new(i, 0));
    }
    shape
}

/// A hexagonal spiral of `n` points: the ball-filling order `origin, ring 1,
/// ring 2, …` truncated to `n` points. Always connected and simply-connected.
pub fn spiral(n: u32) -> Shape {
    let mut pts = Vec::new();
    let mut radius = 0;
    while pts.len() < n as usize {
        pts.extend(Point::ORIGIN.ring(radius));
        radius += 1;
    }
    pts.truncate(n as usize);
    Shape::from_points(pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_round_trip() {
        let s = annulus(2, 0);
        let art = to_ascii(&s);
        assert!(art.contains('#'));
        assert!(art.contains('o'), "hole should render as 'o':\n{art}");
        let reparsed = parse_ascii(&art);
        // Parsing loses the translation but must preserve size and hole count.
        assert_eq!(reparsed.len(), s.len());
        assert_eq!(reparsed.analyze().hole_count(), s.analyze().hole_count());
    }

    #[test]
    fn parse_ascii_shapes() {
        let s = parse_ascii("###\n###\n###");
        assert_eq!(s.len(), 9);
        assert!(s.is_connected());
        let with_hole = parse_ascii("####\n#.##\n####\n####");
        assert_eq!(with_hole.analyze().hole_count(), 1);
    }

    #[test]
    fn parametric_families_basic_properties() {
        assert_eq!(line(5).len(), 5);
        assert!(line(5).is_connected());

        let hexa = hexagon(3);
        assert_eq!(hexa.len(), 37);
        assert!(hexa.is_simply_connected());

        let para = parallelogram(4, 3);
        assert_eq!(para.len(), 12);
        assert!(para.is_connected());
        assert!(para.is_simply_connected());

        let ann = annulus(4, 1);
        assert!(ann.is_connected());
        assert_eq!(ann.analyze().hole_count(), 1);

        let comb_shape = comb(4, 3);
        assert!(comb_shape.is_connected());
        assert!(comb_shape.is_simply_connected());

        let spi = spiral(23);
        assert_eq!(spi.len(), 23);
        assert!(spi.is_connected());
        assert!(spi.is_simply_connected());
    }

    #[test]
    fn swiss_cheese_has_holes_and_stays_connected() {
        let s = swiss_cheese(6, 3);
        assert!(s.is_connected());
        assert!(s.analyze().hole_count() >= 1, "expected at least one hole");
        // Holes must be single points by construction.
        for hole in s.analyze().holes() {
            assert_eq!(hole.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "annulus requires inner < outer")]
    fn annulus_validates_arguments() {
        let _ = annulus(2, 3);
    }

    #[test]
    fn dumbbell_is_connected_with_large_diameter() {
        let s = dumbbell(3, 10);
        assert!(s.is_connected());
        assert!(s.is_simply_connected());
        let metric = crate::Metric::new(&s);
        let d = metric.grid_diameter();
        assert!(d as usize >= 20, "diameter {d} should exceed the corridor");
    }
}
