//! Seeded random shape families.
//!
//! Every generator is deterministic given its parameters and seed, so random
//! workloads are exactly reproducible across runs, machines and thread
//! counts. The deterministic parametric families live in [`crate::builder`];
//! `pm-scenarios` re-exports both behind its generator registry, which is the
//! single import surface for workload shapes.

use crate::builder::hexagon;
use crate::coords::Point;
use crate::shape::Shape;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A random connected "blob" of exactly `n` points, grown by repeatedly
/// attaching a uniformly random empty neighbour of the current shape
/// (Eden-model growth). May contain holes.
///
/// Deterministic given `(n, seed)`.
pub fn random_blob(n: usize, seed: u64) -> Shape {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shape = Shape::from_points([Point::ORIGIN]);
    let mut frontier: Vec<Point> = Point::ORIGIN.neighbors().collect();
    while shape.len() < n {
        let idx = rng.gen_range(0..frontier.len());
        let p = frontier.swap_remove(idx);
        if shape.contains(p) {
            continue;
        }
        shape.insert(p);
        frontier.extend(p.neighbors().filter(|q| !shape.contains(*q)));
    }
    shape
}

/// A random connected, **simply-connected** blob of at least `n` points: a
/// [`random_blob`] whose holes are filled in afterwards (so the point count
/// may slightly exceed `n`).
pub fn random_simply_connected_blob(n: usize, seed: u64) -> Shape {
    let blob = random_blob(n, seed);
    let filled = blob.area();
    debug_assert!(filled.is_simply_connected());
    filled
}

/// A hexagonal ball of the given radius with approximately
/// `hole_fraction · n` interior points removed as single-point holes.
///
/// Holes are only punched at points whose entire 2-hop neighbourhood is
/// occupied and hole-free, so every hole is a single point, holes never merge
/// with each other or with the outer face, and the shape stays connected.
/// Deterministic given `(radius, hole_fraction, seed)`.
pub fn random_holey_hexagon(radius: u32, hole_fraction: f64, seed: u64) -> Shape {
    let mut shape = hexagon(radius);
    if radius < 2 {
        return shape;
    }
    let budget = ((shape.len() as f64) * hole_fraction.clamp(0.0, 0.4)) as usize;
    punch_holes(&mut shape, radius, budget, seed);
    shape
}

/// A hexagonal ball of the given radius with **exactly** `holes` single-point
/// holes punched at seeded random interior positions (fewer if the radius
/// cannot accommodate that many mutually separated holes).
///
/// Deterministic given `(radius, holes, seed)`.
pub fn k_hole_hexagon(radius: u32, holes: u32, seed: u64) -> Shape {
    let mut shape = hexagon(radius);
    if radius < 2 {
        return shape;
    }
    punch_holes(&mut shape, radius, holes as usize, seed);
    shape
}

/// Punches up to `budget` single-point holes into a hexagonal ball, keeping
/// every hole's full 2-hop neighbourhood occupied (holes never merge with
/// each other or with the outer face, and the shape stays connected).
fn punch_holes(shape: &mut Shape, radius: u32, budget: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<Point> = Point::ORIGIN.ball(radius.saturating_sub(2));
    candidates.shuffle(&mut rng);
    let mut punched = 0;
    for p in candidates {
        if punched >= budget {
            break;
        }
        let safe = p
            .neighbors()
            .all(|q| shape.contains(q) && q.neighbors().all(|r| r == p || shape.contains(r)));
        if safe {
            shape.remove(p);
            punched += 1;
        }
    }
}

/// A "caterpillar": a straight spine of `spine` points heading east with a
/// tooth of seeded random length `0..=max_tooth` hanging south of every spine
/// point. Always connected and simply-connected; its diameter is large
/// relative to its point count, like a comb, but irregular.
///
/// Deterministic given `(spine, max_tooth, seed)`.
pub fn caterpillar(spine: u32, max_tooth: u32, seed: u64) -> Shape {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::new();
    for i in 0..spine.max(1) as i32 {
        pts.push(Point::new(i, 0));
        let tooth = rng.gen_range(0..max_tooth + 1);
        for j in 1..=tooth as i32 {
            pts.push(Point::new(i, j));
        }
    }
    Shape::from_points(pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_blob_is_connected_and_deterministic() {
        let a = random_blob(100, 7);
        let b = random_blob(100, 7);
        let c = random_blob(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 100);
        assert!(a.is_connected());
    }

    #[test]
    fn simply_connected_blob_has_no_holes() {
        for seed in 0..5 {
            let s = random_simply_connected_blob(200, seed);
            assert!(s.len() >= 200);
            assert!(s.is_connected());
            assert!(s.is_simply_connected());
        }
    }

    #[test]
    fn holey_hexagon_properties() {
        let s = random_holey_hexagon(8, 0.1, 3);
        assert!(s.is_connected());
        let analysis = s.analyze();
        assert!(analysis.hole_count() >= 1);
        for hole in analysis.holes() {
            assert_eq!(hole.len(), 1, "holes must be single points");
        }
    }

    #[test]
    fn holey_hexagon_small_radius_is_plain() {
        assert_eq!(random_holey_hexagon(1, 0.3, 1), hexagon(1));
    }

    #[test]
    fn k_hole_hexagon_punches_exactly_k() {
        for (radius, holes) in [(5u32, 1u32), (6, 3), (8, 5)] {
            let s = k_hole_hexagon(radius, holes, 13);
            assert!(s.is_connected());
            assert_eq!(s.analyze().hole_count(), holes as usize);
        }
        // A radius too small for the request punches what fits.
        let tiny = k_hole_hexagon(2, 50, 1);
        assert!(tiny.is_connected());
        assert!(tiny.analyze().hole_count() <= 1);
    }

    #[test]
    fn caterpillar_is_connected_and_deterministic() {
        let a = caterpillar(12, 4, 5);
        assert_eq!(a, caterpillar(12, 4, 5));
        assert!(a.is_connected());
        assert!(a.is_simply_connected());
        assert!(a.len() >= 12);
        // With max_tooth = 0 the caterpillar degenerates to a line.
        assert_eq!(caterpillar(9, 0, 1), crate::builder::line(9));
    }
}
