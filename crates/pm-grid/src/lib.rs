//! Triangular-grid geometry for programmable matter.
//!
//! This crate provides the geometric substrate used by the amoebot model and
//! by the leader-election algorithms of Dufoulon, Kutten and Moses Jr.
//! (PODC 2021): the infinite triangular grid, finite *shapes* on it, their
//! boundaries and holes, local boundaries and boundary counts, virtual nodes
//! (v-nodes) and oriented boundary rings, erosion predicates
//! (redundant / erodable / strictly-convex-erodable points), and a metric
//! toolkit (distances, eccentricities, diameters and level sets with respect
//! to the shape, its area, or the whole grid).
//!
//! The grid is the standard triangular lattice: every point has exactly six
//! neighbours. Points are represented in axial coordinates ([`Point`]) and
//! the six incident edges are indexed clockwise by [`Direction`] in
//! `{0, …, 5}`, matching the paper's port numbering under the common
//! chirality assumption.
//!
//! # Example
//!
//! ```
//! use pm_grid::{Point, Shape};
//!
//! // A small triangle of three mutually adjacent points.
//! let shape = Shape::from_points([Point::new(0, 0), Point::new(1, 0), Point::new(0, 1)]);
//! assert!(shape.is_connected());
//! assert!(shape.is_simply_connected());
//! assert_eq!(shape.outer_boundary_len(), 3);
//! assert_eq!(shape.hole_points().count(), 0);
//! ```

pub mod boundary;
pub mod builder;
pub mod coords;
pub mod erosion;
pub mod index;
pub mod metric;
pub mod random;
pub mod shape;
pub mod vnode;

pub use boundary::{all_local_boundaries, BoundaryCount, LocalBoundary};
pub use coords::{Direction, Point, DIRECTIONS};
pub use erosion::{
    is_erodable, is_redundant, is_sce, local_sce, membership_mask, sce_points, ErosionProcess,
};
pub use index::{GridIndex, GridRect};
pub use metric::{DistanceMap, Metric};
pub use shape::{BoundaryKind, PointClass, Shape, ShapeAnalysis};
pub use vnode::{
    boundary_rings, boundary_rings_with_analysis, outer_boundary_ring, BoundaryRing,
    RingOrientation, VNode, VNodeId,
};
