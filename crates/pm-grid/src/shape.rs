//! Shapes: finite sets of triangular-grid points, their boundaries, holes and
//! areas (Section 2.1 of the paper).

use crate::coords::Point;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Classification of a grid point relative to a [`Shape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PointClass {
    /// In the shape and on some (outer or inner) boundary.
    Boundary,
    /// In the shape with all six neighbours also in the shape.
    Interior,
    /// Not in the shape, inside one of the shape's holes.
    Hole,
    /// Not in the shape, on the outer (unbounded) face.
    Outer,
}

/// Which global boundary a boundary point (or local boundary) belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BoundaryKind {
    /// The unique outer boundary (bounding the unbounded face).
    Outer,
    /// The inner boundary of the hole with the given index (indices follow
    /// the deterministic order of [`ShapeAnalysis::holes`]).
    Inner(usize),
}

/// A finite set of points of the triangular grid.
///
/// By abuse of notation (exactly as in the paper) the shape is identified
/// with the subgraph of the grid it induces: two shape points are connected
/// by an edge iff they are grid-adjacent.
///
/// The point set is kept in a [`BTreeSet`] so that all iteration orders are
/// deterministic, which keeps the simulator and the experiments reproducible.
///
/// ```
/// use pm_grid::{Point, Shape};
/// let shape = Shape::from_points(Point::ORIGIN.ball(2));
/// assert_eq!(shape.len(), 19);
/// assert!(shape.is_connected());
/// assert!(shape.is_simply_connected());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shape {
    points: BTreeSet<Point>,
}

impl Shape {
    /// Creates an empty shape.
    pub fn new() -> Shape {
        Shape::default()
    }

    /// Creates a shape from any collection of points.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Shape {
        Shape {
            points: points.into_iter().collect(),
        }
    }

    /// Number of points in the shape (the paper's `n` when the shape is the
    /// particle system's shape).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the shape contains no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Whether the given point belongs to the shape.
    pub fn contains(&self, p: Point) -> bool {
        self.points.contains(&p)
    }

    /// Inserts a point; returns whether it was newly inserted.
    pub fn insert(&mut self, p: Point) -> bool {
        self.points.insert(p)
    }

    /// Removes a point; returns whether it was present.
    pub fn remove(&mut self, p: Point) -> bool {
        self.points.remove(&p)
    }

    /// Iterates over the points in deterministic (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.points.iter().copied()
    }

    /// The underlying point set.
    pub fn points(&self) -> &BTreeSet<Point> {
        &self.points
    }

    /// The neighbours of `p` that belong to the shape, in clockwise port
    /// order.
    pub fn neighbors_in(&self, p: Point) -> impl Iterator<Item = Point> + '_ {
        p.neighbors().filter(move |n| self.contains(*n))
    }

    /// The number of shape neighbours of `p`.
    pub fn degree(&self, p: Point) -> usize {
        self.neighbors_in(p).count()
    }

    /// An arbitrary but deterministic element (the lexicographically smallest
    /// point), if any.
    pub fn first_point(&self) -> Option<Point> {
        self.points.iter().next().copied()
    }

    /// Axis-aligned bounding box `((min_q, min_r), (max_q, max_r))`, if the
    /// shape is non-empty.
    pub fn bounding_box(&self) -> Option<(Point, Point)> {
        if self.is_empty() {
            return None;
        }
        let min_q = self.iter().map(|p| p.q).min().unwrap();
        let max_q = self.iter().map(|p| p.q).max().unwrap();
        let min_r = self.iter().map(|p| p.r).min().unwrap();
        let max_r = self.iter().map(|p| p.r).max().unwrap();
        Some((Point::new(min_q, min_r), Point::new(max_q, max_r)))
    }

    /// Whether the induced subgraph is connected. The empty shape is
    /// considered connected (vacuously); the paper only ever considers
    /// non-empty shapes.
    pub fn is_connected(&self) -> bool {
        let Some(start) = self.first_point() else {
            return true;
        };
        let mut seen = HashSet::with_capacity(self.len());
        seen.insert(start);
        let mut queue = VecDeque::from([start]);
        while let Some(p) = queue.pop_front() {
            for n in self.neighbors_in(p) {
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        seen.len() == self.len()
    }

    /// The connected components of the shape, each as its own [`Shape`], in
    /// deterministic order of their smallest point.
    pub fn connected_components(&self) -> Vec<Shape> {
        let mut unvisited: BTreeSet<Point> = self.points.clone();
        let mut components = Vec::new();
        while let Some(start) = unvisited.iter().next().copied() {
            let mut comp = BTreeSet::new();
            let mut queue = VecDeque::from([start]);
            unvisited.remove(&start);
            comp.insert(start);
            while let Some(p) = queue.pop_front() {
                for n in self.neighbors_in(p) {
                    if unvisited.remove(&n) {
                        comp.insert(n);
                        queue.push_back(n);
                    }
                }
            }
            components.push(Shape { points: comp });
        }
        components
    }

    /// Whether `p` is a boundary point of the shape (in the shape and
    /// adjacent to at least one point not in the shape).
    pub fn is_boundary_point(&self, p: Point) -> bool {
        self.contains(p) && p.neighbors().any(|n| !self.contains(n))
    }

    /// Whether `p` is an interior point of the shape (in the shape with all
    /// six neighbours in the shape).
    pub fn is_interior_point(&self, p: Point) -> bool {
        self.contains(p) && p.neighbors().all(|n| self.contains(n))
    }

    /// Computes the full face analysis (outer face, holes, boundaries).
    ///
    /// This is the potentially expensive classification; callers that need
    /// several derived quantities should compute it once and reuse it.
    pub fn analyze(&self) -> ShapeAnalysis {
        ShapeAnalysis::new(self)
    }

    /// All hole points of the shape (empty points in bounded faces), in
    /// deterministic order. Convenience wrapper over [`Shape::analyze`].
    pub fn hole_points(&self) -> impl Iterator<Item = Point> {
        self.analyze().hole_points().into_iter()
    }

    /// Whether the shape has no holes. A disconnected or empty shape is
    /// simply-connected iff it has no holes, matching the paper's usage for
    /// connected shapes.
    pub fn is_simply_connected(&self) -> bool {
        self.analyze().holes().is_empty()
    }

    /// The area of the shape: the shape together with all of its hole points
    /// (Section 2.1).
    pub fn area(&self) -> Shape {
        let analysis = self.analyze();
        let mut points = self.points.clone();
        points.extend(analysis.hole_points());
        Shape { points }
    }

    /// The number of points on the outer boundary, `L_out(S)`.
    pub fn outer_boundary_len(&self) -> usize {
        self.analyze().outer_boundary().len()
    }

    /// The maximum boundary length `L_max(S)` over the outer boundary and all
    /// inner boundaries.
    pub fn max_boundary_len(&self) -> usize {
        self.analyze().max_boundary_len()
    }

    /// Classifies an arbitrary grid point with respect to the shape.
    pub fn classify(&self, p: Point) -> PointClass {
        self.analyze().classify(p)
    }
}

impl FromIterator<Point> for Shape {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Shape {
        Shape::from_points(iter)
    }
}

impl Extend<Point> for Shape {
    fn extend<I: IntoIterator<Item = Point>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Shape {
    type Item = Point;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, Point>>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter().copied()
    }
}

/// The face decomposition of a shape: which empty points lie on the outer
/// face, which lie in holes, and the induced global boundaries.
///
/// All results refer to the shape at the time [`Shape::analyze`] was called.
#[derive(Clone, Debug)]
pub struct ShapeAnalysis {
    shape: Shape,
    /// Empty points (within the expanded bounding box) that belong to the
    /// unbounded outer face.
    outer_face: HashSet<Point>,
    /// Hole components, each a set of empty points, ordered by smallest point.
    holes: Vec<BTreeSet<Point>>,
    /// For each hole point, the index of its hole component.
    hole_index: HashMap<Point, usize>,
    /// Shape points on the outer boundary.
    outer_boundary: BTreeSet<Point>,
    /// Shape points on each hole's inner boundary (same order as `holes`).
    inner_boundaries: Vec<BTreeSet<Point>>,
}

impl ShapeAnalysis {
    fn new(shape: &Shape) -> ShapeAnalysis {
        let shape = shape.clone();
        let Some((min, max)) = shape.bounding_box() else {
            return ShapeAnalysis {
                shape,
                outer_face: HashSet::new(),
                holes: Vec::new(),
                hole_index: HashMap::new(),
                outer_boundary: BTreeSet::new(),
                inner_boundaries: Vec::new(),
            };
        };
        // Expand the bounding box by one so the outer face is connected
        // within it and surrounds the shape.
        let (min_q, min_r) = (min.q - 1, min.r - 1);
        let (max_q, max_r) = (max.q + 1, max.r + 1);
        let in_box = |p: Point| p.q >= min_q && p.q <= max_q && p.r >= min_r && p.r <= max_r;

        // Flood-fill empty points from a corner of the expanded box: those
        // are (a superset within the box of) the outer face.
        let start = Point::new(min_q, min_r);
        debug_assert!(!shape.contains(start));
        let mut outer_face = HashSet::new();
        outer_face.insert(start);
        let mut queue = VecDeque::from([start]);
        while let Some(p) = queue.pop_front() {
            for n in p.neighbors() {
                if in_box(n) && !shape.contains(n) && !outer_face.contains(&n) {
                    outer_face.insert(n);
                    queue.push_back(n);
                }
            }
        }

        // Hole points: empty points inside the box not reachable from outside.
        let mut hole_points: BTreeSet<Point> = BTreeSet::new();
        for q in min_q..=max_q {
            for r in min_r..=max_r {
                let p = Point::new(q, r);
                if !shape.contains(p) && !outer_face.contains(&p) {
                    hole_points.insert(p);
                }
            }
        }

        // Group hole points into connected components (the holes).
        let mut holes: Vec<BTreeSet<Point>> = Vec::new();
        let mut hole_index: HashMap<Point, usize> = HashMap::new();
        let mut remaining = hole_points;
        while let Some(start) = remaining.iter().next().copied() {
            let idx = holes.len();
            let mut comp = BTreeSet::new();
            comp.insert(start);
            remaining.remove(&start);
            let mut queue = VecDeque::from([start]);
            while let Some(p) = queue.pop_front() {
                hole_index.insert(p, idx);
                for n in p.neighbors() {
                    if remaining.remove(&n) {
                        comp.insert(n);
                        queue.push_back(n);
                    }
                }
            }
            holes.push(comp);
        }

        // Boundary membership: a shape point is on the outer boundary iff it
        // is adjacent to an outer-face point; it is on hole i's inner
        // boundary iff it is adjacent to a point of hole i. A point can be on
        // several boundaries at once.
        let mut outer_boundary = BTreeSet::new();
        let mut inner_boundaries = vec![BTreeSet::new(); holes.len()];
        for p in shape.iter() {
            for n in p.neighbors() {
                if shape.contains(n) {
                    continue;
                }
                if let Some(&idx) = hole_index.get(&n) {
                    inner_boundaries[idx].insert(p);
                } else {
                    // Any empty neighbour that is not a hole point is on the
                    // outer face (it may fall outside the expanded box only
                    // if the shape point is on the box edge, in which case it
                    // is still outer).
                    outer_boundary.insert(p);
                }
            }
        }

        ShapeAnalysis {
            shape,
            outer_face,
            holes,
            hole_index,
            outer_boundary,
            inner_boundaries,
        }
    }

    /// The analysed shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The hole components (possibly empty), each a set of empty points.
    pub fn holes(&self) -> &[BTreeSet<Point>] {
        &self.holes
    }

    /// All hole points in deterministic order.
    pub fn hole_points(&self) -> Vec<Point> {
        self.holes.iter().flat_map(|h| h.iter().copied()).collect()
    }

    /// The shape points on the outer boundary.
    pub fn outer_boundary(&self) -> &BTreeSet<Point> {
        &self.outer_boundary
    }

    /// The shape points on the inner boundary of hole `i`.
    pub fn inner_boundary(&self, i: usize) -> &BTreeSet<Point> {
        &self.inner_boundaries[i]
    }

    /// Number of holes.
    pub fn hole_count(&self) -> usize {
        self.holes.len()
    }

    /// `L_out`: number of points on the outer boundary.
    pub fn outer_boundary_len(&self) -> usize {
        self.outer_boundary.len()
    }

    /// `L_max`: maximum number of points over all global boundaries.
    pub fn max_boundary_len(&self) -> usize {
        self.inner_boundaries
            .iter()
            .map(|b| b.len())
            .chain([self.outer_boundary.len()])
            .max()
            .unwrap_or(0)
    }

    /// The area of the shape (shape plus hole points).
    pub fn area(&self) -> Shape {
        let mut points = self.shape.points.clone();
        points.extend(self.hole_points());
        Shape { points }
    }

    /// Classifies an arbitrary grid point.
    pub fn classify(&self, p: Point) -> PointClass {
        if self.shape.contains(p) {
            if self.shape.is_interior_point(p) {
                PointClass::Interior
            } else {
                PointClass::Boundary
            }
        } else if self.hole_index.contains_key(&p) {
            PointClass::Hole
        } else {
            PointClass::Outer
        }
    }

    /// Which kind of empty face the empty point `p` belongs to, or `None` if
    /// `p` is in the shape.
    ///
    /// Points far outside the analysed bounding box are reported as
    /// [`BoundaryKind::Outer`]-adjacent, i.e. on the outer face.
    pub fn face_of_empty_point(&self, p: Point) -> Option<BoundaryKind> {
        if self.shape.contains(p) {
            return None;
        }
        if let Some(&idx) = self.hole_index.get(&p) {
            Some(BoundaryKind::Inner(idx))
        } else {
            Some(BoundaryKind::Outer)
        }
    }

    /// Whether the empty point `p` lies on the outer (unbounded) face.
    pub fn is_outer_face_point(&self, p: Point) -> bool {
        !self.shape.contains(p) && !self.hole_index.contains_key(&p)
    }

    /// Whether the empty point `p` lies inside some hole.
    pub fn is_hole_point(&self, p: Point) -> bool {
        self.hole_index.contains_key(&p)
    }

    /// The outer face points discovered within the expanded bounding box
    /// (useful for rendering).
    pub fn outer_face_sample(&self) -> &HashSet<Point> {
        &self.outer_face
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::Direction;

    /// A hexagonal ball of the given radius around the origin.
    fn ball(radius: u32) -> Shape {
        Shape::from_points(Point::ORIGIN.ball(radius))
    }

    /// A ring (annulus of width 1) of the given radius: a shape with one hole
    /// when radius >= 2 (radius 1 ring encloses only the origin).
    fn ring(radius: u32) -> Shape {
        Shape::from_points(Point::ORIGIN.ring(radius))
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Shape::new();
        assert!(empty.is_empty());
        assert!(empty.is_connected());
        assert!(empty.is_simply_connected());
        assert_eq!(empty.outer_boundary_len(), 0);

        let single = Shape::from_points([Point::ORIGIN]);
        assert_eq!(single.len(), 1);
        assert!(single.is_connected());
        assert!(single.is_simply_connected());
        assert!(single.is_boundary_point(Point::ORIGIN));
        assert!(!single.is_interior_point(Point::ORIGIN));
        assert_eq!(single.outer_boundary_len(), 1);
    }

    #[test]
    fn ball_classification() {
        let s = ball(3);
        let a = s.analyze();
        assert_eq!(a.hole_count(), 0);
        assert!(s.is_simply_connected());
        // Boundary of the ball of radius 3 is exactly the ring of radius 3.
        assert_eq!(a.outer_boundary_len(), 18);
        assert!(s.is_interior_point(Point::ORIGIN));
        assert_eq!(s.classify(Point::ORIGIN), PointClass::Interior);
        assert_eq!(s.classify(Point::new(3, 0)), PointClass::Boundary);
        assert_eq!(s.classify(Point::new(10, 10)), PointClass::Outer);
        // Area of a hole-free shape is the shape itself.
        assert_eq!(s.area(), s);
    }

    #[test]
    fn annulus_has_one_hole() {
        // Ball of radius 3 minus ball of radius 1 -> hole of 7 points.
        let mut s = ball(3);
        for p in Point::ORIGIN.ball(1) {
            s.remove(p);
        }
        let a = s.analyze();
        assert_eq!(a.hole_count(), 1);
        assert_eq!(a.holes()[0].len(), 7);
        assert!(!s.is_simply_connected());
        assert_eq!(s.classify(Point::ORIGIN), PointClass::Hole);
        assert_eq!(a.area().len(), s.len() + 7);
        // Inner boundary of the hole is the ring of radius 2 (12 points).
        assert_eq!(a.inner_boundary(0).len(), 12);
        assert_eq!(a.outer_boundary_len(), 18);
        assert_eq!(a.max_boundary_len(), 18);
    }

    #[test]
    fn thin_ring_radius_one_is_a_hole() {
        // The 6 points at distance 1 from the origin enclose the origin.
        let s = ring(1);
        let a = s.analyze();
        assert_eq!(a.hole_count(), 1);
        assert_eq!(a.holes()[0].len(), 1);
        assert!(a.is_hole_point(Point::ORIGIN));
        assert_eq!(s.area().len(), 7);
    }

    #[test]
    fn two_holes_are_separated() {
        // Two disjoint single-point holes inside a larger ball.
        let mut s = ball(4);
        let h1 = Point::new(2, 0);
        let h2 = Point::new(-2, 0);
        s.remove(h1);
        s.remove(h2);
        let a = s.analyze();
        assert_eq!(a.hole_count(), 2);
        assert!(a.is_hole_point(h1));
        assert!(a.is_hole_point(h2));
        assert_ne!(a.face_of_empty_point(h1), a.face_of_empty_point(h2));
        assert_eq!(a.area(), ball(4));
    }

    #[test]
    fn notch_is_not_a_hole() {
        // Removing a boundary point creates a notch, not a hole.
        let mut s = ball(2);
        s.remove(Point::new(2, 0));
        let a = s.analyze();
        assert_eq!(a.hole_count(), 0);
        assert!(s.is_simply_connected());
        assert!(a.is_outer_face_point(Point::new(2, 0)));
    }

    #[test]
    fn connectivity_and_components() {
        let mut s = ball(1);
        // Add a far-away island.
        let island = Point::new(10, 10);
        s.insert(island);
        assert!(!s.is_connected());
        let comps = s.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps.iter().map(|c| c.len()).sum::<usize>(), s.len());
        assert!(comps.iter().any(|c| c.len() == 1 && c.contains(island)));
    }

    #[test]
    fn line_shape_boundaries() {
        let line = Shape::from_points((0..10).map(|i| Point::new(i, 0)));
        assert!(line.is_connected());
        assert!(line.is_simply_connected());
        // Every point of a line is a boundary point.
        assert_eq!(line.outer_boundary_len(), 10);
        for p in line.iter() {
            assert!(line.is_boundary_point(p));
        }
    }

    #[test]
    fn neighbors_and_degree() {
        let s = ball(1);
        assert_eq!(s.degree(Point::ORIGIN), 6);
        assert_eq!(s.degree(Point::new(1, 0)), 3);
        let east = Point::ORIGIN.neighbor(Direction::E);
        assert!(s.neighbors_in(east).any(|p| p == Point::ORIGIN));
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut s: Shape = Point::ORIGIN.ring(1).into_iter().collect();
        assert_eq!(s.len(), 6);
        s.extend([Point::ORIGIN]);
        assert_eq!(s.len(), 7);
        assert_eq!((&s).into_iter().count(), 7);
    }
}
