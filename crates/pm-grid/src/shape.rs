//! Shapes: finite sets of triangular-grid points, their boundaries, holes and
//! areas (Section 2.1 of the paper).

use crate::coords::Point;
use crate::index::GridIndex;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::sync::{Arc, OnceLock};

/// Classification of a grid point relative to a [`Shape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PointClass {
    /// In the shape and on some (outer or inner) boundary.
    Boundary,
    /// In the shape with all six neighbours also in the shape.
    Interior,
    /// Not in the shape, inside one of the shape's holes.
    Hole,
    /// Not in the shape, on the outer (unbounded) face.
    Outer,
}

/// Which global boundary a boundary point (or local boundary) belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BoundaryKind {
    /// The unique outer boundary (bounding the unbounded face).
    Outer,
    /// The inner boundary of the hole with the given index (indices follow
    /// the deterministic order of [`ShapeAnalysis::holes`]).
    Inner(usize),
}

/// A finite set of points of the triangular grid.
///
/// By abuse of notation (exactly as in the paper) the shape is identified
/// with the subgraph of the grid it induces: two shape points are connected
/// by an edge iff they are grid-adjacent.
///
/// The point set is kept in a [`BTreeSet`] so that all iteration orders are
/// deterministic, which keeps the simulator and the experiments reproducible.
/// The first call to [`Shape::analyze`] additionally builds a dense
/// [`GridIndex`] over the bounding box and caches the full [`ShapeAnalysis`]
/// behind an [`Arc`]; until the shape is mutated again, membership queries
/// run in `O(1)` against the index and repeated `analyze()` calls are free.
///
/// ```
/// use pm_grid::{Point, Shape};
/// let shape = Shape::from_points(Point::ORIGIN.ball(2));
/// assert_eq!(shape.len(), 19);
/// assert!(shape.is_connected());
/// assert!(shape.is_simply_connected());
/// ```
#[derive(Clone, Default)]
pub struct Shape {
    points: BTreeSet<Point>,
    /// Lazily computed analysis (and dense index), shared by every caller
    /// until the next mutation. Cloning a shape clones the handle (cheap);
    /// mutating resets it.
    cache: OnceLock<Arc<ShapeAnalysis>>,
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shape")
            .field("points", &self.points)
            .finish()
    }
}

impl PartialEq for Shape {
    fn eq(&self, other: &Shape) -> bool {
        self.points == other.points
    }
}

impl Eq for Shape {}

impl Serialize for Shape {
    fn to_value(&self) -> Value {
        self.points.to_value()
    }
}

impl Deserialize for Shape {
    fn from_value(v: &Value) -> Result<Shape, DeError> {
        Ok(Shape {
            points: BTreeSet::from_value(v)?,
            cache: OnceLock::new(),
        })
    }
}

impl Shape {
    /// Creates an empty shape.
    pub fn new() -> Shape {
        Shape::default()
    }

    /// Creates a shape from any collection of points.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Shape {
        Shape {
            points: points.into_iter().collect(),
            cache: OnceLock::new(),
        }
    }

    /// A copy of this shape without the cached analysis (used internally so
    /// the analysis stored *inside* the cache does not hold a second handle
    /// to itself).
    fn clone_uncached(&self) -> Shape {
        Shape {
            points: self.points.clone(),
            cache: OnceLock::new(),
        }
    }

    /// Drops the cached analysis; called by every mutation.
    fn invalidate(&mut self) {
        if self.cache.get().is_some() {
            self.cache = OnceLock::new();
        }
    }

    /// Number of points in the shape (the paper's `n` when the shape is the
    /// particle system's shape).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the shape contains no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Whether the given point belongs to the shape.
    ///
    /// `O(1)` once the shape has been analysed (the cached [`GridIndex`]
    /// answers the query); `O(log n)` before that.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        match self.cache.get() {
            Some(analysis) => analysis.contains(p),
            None => self.points.contains(&p),
        }
    }

    /// Inserts a point; returns whether it was newly inserted.
    pub fn insert(&mut self, p: Point) -> bool {
        let newly = self.points.insert(p);
        if newly {
            self.invalidate();
        }
        newly
    }

    /// Removes a point; returns whether it was present.
    pub fn remove(&mut self, p: Point) -> bool {
        let removed = self.points.remove(&p);
        if removed {
            self.invalidate();
        }
        removed
    }

    /// Iterates over the points in deterministic (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.points.iter().copied()
    }

    /// The underlying point set.
    pub fn points(&self) -> &BTreeSet<Point> {
        &self.points
    }

    /// The neighbours of `p` that belong to the shape, in clockwise port
    /// order.
    pub fn neighbors_in(&self, p: Point) -> impl Iterator<Item = Point> + '_ {
        p.neighbors().filter(move |n| self.contains(*n))
    }

    /// The number of shape neighbours of `p`.
    pub fn degree(&self, p: Point) -> usize {
        self.neighbors_in(p).count()
    }

    /// An arbitrary but deterministic element (the lexicographically smallest
    /// point), if any.
    pub fn first_point(&self) -> Option<Point> {
        self.points.iter().next().copied()
    }

    /// Axis-aligned bounding box `((min_q, min_r), (max_q, max_r))`, if the
    /// shape is non-empty.
    pub fn bounding_box(&self) -> Option<(Point, Point)> {
        if self.is_empty() {
            return None;
        }
        let min_q = self.iter().map(|p| p.q).min().unwrap();
        let max_q = self.iter().map(|p| p.q).max().unwrap();
        let min_r = self.iter().map(|p| p.r).min().unwrap();
        let max_r = self.iter().map(|p| p.r).max().unwrap();
        Some((Point::new(min_q, min_r), Point::new(max_q, max_r)))
    }

    /// Whether the induced subgraph is connected. The empty shape is
    /// considered connected (vacuously); the paper only ever considers
    /// non-empty shapes.
    ///
    /// Runs a BFS over a dense [`GridIndex`] (the cached one when the shape
    /// has been analysed, a transient one otherwise) instead of hashing
    /// every visited point.
    pub fn is_connected(&self) -> bool {
        let Some(start) = self.first_point() else {
            return true;
        };
        let transient;
        let index = match self.cache.get() {
            Some(analysis) => analysis.index().expect("non-empty shape has an index"),
            None => {
                transient = GridIndex::of_shape(self, 0).expect("non-empty shape has an index");
                &transient
            }
        };
        let rect = *index.rect();
        let mut visited = vec![false; rect.cells()];
        visited[rect.cell(start).expect("shape point is in bounds")] = true;
        let mut stack = vec![start];
        let mut seen = 1usize;
        while let Some(p) = stack.pop() {
            for n in p.neighbors() {
                if let Some(cell) = rect.cell(n) {
                    if !visited[cell] && index.contains_cell(cell) {
                        visited[cell] = true;
                        seen += 1;
                        stack.push(n);
                    }
                }
            }
        }
        seen == self.len()
    }

    /// The connected components of the shape, each as its own [`Shape`], in
    /// deterministic order of their smallest point.
    pub fn connected_components(&self) -> Vec<Shape> {
        let mut unvisited: BTreeSet<Point> = self.points.clone();
        let mut components = Vec::new();
        while let Some(start) = unvisited.iter().next().copied() {
            let mut comp = BTreeSet::new();
            let mut queue = VecDeque::from([start]);
            unvisited.remove(&start);
            comp.insert(start);
            while let Some(p) = queue.pop_front() {
                for n in self.neighbors_in(p) {
                    if unvisited.remove(&n) {
                        comp.insert(n);
                        queue.push_back(n);
                    }
                }
            }
            components.push(Shape::from_points(comp));
        }
        components
    }

    /// Whether `p` is a boundary point of the shape (in the shape and
    /// adjacent to at least one point not in the shape).
    pub fn is_boundary_point(&self, p: Point) -> bool {
        self.contains(p) && p.neighbors().any(|n| !self.contains(n))
    }

    /// Whether `p` is an interior point of the shape (in the shape with all
    /// six neighbours in the shape).
    pub fn is_interior_point(&self, p: Point) -> bool {
        self.contains(p) && p.neighbors().all(|n| self.contains(n))
    }

    /// Computes (or returns the cached) full face analysis: outer face,
    /// holes, boundaries, dense index.
    ///
    /// The analysis is computed once per shape state and shared behind an
    /// [`Arc`]; callers anywhere in the stack (the particle system, OBD, the
    /// erosion predicates, renderers) reuse the same computation instead of
    /// re-deriving it. The returned handle stays valid even if the shape is
    /// mutated afterwards — it describes the shape at the time of the call.
    pub fn analyze(&self) -> Arc<ShapeAnalysis> {
        self.cache
            .get_or_init(|| Arc::new(ShapeAnalysis::compute(self)))
            .clone()
    }

    /// All hole points of the shape (empty points in bounded faces), in
    /// deterministic order. Convenience wrapper over [`Shape::analyze`].
    pub fn hole_points(&self) -> impl Iterator<Item = Point> {
        self.analyze().hole_points().into_iter()
    }

    /// Whether the shape has no holes. A disconnected or empty shape is
    /// simply-connected iff it has no holes, matching the paper's usage for
    /// connected shapes.
    pub fn is_simply_connected(&self) -> bool {
        self.analyze().holes().is_empty()
    }

    /// The area of the shape: the shape together with all of its hole points
    /// (Section 2.1).
    pub fn area(&self) -> Shape {
        self.analyze().area()
    }

    /// The number of points on the outer boundary, `L_out(S)`.
    pub fn outer_boundary_len(&self) -> usize {
        self.analyze().outer_boundary().len()
    }

    /// The maximum boundary length `L_max(S)` over the outer boundary and all
    /// inner boundaries.
    pub fn max_boundary_len(&self) -> usize {
        self.analyze().max_boundary_len()
    }

    /// Classifies an arbitrary grid point with respect to the shape.
    pub fn classify(&self, p: Point) -> PointClass {
        self.analyze().classify(p)
    }
}

impl FromIterator<Point> for Shape {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Shape {
        Shape::from_points(iter)
    }
}

impl Extend<Point> for Shape {
    fn extend<I: IntoIterator<Item = Point>>(&mut self, iter: I) {
        self.points.extend(iter);
        self.invalidate();
    }
}

impl<'a> IntoIterator for &'a Shape {
    type Item = Point;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, Point>>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter().copied()
    }
}

/// Per-cell hole id sentinel: the cell is not a hole point.
const NO_HOLE: u32 = u32::MAX;

/// The face decomposition of a shape: which empty points lie on the outer
/// face, which lie in holes, and the induced global boundaries.
///
/// All results refer to the shape at the time [`Shape::analyze`] was called.
///
/// Internally the analysis is computed over a dense [`GridIndex`] covering
/// the shape's bounding box expanded by one cell: the flood fills run over
/// flat arrays instead of hash sets, and the per-cell [`PointClass`] and
/// hole-id grids make [`ShapeAnalysis::classify`],
/// [`ShapeAnalysis::is_outer_face_point`] and
/// [`ShapeAnalysis::face_of_empty_point`] `O(1)`.
#[derive(Clone, Debug)]
pub struct ShapeAnalysis {
    shape: Shape,
    /// Dense membership index over the expanded bounding box (`None` only
    /// for the empty shape).
    index: Option<GridIndex>,
    /// Per-cell classification, indexed by the cells of `index`.
    class: Vec<PointClass>,
    /// Per-cell hole component id ([`NO_HOLE`] for non-hole cells).
    hole_id: Vec<u32>,
    /// Hole components, each a set of empty points, ordered by smallest point.
    holes: Vec<BTreeSet<Point>>,
    /// Shape points on the outer boundary.
    outer_boundary: BTreeSet<Point>,
    /// Shape points on each hole's inner boundary (same order as `holes`).
    inner_boundaries: Vec<BTreeSet<Point>>,
}

impl ShapeAnalysis {
    fn compute(shape: &Shape) -> ShapeAnalysis {
        let shape = shape.clone_uncached();
        let Some(index) = GridIndex::of_shape(&shape, 1) else {
            return ShapeAnalysis {
                shape,
                index: None,
                class: Vec::new(),
                hole_id: Vec::new(),
                holes: Vec::new(),
                outer_boundary: BTreeSet::new(),
                inner_boundaries: Vec::new(),
            };
        };
        let rect = *index.rect();
        let cells = rect.cells();

        // Pass 1 — outer flood fill: every empty cell on the expanded box's
        // border ring is on the unbounded face (the margin guarantees the
        // ring is empty and connected around the shape); flood inward over
        // empty cells. `Interior` is used as a temporary "unvisited" marker
        // for empty cells and fixed up below.
        let mut class: Vec<PointClass> = (0..cells)
            .map(|c| {
                if index.contains_cell(c) {
                    PointClass::Boundary // provisional; refined in pass 3
                } else {
                    PointClass::Interior // provisional "unvisited empty"
                }
            })
            .collect();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let (w, h) = (rect.width(), rect.height());
        let push_border =
            |q: i32, r: i32, class: &mut Vec<PointClass>, queue: &mut VecDeque<usize>| {
                let cell = rect
                    .cell(Point::new(rect.min().q + q, rect.min().r + r))
                    .expect("border cell is in bounds");
                if class[cell] == PointClass::Interior {
                    class[cell] = PointClass::Outer;
                    queue.push_back(cell);
                }
            };
        for q in 0..w {
            push_border(q, 0, &mut class, &mut queue);
            push_border(q, h - 1, &mut class, &mut queue);
        }
        for r in 0..h {
            push_border(0, r, &mut class, &mut queue);
            push_border(w - 1, r, &mut class, &mut queue);
        }
        while let Some(cell) = queue.pop_front() {
            let p = rect.point(cell);
            for n in p.neighbors() {
                if let Some(nc) = rect.cell(n) {
                    if class[nc] == PointClass::Interior {
                        class[nc] = PointClass::Outer;
                        queue.push_back(nc);
                    }
                }
            }
        }

        // Pass 2 — hole components: empty cells not reached from the border.
        // Seeds are scanned in lexicographic (q, r) point order so hole
        // indices (and thus `BoundaryKind::Inner` numbering) are ordered by
        // each component's smallest point.
        let mut hole_id = vec![NO_HOLE; cells];
        let mut holes: Vec<BTreeSet<Point>> = Vec::new();
        let min = rect.min();
        for q in 0..w {
            for r in 0..h {
                let seed = rect
                    .cell(Point::new(min.q + q, min.r + r))
                    .expect("scan stays in bounds");
                if class[seed] != PointClass::Interior {
                    continue;
                }
                let id = holes.len() as u32;
                let mut comp = BTreeSet::new();
                class[seed] = PointClass::Hole;
                hole_id[seed] = id;
                comp.insert(rect.point(seed));
                let mut stack = vec![seed];
                while let Some(cell) = stack.pop() {
                    let p = rect.point(cell);
                    for n in p.neighbors() {
                        if let Some(nc) = rect.cell(n) {
                            if class[nc] == PointClass::Interior {
                                class[nc] = PointClass::Hole;
                                hole_id[nc] = id;
                                comp.insert(rect.point(nc));
                                stack.push(nc);
                            }
                        }
                    }
                }
                holes.push(comp);
            }
        }

        // Pass 3 — boundary membership and the final shape-point classes: a
        // shape point is on the outer boundary iff it is adjacent to an
        // outer-face point, on hole i's inner boundary iff adjacent to a
        // point of hole i, and interior iff all six neighbours are occupied.
        // (A point can be on several boundaries at once.)
        let mut outer_boundary = BTreeSet::new();
        let mut inner_boundaries = vec![BTreeSet::new(); holes.len()];
        for p in shape.iter() {
            let cell = rect.cell(p).expect("shape points are in bounds");
            let mut interior = true;
            for n in p.neighbors() {
                // The margin keeps every neighbour of a shape point in
                // bounds.
                let nc = rect
                    .cell(n)
                    .expect("neighbour of a shape point is in bounds");
                if index.contains_cell(nc) {
                    continue;
                }
                interior = false;
                let id = hole_id[nc];
                if id == NO_HOLE {
                    outer_boundary.insert(p);
                } else {
                    inner_boundaries[id as usize].insert(p);
                }
            }
            class[cell] = if interior {
                PointClass::Interior
            } else {
                PointClass::Boundary
            };
        }

        ShapeAnalysis {
            shape,
            index: Some(index),
            class,
            hole_id,
            holes,
            outer_boundary,
            inner_boundaries,
        }
    }

    /// The analysed shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dense membership index over the expanded bounding box (`None` for
    /// the empty shape). Hot paths use it for `O(1)` occupancy-style
    /// membership queries.
    pub fn index(&self) -> Option<&GridIndex> {
        self.index.as_ref()
    }

    /// Whether `p` belongs to the analysed shape, in `O(1)`.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.index.as_ref().is_some_and(|index| index.contains(p))
    }

    /// The hole components (possibly empty), each a set of empty points.
    pub fn holes(&self) -> &[BTreeSet<Point>] {
        &self.holes
    }

    /// All hole points in deterministic order.
    pub fn hole_points(&self) -> Vec<Point> {
        self.holes.iter().flat_map(|h| h.iter().copied()).collect()
    }

    /// The shape points on the outer boundary.
    pub fn outer_boundary(&self) -> &BTreeSet<Point> {
        &self.outer_boundary
    }

    /// The shape points on the inner boundary of hole `i`.
    pub fn inner_boundary(&self, i: usize) -> &BTreeSet<Point> {
        &self.inner_boundaries[i]
    }

    /// Number of holes.
    pub fn hole_count(&self) -> usize {
        self.holes.len()
    }

    /// `L_out`: number of points on the outer boundary.
    pub fn outer_boundary_len(&self) -> usize {
        self.outer_boundary.len()
    }

    /// `L_max`: maximum number of points over all global boundaries.
    pub fn max_boundary_len(&self) -> usize {
        self.inner_boundaries
            .iter()
            .map(|b| b.len())
            .chain([self.outer_boundary.len()])
            .max()
            .unwrap_or(0)
    }

    /// The area of the shape (shape plus hole points).
    pub fn area(&self) -> Shape {
        let mut points = self.shape.points.clone();
        points.extend(self.hole_points());
        Shape::from_points(points)
    }

    /// Classifies an arbitrary grid point, in `O(1)`.
    #[inline]
    pub fn classify(&self, p: Point) -> PointClass {
        match &self.index {
            None => PointClass::Outer,
            Some(index) => match index.rect().cell(p) {
                // Outside the expanded bounding box: empty, on the
                // unbounded face.
                None => PointClass::Outer,
                Some(cell) => self.class[cell],
            },
        }
    }

    /// Which kind of empty face the empty point `p` belongs to, or `None` if
    /// `p` is in the shape. `O(1)`.
    ///
    /// Points far outside the analysed bounding box are reported as
    /// [`BoundaryKind::Outer`]-adjacent, i.e. on the outer face.
    pub fn face_of_empty_point(&self, p: Point) -> Option<BoundaryKind> {
        match self.classify(p) {
            PointClass::Boundary | PointClass::Interior => None,
            PointClass::Hole => {
                let cell = self
                    .index
                    .as_ref()
                    .and_then(|index| index.rect().cell(p))
                    .expect("hole points are in bounds");
                Some(BoundaryKind::Inner(self.hole_id[cell] as usize))
            }
            PointClass::Outer => Some(BoundaryKind::Outer),
        }
    }

    /// Whether the empty point `p` lies on the outer (unbounded) face.
    /// `O(1)`.
    #[inline]
    pub fn is_outer_face_point(&self, p: Point) -> bool {
        self.classify(p) == PointClass::Outer
    }

    /// Whether the empty point `p` lies inside some hole. `O(1)`.
    #[inline]
    pub fn is_hole_point(&self, p: Point) -> bool {
        self.classify(p) == PointClass::Hole
    }

    /// The outer-face points within the analysed (expanded) bounding box
    /// (useful for rendering). Computed on demand from the dense
    /// classification grid.
    pub fn outer_face_sample(&self) -> HashSet<Point> {
        let Some(index) = &self.index else {
            return HashSet::new();
        };
        let rect = index.rect();
        (0..rect.cells())
            .filter(|cell| self.class[*cell] == PointClass::Outer)
            .map(|cell| rect.point(cell))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::Direction;

    /// A hexagonal ball of the given radius around the origin.
    fn ball(radius: u32) -> Shape {
        Shape::from_points(Point::ORIGIN.ball(radius))
    }

    /// A ring (annulus of width 1) of the given radius: a shape with one hole
    /// when radius >= 2 (radius 1 ring encloses only the origin).
    fn ring(radius: u32) -> Shape {
        Shape::from_points(Point::ORIGIN.ring(radius))
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Shape::new();
        assert!(empty.is_empty());
        assert!(empty.is_connected());
        assert!(empty.is_simply_connected());
        assert_eq!(empty.outer_boundary_len(), 0);
        assert_eq!(empty.classify(Point::ORIGIN), PointClass::Outer);

        let single = Shape::from_points([Point::ORIGIN]);
        assert_eq!(single.len(), 1);
        assert!(single.is_connected());
        assert!(single.is_simply_connected());
        assert!(single.is_boundary_point(Point::ORIGIN));
        assert!(!single.is_interior_point(Point::ORIGIN));
        assert_eq!(single.outer_boundary_len(), 1);
    }

    #[test]
    fn ball_classification() {
        let s = ball(3);
        let a = s.analyze();
        assert_eq!(a.hole_count(), 0);
        assert!(s.is_simply_connected());
        // Boundary of the ball of radius 3 is exactly the ring of radius 3.
        assert_eq!(a.outer_boundary_len(), 18);
        assert!(s.is_interior_point(Point::ORIGIN));
        assert_eq!(s.classify(Point::ORIGIN), PointClass::Interior);
        assert_eq!(s.classify(Point::new(3, 0)), PointClass::Boundary);
        assert_eq!(s.classify(Point::new(10, 10)), PointClass::Outer);
        // Area of a hole-free shape is the shape itself.
        assert_eq!(s.area(), s);
    }

    #[test]
    fn annulus_has_one_hole() {
        // Ball of radius 3 minus ball of radius 1 -> hole of 7 points.
        let mut s = ball(3);
        for p in Point::ORIGIN.ball(1) {
            s.remove(p);
        }
        let a = s.analyze();
        assert_eq!(a.hole_count(), 1);
        assert_eq!(a.holes()[0].len(), 7);
        assert!(!s.is_simply_connected());
        assert_eq!(s.classify(Point::ORIGIN), PointClass::Hole);
        assert_eq!(a.area().len(), s.len() + 7);
        // Inner boundary of the hole is the ring of radius 2 (12 points).
        assert_eq!(a.inner_boundary(0).len(), 12);
        assert_eq!(a.outer_boundary_len(), 18);
        assert_eq!(a.max_boundary_len(), 18);
    }

    #[test]
    fn thin_ring_radius_one_is_a_hole() {
        // The 6 points at distance 1 from the origin enclose the origin.
        let s = ring(1);
        let a = s.analyze();
        assert_eq!(a.hole_count(), 1);
        assert_eq!(a.holes()[0].len(), 1);
        assert!(a.is_hole_point(Point::ORIGIN));
        assert_eq!(s.area().len(), 7);
    }

    #[test]
    fn two_holes_are_separated() {
        // Two disjoint single-point holes inside a larger ball.
        let mut s = ball(4);
        let h1 = Point::new(2, 0);
        let h2 = Point::new(-2, 0);
        s.remove(h1);
        s.remove(h2);
        let a = s.analyze();
        assert_eq!(a.hole_count(), 2);
        assert!(a.is_hole_point(h1));
        assert!(a.is_hole_point(h2));
        assert_ne!(a.face_of_empty_point(h1), a.face_of_empty_point(h2));
        assert_eq!(a.area(), ball(4));
    }

    #[test]
    fn hole_numbering_follows_smallest_point_order() {
        // Hole component indices are ordered by each hole's lexicographically
        // smallest point, matching `BoundaryKind::Inner` numbering.
        let mut s = ball(4);
        let h1 = Point::new(-2, 0);
        let h2 = Point::new(2, 0);
        s.remove(h1);
        s.remove(h2);
        let a = s.analyze();
        assert_eq!(a.face_of_empty_point(h1), Some(BoundaryKind::Inner(0)));
        assert_eq!(a.face_of_empty_point(h2), Some(BoundaryKind::Inner(1)));
        assert!(a.holes()[0].contains(&h1));
        assert!(a.holes()[1].contains(&h2));
    }

    #[test]
    fn notch_is_not_a_hole() {
        // Removing a boundary point creates a notch, not a hole.
        let mut s = ball(2);
        s.remove(Point::new(2, 0));
        let a = s.analyze();
        assert_eq!(a.hole_count(), 0);
        assert!(s.is_simply_connected());
        assert!(a.is_outer_face_point(Point::new(2, 0)));
    }

    #[test]
    fn connectivity_and_components() {
        let mut s = ball(1);
        // Add a far-away island.
        let island = Point::new(10, 10);
        s.insert(island);
        assert!(!s.is_connected());
        let comps = s.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps.iter().map(|c| c.len()).sum::<usize>(), s.len());
        assert!(comps.iter().any(|c| c.len() == 1 && c.contains(island)));
    }

    #[test]
    fn line_shape_boundaries() {
        let line = Shape::from_points((0..10).map(|i| Point::new(i, 0)));
        assert!(line.is_connected());
        assert!(line.is_simply_connected());
        // Every point of a line is a boundary point.
        assert_eq!(line.outer_boundary_len(), 10);
        for p in line.iter() {
            assert!(line.is_boundary_point(p));
        }
    }

    #[test]
    fn neighbors_and_degree() {
        let s = ball(1);
        assert_eq!(s.degree(Point::ORIGIN), 6);
        assert_eq!(s.degree(Point::new(1, 0)), 3);
        let east = Point::ORIGIN.neighbor(Direction::E);
        assert!(s.neighbors_in(east).any(|p| p == Point::ORIGIN));
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut s: Shape = Point::ORIGIN.ring(1).into_iter().collect();
        assert_eq!(s.len(), 6);
        s.extend([Point::ORIGIN]);
        assert_eq!(s.len(), 7);
        assert_eq!((&s).into_iter().count(), 7);
    }

    #[test]
    fn analysis_is_cached_until_mutation() {
        let mut s = ball(2);
        let a = s.analyze();
        let b = s.analyze();
        assert!(
            Arc::ptr_eq(&a, &b),
            "repeated analyze() must share the cache"
        );
        // Mutation invalidates; the new analysis reflects the new shape.
        s.remove(Point::new(2, 0));
        let c = s.analyze();
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!c.contains(Point::new(2, 0)));
        // The old handle still describes the old state.
        assert!(a.contains(Point::new(2, 0)));
        // Non-mutating "mutations" (inserting an existing point, removing an
        // absent one) keep the cache.
        let before = s.analyze();
        assert!(!s.insert(Point::ORIGIN));
        assert!(!s.remove(Point::new(50, 50)));
        assert!(Arc::ptr_eq(&before, &s.analyze()));
    }

    #[test]
    fn contains_agrees_before_and_after_analysis() {
        let s = ball(3);
        let probes: Vec<Point> = (-5..=5)
            .flat_map(|q| (-5..=5).map(move |r| Point::new(q, r)))
            .collect();
        let before: Vec<bool> = probes.iter().map(|p| s.contains(*p)).collect();
        let _ = s.analyze();
        let after: Vec<bool> = probes.iter().map(|p| s.contains(*p)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn shape_serde_round_trip_ignores_cache() {
        let s = ball(2);
        let _ = s.analyze();
        let value = s.to_value();
        let back = Shape::from_value(&value).expect("round trip");
        assert_eq!(back, s);
    }

    #[test]
    fn outer_face_sample_surrounds_the_shape() {
        let s = ball(1);
        let sample = s.analyze().outer_face_sample();
        // The expanded box is 5x5 = 25 cells minus the 7 shape points.
        assert_eq!(sample.len(), 25 - 7);
        assert!(sample.iter().all(|p| !s.contains(*p)));
    }
}
