//! Dense indexed-grid fast path: flat-array addressing for bounded regions
//! of the triangular grid.
//!
//! The simulator's hot paths — neighbour probes during activations, occupancy
//! lookups, face classification — are all membership queries against a finite
//! region of the grid. A [`BTreeSet`](std::collections::BTreeSet) answers
//! them in `O(log n)` with pointer chasing; a [`GridIndex`] answers them in
//! `O(1)` from a flat bitset indexed by [`GridRect`] cell ids, with the six
//! neighbour cells of any cell reachable through precomputed constant
//! offsets (axial direction offsets are translation-invariant, so on a
//! row-major layout each direction is a fixed `dq + dr·width` jump).
//!
//! [`GridRect`] is the pure cell-id geometry (also used by the particle
//! system's dense occupancy vector); [`GridIndex`] adds the membership
//! bitset.

use crate::coords::{Point, DIRECTIONS};
use crate::shape::Shape;

/// A rectangle of the axial-coordinate plane with row-major cell addressing.
///
/// Cell ids are `(r - min_r) * width + (q - min_q)`, so translating a point
/// by direction `d` translates its cell id by the constant
/// [`GridRect::direction_offset`]`(d)` — no per-cell table is needed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridRect {
    min_q: i32,
    min_r: i32,
    width: i32,
    height: i32,
}

impl GridRect {
    /// The rectangle spanning `min..=max` in both axial coordinates.
    pub fn new(min: Point, max: Point) -> GridRect {
        assert!(min.q <= max.q && min.r <= max.r, "empty grid rectangle");
        GridRect {
            min_q: min.q,
            min_r: min.r,
            width: max.q - min.q + 1,
            height: max.r - min.r + 1,
        }
    }

    /// The bounding rectangle of a non-empty shape, expanded by `margin`
    /// cells on every side. Returns `None` for the empty shape.
    pub fn of_shape(shape: &Shape, margin: u32) -> Option<GridRect> {
        let (min, max) = shape.bounding_box()?;
        let m = margin as i32;
        Some(GridRect::new(
            Point::new(min.q - m, min.r - m),
            Point::new(max.q + m, max.r + m),
        ))
    }

    /// Number of cells in the rectangle.
    pub fn cells(&self) -> usize {
        (self.width as usize) * (self.height as usize)
    }

    /// Width in cells (the `q` extent).
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Height in cells (the `r` extent).
    pub fn height(&self) -> i32 {
        self.height
    }

    /// The lexicographically smallest corner.
    pub fn min(&self) -> Point {
        Point::new(self.min_q, self.min_r)
    }

    /// The lexicographically largest corner.
    pub fn max(&self) -> Point {
        Point::new(self.min_q + self.width - 1, self.min_r + self.height - 1)
    }

    /// Whether the rectangle contains the point.
    #[inline]
    pub fn in_bounds(&self, p: Point) -> bool {
        let q = p.q - self.min_q;
        let r = p.r - self.min_r;
        (q as u32) < self.width as u32 && (r as u32) < self.height as u32
    }

    /// The cell id of `p`, or `None` if it lies outside the rectangle.
    #[inline]
    pub fn cell(&self, p: Point) -> Option<usize> {
        if self.in_bounds(p) {
            Some(
                ((p.r - self.min_r) as usize) * (self.width as usize) + (p.q - self.min_q) as usize,
            )
        } else {
            None
        }
    }

    /// The point of a cell id.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= self.cells()`.
    #[inline]
    pub fn point(&self, cell: usize) -> Point {
        assert!(cell < self.cells(), "cell id out of range");
        let w = self.width as usize;
        Point::new(
            self.min_q + (cell % w) as i32,
            self.min_r + (cell / w) as i32,
        )
    }

    /// The constant cell-id offset of moving one step in direction `i`
    /// (clockwise direction index). Valid for any cell whose neighbour stays
    /// in bounds; use [`GridRect::cell`] on the neighbouring point when the
    /// move may leave the rectangle.
    #[inline]
    pub fn direction_offset(&self, i: usize) -> isize {
        let (dq, dr) = DIRECTIONS[i].offset();
        dq as isize + dr as isize * self.width as isize
    }

    /// All six direction offsets, indexed by clockwise direction index.
    pub fn direction_offsets(&self) -> [isize; 6] {
        let mut out = [0isize; 6];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.direction_offset(i);
        }
        out
    }
}

/// A dense membership index over a [`GridRect`]: `O(1)` `contains`, insert
/// and remove for points of a bounded grid region, packed 64 cells per word.
#[derive(Clone, Debug)]
pub struct GridIndex {
    rect: GridRect,
    words: Vec<u64>,
    len: usize,
}

impl GridIndex {
    /// An empty index over the given rectangle.
    pub fn empty(rect: GridRect) -> GridIndex {
        GridIndex {
            rect,
            words: vec![0u64; rect.cells().div_ceil(64)],
            len: 0,
        }
    }

    /// Indexes a non-empty shape over its bounding box expanded by `margin`.
    /// Returns `None` for the empty shape.
    pub fn of_shape(shape: &Shape, margin: u32) -> Option<GridIndex> {
        let rect = GridRect::of_shape(shape, margin)?;
        let mut index = GridIndex::empty(rect);
        for p in shape.iter() {
            index.insert(p);
        }
        Some(index)
    }

    /// The underlying rectangle.
    pub fn rect(&self) -> &GridRect {
        &self.rect
    }

    /// Number of member points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index has no member points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `p` is a member. Points outside the rectangle are non-members.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        match self.rect.cell(p) {
            Some(cell) => self.contains_cell(cell),
            None => false,
        }
    }

    /// Whether the cell id is a member.
    #[inline]
    pub fn contains_cell(&self, cell: usize) -> bool {
        (self.words[cell >> 6] >> (cell & 63)) & 1 == 1
    }

    /// Inserts a point; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside the rectangle.
    pub fn insert(&mut self, p: Point) -> bool {
        let cell = self
            .rect
            .cell(p)
            .expect("point outside the indexed rectangle");
        let (word, bit) = (cell >> 6, cell & 63);
        let newly = (self.words[word] >> bit) & 1 == 0;
        self.words[word] |= 1 << bit;
        self.len += usize::from(newly);
        newly
    }

    /// Removes a point; returns whether it was present.
    pub fn remove(&mut self, p: Point) -> bool {
        let Some(cell) = self.rect.cell(p) else {
            return false;
        };
        let (word, bit) = (cell >> 6, cell & 63);
        let present = (self.words[word] >> bit) & 1 == 1;
        self.words[word] &= !(1 << bit);
        self.len -= usize::from(present);
        present
    }

    /// The membership mask of the six neighbours of `p`, indexed by clockwise
    /// direction.
    #[inline]
    pub fn neighbor_mask(&self, p: Point) -> [bool; 6] {
        let mut mask = [false; 6];
        for (i, d) in DIRECTIONS.iter().enumerate() {
            mask[i] = self.contains(p.neighbor(*d));
        }
        mask
    }

    /// Iterates over the member points in row-major (`r`, then `q`) order.
    ///
    /// Note this is **not** the lexicographic `(q, r)` order of
    /// [`Shape::iter`]; callers that need the deterministic shape order
    /// should iterate the shape.
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.rect.cells())
            .filter(|cell| self.contains_cell(*cell))
            .map(|cell| self.rect.point(cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::Direction;

    #[test]
    fn rect_cell_roundtrip_and_bounds() {
        let rect = GridRect::new(Point::new(-3, 2), Point::new(4, 6));
        assert_eq!(rect.width(), 8);
        assert_eq!(rect.height(), 5);
        assert_eq!(rect.cells(), 40);
        assert_eq!(rect.min(), Point::new(-3, 2));
        assert_eq!(rect.max(), Point::new(4, 6));
        for cell in 0..rect.cells() {
            let p = rect.point(cell);
            assert!(rect.in_bounds(p));
            assert_eq!(rect.cell(p), Some(cell));
        }
        assert_eq!(rect.cell(Point::new(-4, 2)), None);
        assert_eq!(rect.cell(Point::new(5, 2)), None);
        assert_eq!(rect.cell(Point::new(0, 1)), None);
        assert_eq!(rect.cell(Point::new(0, 7)), None);
    }

    #[test]
    fn direction_offsets_match_point_arithmetic() {
        let rect = GridRect::new(Point::new(-2, -2), Point::new(5, 5));
        let offsets = rect.direction_offsets();
        // For an interior cell, every neighbour's cell id is the cell id plus
        // the direction's constant offset.
        let p = Point::new(1, 1);
        let cell = rect.cell(p).unwrap() as isize;
        for (i, d) in crate::DIRECTIONS.iter().enumerate() {
            let n = p.neighbor(*d);
            assert_eq!(rect.cell(n).unwrap() as isize, cell + offsets[i], "{d:?}");
        }
    }

    #[test]
    fn index_contains_matches_shape() {
        let shape = Shape::from_points(Point::ORIGIN.ball(4));
        let index = GridIndex::of_shape(&shape, 1).unwrap();
        assert_eq!(index.len(), shape.len());
        for q in -7..=7 {
            for r in -7..=7 {
                let p = Point::new(q, r);
                assert_eq!(index.contains(p), shape.contains(p), "at {p}");
            }
        }
        // Far outside the rectangle: not a member, no panic.
        assert!(!index.contains(Point::new(1000, -1000)));
    }

    #[test]
    fn insert_remove_update_len() {
        let rect = GridRect::new(Point::new(0, 0), Point::new(3, 3));
        let mut index = GridIndex::empty(rect);
        assert!(index.is_empty());
        assert!(index.insert(Point::new(1, 1)));
        assert!(!index.insert(Point::new(1, 1)));
        assert_eq!(index.len(), 1);
        assert!(index.remove(Point::new(1, 1)));
        assert!(!index.remove(Point::new(1, 1)));
        assert!(!index.remove(Point::new(100, 100)));
        assert!(index.is_empty());
    }

    #[test]
    fn neighbor_mask_matches_membership() {
        let shape = Shape::from_points([Point::new(0, 0), Point::new(1, 0), Point::new(0, 1)]);
        let index = GridIndex::of_shape(&shape, 1).unwrap();
        let mask = index.neighbor_mask(Point::new(0, 0));
        assert!(mask[Direction::E.index()]);
        assert!(mask[Direction::SE.index()]);
        assert_eq!(mask.iter().filter(|m| **m).count(), 2);
    }

    #[test]
    fn iter_visits_every_member_once() {
        let shape = Shape::from_points(Point::ORIGIN.ball(3));
        let index = GridIndex::of_shape(&shape, 2).unwrap();
        let mut seen: Vec<Point> = index.iter().collect();
        assert_eq!(seen.len(), shape.len());
        seen.sort();
        let mut expected: Vec<Point> = shape.iter().collect();
        expected.sort();
        assert_eq!(seen, expected);
    }

    #[test]
    fn empty_shape_has_no_index() {
        assert!(GridIndex::of_shape(&Shape::new(), 1).is_none());
        assert!(GridRect::of_shape(&Shape::new(), 1).is_none());
    }
}
