//! Erosion predicates and the centralized erosion process (Section 2.1).
//!
//! A point `v ∈ S` is *redundant* if its removal does not disconnect its
//! one-hop neighbourhood in `S`; equivalently (Proposition 6), `v` has a
//! single local boundary. If `v` is also on the outer boundary of `S` it is
//! *erodable*, and if in addition it is strictly convex with respect to that
//! local boundary it is *strictly convex and erodable* (SCE). Iteratively
//! removing SCE points (the *erosion process*) reduces any simply-connected
//! shape to a single point (Observation 5 and Proposition 7), which is the
//! engine behind Algorithm DLE.

use crate::boundary::LocalBoundary;
use crate::coords::{Point, DIRECTIONS};
use crate::shape::{Shape, ShapeAnalysis};

/// Whether the six neighbour-membership flags (indexed by clockwise port
/// order) describe a point with a **single** local boundary, i.e. a redundant
/// boundary point, purely from local information.
///
/// `membership[i]` must be `true` iff the neighbour in direction `i` belongs
/// to the point set under consideration. Returns `false` for an interior
/// point (no empty neighbour at all) and `true` for an isolated point.
///
/// This is the local test a particle can evaluate from its own memory (its
/// `eligible` flags in Algorithm DLE).
pub fn has_single_local_boundary(membership: &[bool; 6]) -> bool {
    let empty_runs = cyclic_runs_of_false(membership);
    empty_runs == 1 || membership.iter().all(|m| !m)
}

/// Whether the six neighbour-membership flags describe a strictly convex and
/// erodable (SCE) point of a **simply-connected** point set, purely from
/// local information: exactly one cyclic run of out-of-set directions, of
/// length at least three (boundary count ≥ 1).
///
/// For a simply-connected set every local boundary is a local outer boundary,
/// so this local test coincides with the global SCE definition — this is
/// exactly the test particles perform in Algorithm DLE against the eligible
/// set `S_e`, which is simply-connected throughout (Lemma 11).
pub fn local_sce(membership: &[bool; 6]) -> bool {
    let out_count = membership.iter().filter(|m| !**m).count();
    if out_count == 6 || out_count < 3 {
        // An isolated point is not SCE (it is the leader case), and a point
        // with fewer than three outside neighbours has boundary count <= 0.
        return false;
    }
    cyclic_runs_of_false(membership) == 1
}

/// Number of maximal cyclic runs of `false` values in the array.
fn cyclic_runs_of_false(membership: &[bool; 6]) -> usize {
    let mut runs = 0;
    for i in 0..6 {
        let prev = (i + 5) % 6;
        if !membership[i] && membership[prev] {
            runs += 1;
        }
    }
    if runs == 0 && membership.iter().all(|m| !*m) {
        1
    } else {
        runs
    }
}

/// Builds the neighbour-membership mask of `p` with respect to `shape`.
pub fn membership_mask(shape: &Shape, p: Point) -> [bool; 6] {
    let mut mask = [false; 6];
    for (i, d) in DIRECTIONS.iter().enumerate() {
        mask[i] = shape.contains(p.neighbor(*d));
    }
    mask
}

/// Whether `p` is a *redundant* point of `shape`: removing it does not
/// disconnect its one-hop neighbourhood (equivalently, `p` has at most one
/// local boundary — Proposition 6).
pub fn is_redundant(shape: &Shape, p: Point) -> bool {
    if !shape.contains(p) {
        return false;
    }
    let lbs = LocalBoundary::of_point(shape, p);
    lbs.len() <= 1
}

/// Whether `p` is an *erodable* point of `shape`: redundant and on the outer
/// boundary (its unique local boundary leads to the outer face).
///
/// `analysis` must be the analysis of `shape`.
pub fn is_erodable(shape: &Shape, analysis: &ShapeAnalysis, p: Point) -> bool {
    if !shape.contains(p) {
        return false;
    }
    let lbs = LocalBoundary::of_point(shape, p);
    match lbs.as_slice() {
        [only] => only
            .outside_points()
            .all(|out| analysis.is_outer_face_point(out)),
        _ => false,
    }
}

/// Whether `p` is a *strictly convex and erodable* (SCE) point of `shape`.
pub fn is_sce(shape: &Shape, analysis: &ShapeAnalysis, p: Point) -> bool {
    if !is_erodable(shape, analysis, p) {
        return false;
    }
    let lbs = LocalBoundary::of_point(shape, p);
    lbs.len() == 1 && lbs[0].is_strictly_convex()
}

/// All SCE points of the shape, in deterministic order.
pub fn sce_points(shape: &Shape) -> Vec<Point> {
    let analysis = shape.analyze();
    shape
        .iter()
        .filter(|p| is_sce(shape, &analysis, *p))
        .collect()
}

/// A centralized erosion process: repeatedly removes SCE points from a
/// simply-connected shape until a single point remains.
///
/// This is the geometric core of Algorithm DLE, run by an omniscient
/// controller; it is used to validate Proposition 7 / Observation 5, as a
/// reference for the distributed implementation, and by the erosion-only
/// baseline algorithm.
///
/// ```
/// use pm_grid::{ErosionProcess, Point, Shape};
/// let shape = Shape::from_points(Point::ORIGIN.ball(3));
/// let mut erosion = ErosionProcess::new(shape);
/// let last = erosion.run().expect("simply-connected shapes erode to a point");
/// assert_eq!(erosion.current().len(), 1);
/// assert!(erosion.removal_order().len() > 0);
/// assert!(Point::ORIGIN.grid_distance(last) <= 3);
/// ```
#[derive(Clone, Debug)]
pub struct ErosionProcess {
    current: Shape,
    removal_order: Vec<Point>,
    sweeps: usize,
}

impl ErosionProcess {
    /// Starts an erosion process on the given shape.
    pub fn new(shape: Shape) -> ErosionProcess {
        ErosionProcess {
            current: shape,
            removal_order: Vec::new(),
            sweeps: 0,
        }
    }

    /// The current (partially eroded) shape.
    pub fn current(&self) -> &Shape {
        &self.current
    }

    /// The points removed so far, in removal order.
    pub fn removal_order(&self) -> &[Point] {
        &self.removal_order
    }

    /// Number of sweeps executed so far (a sweep visits every current point
    /// once, in deterministic order, eroding it if it is SCE at that moment —
    /// a sequential stand-in for one asynchronous round of parallel erosion).
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Removes a single SCE point (the smallest in point order), if any.
    /// Returns the removed point.
    pub fn step(&mut self) -> Option<Point> {
        let analysis = self.current.analyze();
        let candidate = self
            .current
            .iter()
            .find(|p| is_sce(&self.current, &analysis, *p))?;
        self.current.remove(candidate);
        self.removal_order.push(candidate);
        Some(candidate)
    }

    /// Performs one *sweep*: visits every current point in deterministic
    /// order and erodes it if it is SCE at the moment it is visited. Returns
    /// the number of points eroded during the sweep.
    pub fn sweep(&mut self) -> usize {
        self.sweeps += 1;
        let points: Vec<Point> = self.current.iter().collect();
        let mut removed = 0;
        for p in points {
            if self.current.len() <= 1 {
                break;
            }
            // Re-analyse lazily: SCE only depends on the 2-hop neighbourhood,
            // but outer-boundary membership can change globally, so we
            // recompute the analysis when a removal happened.
            let analysis = self.current.analyze();
            if is_sce(&self.current, &analysis, p) {
                self.current.remove(p);
                self.removal_order.push(p);
                removed += 1;
            }
        }
        removed
    }

    /// Runs the erosion until a single point remains; returns that point.
    ///
    /// Returns `None` if the shape was empty, or if the process gets stuck
    /// (which happens exactly when the current shape is not simply-connected
    /// — erosion cannot pierce holes).
    pub fn run(&mut self) -> Option<Point> {
        while self.current.len() > 1 {
            if self.sweep() == 0 {
                return None;
            }
        }
        self.current.first_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_predicates_match_masks() {
        // Single run of 3 empty directions -> SCE.
        let mask = [true, true, true, false, false, false];
        assert!(has_single_local_boundary(&mask));
        assert!(local_sce(&mask));
        // Two separate runs -> not redundant.
        let mask = [false, true, false, true, true, true];
        assert!(!has_single_local_boundary(&mask));
        assert!(!local_sce(&mask));
        // Single empty direction -> redundant but not strictly convex.
        let mask = [true, true, true, true, true, false];
        assert!(has_single_local_boundary(&mask));
        assert!(!local_sce(&mask));
        // Interior point.
        let mask = [true; 6];
        assert!(!local_sce(&mask));
        // Isolated point: single boundary but not SCE (leader case).
        let mask = [false; 6];
        assert!(has_single_local_boundary(&mask));
        assert!(!local_sce(&mask));
    }

    #[test]
    fn global_and_local_sce_agree_on_simply_connected_shapes() {
        let mut shape = Shape::from_points(Point::ORIGIN.ball(3));
        // Carve a notch to make it less regular (still simply-connected).
        shape.remove(Point::new(3, 0));
        shape.remove(Point::new(2, 1));
        let analysis = shape.analyze();
        assert!(shape.is_simply_connected());
        for p in shape.iter() {
            let mask = membership_mask(&shape, p);
            assert_eq!(
                is_sce(&shape, &analysis, p),
                local_sce(&mask),
                "mismatch at {p:?}"
            );
        }
    }

    #[test]
    fn proposition_7_every_simply_connected_shape_has_an_sce_point() {
        // Check a few representative simply-connected shapes with >= 2 points.
        let shapes = vec![
            Shape::from_points((0..7).map(|i| Point::new(i, 0))),
            Shape::from_points(Point::ORIGIN.ball(2)),
            Shape::from_points([
                Point::new(0, 0),
                Point::new(1, 0),
                Point::new(1, 1),
                Point::new(0, 2),
            ]),
        ];
        for s in shapes {
            assert!(s.is_simply_connected());
            assert!(
                !sce_points(&s).is_empty(),
                "Proposition 7 violated for {s:?}"
            );
        }
    }

    #[test]
    fn observation_5_erosion_preserves_simple_connectivity() {
        let shape = Shape::from_points(Point::ORIGIN.ball(3));
        let mut erosion = ErosionProcess::new(shape);
        while erosion.current().len() > 1 {
            assert!(erosion.current().is_simply_connected());
            assert!(erosion.current().is_connected());
            erosion.step().expect("an SCE point must exist");
        }
        assert_eq!(erosion.current().len(), 1);
    }

    #[test]
    fn erosion_runs_to_single_point_on_hexagon() {
        let shape = Shape::from_points(Point::ORIGIN.ball(4));
        let n = shape.len();
        let mut erosion = ErosionProcess::new(shape);
        let last = erosion.run().unwrap();
        assert_eq!(erosion.removal_order().len(), n - 1);
        assert!(!erosion.removal_order().contains(&last));
    }

    #[test]
    fn erosion_gets_stuck_on_annulus() {
        // A shape with a hole cannot be eroded to a point: erosion works on
        // the outer boundary only and stalls once only the hole's wall
        // remains without SCE points on it... in fact the annulus erodes its
        // outer layers and then stalls when the remaining ring has no point
        // with a single local boundary.
        let mut shape = Shape::from_points(Point::ORIGIN.ball(3));
        for p in Point::ORIGIN.ball(1) {
            shape.remove(p);
        }
        let mut erosion = ErosionProcess::new(shape);
        assert!(erosion.run().is_none());
        assert!(erosion.current().len() > 1);
    }

    #[test]
    fn erodable_requires_outer_boundary() {
        // Points only adjacent to a hole are not erodable even if redundant.
        let mut shape = Shape::from_points(Point::ORIGIN.ball(3));
        shape.remove(Point::ORIGIN);
        let analysis = shape.analyze();
        // A ring-1 point is adjacent to the hole; it has one local boundary
        // towards the hole and none towards the outer face, so it is
        // redundant but not erodable.
        let p = Point::new(1, 0);
        assert!(is_redundant(&shape, p));
        assert!(!is_erodable(&shape, &analysis, p));
        assert!(!is_sce(&shape, &analysis, p));
        // An outer corner is SCE.
        let corner = Point::new(3, 0);
        assert!(is_sce(&shape, &analysis, corner));
    }

    #[test]
    fn sweep_counts_rounds() {
        let shape = Shape::from_points(Point::ORIGIN.ball(3));
        let mut erosion = ErosionProcess::new(shape);
        erosion.run().unwrap();
        assert!(erosion.sweeps() >= 1);
        // A ball of radius r erodes in O(r) sweeps (each sweep peels at least
        // the convex corners; in practice a whole layer or more).
        assert!(erosion.sweeps() <= 16);
    }
}
