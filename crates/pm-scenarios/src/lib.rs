//! Declarative scenarios for the leader-election workspace.
//!
//! The paper's evaluation (Table 1) sweeps algorithms across shape families
//! and variant knobs; this crate turns that axis into *data*:
//!
//! * [`generators`] — the shape registry: a serializable [`GeneratorSpec`]
//!   naming every workload family (deterministic and seeded-random), and the
//!   single re-export surface for the underlying builder functions.
//! * [`spec`] — [`ScenarioSpec`]: one election run as a JSON value (shape,
//!   algorithm, scheduler, [`RunOptions`](pm_core::api::RunOptions) knobs,
//!   perturbation script).
//! * [`perturb`] — mid-run fault injection: remove-k-at-round-r and
//!   split-along-a-column events with reset-and-recover semantics, fired by
//!   a caller-side driver loop over the steppable
//!   [`Execution`](pm_core::api::Execution) handle.
//! * [`script`] — [`ScenarioScript`]: the combined adversary of one run
//!   (perturbation script plus the generalised `pm_faults::FaultPlan`),
//!   driven by the same caller-side loop.
//! * [`family`] — scenario families: [`FamilySpec`] parameter grids
//!   (sizes × seeds) that expand into concrete scenarios at load time.
//! * [`corpus`] — the committed scenario corpus (`corpus/scenarios.json`,
//!   concrete scenarios plus family grids) and suite selection.
//! * [`runner`] — drives suites through `pm_core::batch::BatchRunner` and
//!   serializes the per-scenario [`RunReport`](pm_core::api::RunReport)s.
//!
//! The `pm-scenarios` binary (owned by the `pm-server` crate, next to the
//! session server's `serve`/`client` subcommands) exposes all of it on the
//! command line:
//!
//! ```text
//! pm-scenarios list                 # every scenario of the corpus
//! pm-scenarios render smoke-annulus # ASCII-render a scenario's shape
//! pm-scenarios run smoke            # run a suite, emit RunReport JSON
//! ```

pub mod corpus;
pub mod family;
pub mod generators;
pub mod perturb;
pub mod runner;
pub mod script;
pub mod spec;

pub use corpus::{builtin_corpus, builtin_entries, load_embedded, load_file, select, suite_tags};
pub use family::{CorpusEntry, FamilySpec};
pub use generators::GeneratorSpec;
pub use perturb::{PerturbationScript, PerturbationSpec};
pub use runner::{report_json, run_suite, ScenarioReport};
pub use script::ScenarioScript;
pub use spec::{AlgorithmSpec, ScenarioSpec};
