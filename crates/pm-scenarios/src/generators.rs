//! The generator registry: every workload shape the workspace can build,
//! behind one serializable enum.
//!
//! [`GeneratorSpec`] is the declarative form — a JSON-roundtrippable value
//! naming a shape family and its parameters — and [`GeneratorSpec::build`]
//! is the single place shapes are constructed. The underlying functions live
//! in `pm_grid::builder` (deterministic families) and `pm_grid::random`
//! (seeded random families) and are re-exported here so that callers that
//! want a bare function (`pm-analysis` workloads, tests) and callers that
//! want data (the corpus, the CLI) share exactly one source of shapes.

pub use pm_grid::builder::{
    annulus, comb, dumbbell, hexagon, line, parallelogram, parse_ascii, spiral, swiss_cheese,
    to_ascii,
};
pub use pm_grid::random::{
    caterpillar, k_hole_hexagon, random_blob, random_holey_hexagon, random_simply_connected_blob,
};

use pm_grid::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A declarative, serializable description of a workload shape.
///
/// Every variant is deterministic given its parameters (random families take
/// an explicit seed), so a spec pins a shape exactly — across runs, machines
/// and thread counts. Sizes are validated loosely by [`GeneratorSpec::build`]
/// (degenerate parameters are clamped to the smallest valid instance rather
/// than panicking, so arbitrary deserialized specs are safe to build).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeneratorSpec {
    /// A straight line of `n` points.
    Line { n: u32 },
    /// A filled hexagonal ball (`3r(r+1)+1` points).
    Hexagon { radius: u32 },
    /// A filled parallelogram (rhombus).
    Parallelogram { width: u32, height: u32 },
    /// A hexagonal ball minus a concentric ball (`inner < outer`; one hole).
    Annulus { outer: u32, inner: u32 },
    /// A hexagon with a regular pattern of single-point holes.
    SwissCheese { radius: u32, spacing: u32 },
    /// A spine with teeth every other point (large diameter per point).
    Comb { teeth: u32, tooth_len: u32 },
    /// The first `n` points of the hexagonal spiral order.
    Spiral { n: u32 },
    /// Two balls joined by a thin corridor (diameter stress test).
    Dumbbell { radius: u32, corridor: u32 },
    /// A line spine with seeded random teeth of length `0..=max_tooth`.
    Caterpillar {
        spine: u32,
        max_tooth: u32,
        seed: u64,
    },
    /// A random Eden-growth blob of exactly `n` points (may contain holes).
    RandomBlob { n: u32, seed: u64 },
    /// A random blob with its holes filled (at least `n` points).
    SimplyConnectedBlob { n: u32, seed: u64 },
    /// A hexagon with ~`hole_pct`% of its points punched as single-point
    /// holes (the percentage is an integer so specs stay exactly
    /// JSON-roundtrippable).
    HoleyHexagon {
        radius: u32,
        hole_pct: u32,
        seed: u64,
    },
    /// A hexagon with exactly `holes` single-point holes.
    KHoleHexagon { radius: u32, holes: u32, seed: u64 },
}

/// The number of shape families in the registry.
pub const FAMILY_COUNT: usize = 13;

impl GeneratorSpec {
    /// Builds the shape. Degenerate parameters (zero sizes, `inner >=
    /// outer`) are clamped to the smallest valid instance, so any
    /// deserialized spec builds a non-empty connected shape.
    pub fn build(&self) -> Shape {
        match *self {
            GeneratorSpec::Line { n } => line(n.max(1)),
            GeneratorSpec::Hexagon { radius } => hexagon(radius),
            GeneratorSpec::Parallelogram { width, height } => {
                parallelogram(width.max(1), height.max(1))
            }
            GeneratorSpec::Annulus { outer, inner } => {
                let outer = outer.max(1);
                annulus(outer, inner.min(outer - 1))
            }
            GeneratorSpec::SwissCheese { radius, spacing } => swiss_cheese(radius, spacing),
            GeneratorSpec::Comb { teeth, tooth_len } => comb(teeth.max(1), tooth_len),
            GeneratorSpec::Spiral { n } => spiral(n.max(1)),
            GeneratorSpec::Dumbbell { radius, corridor } => dumbbell(radius, corridor),
            GeneratorSpec::Caterpillar {
                spine,
                max_tooth,
                seed,
            } => caterpillar(spine.max(1), max_tooth, seed),
            GeneratorSpec::RandomBlob { n, seed } => random_blob(n.max(1) as usize, seed),
            GeneratorSpec::SimplyConnectedBlob { n, seed } => {
                random_simply_connected_blob(n.max(1) as usize, seed)
            }
            GeneratorSpec::HoleyHexagon {
                radius,
                hole_pct,
                seed,
            } => random_holey_hexagon(radius, f64::from(hole_pct.min(40)) / 100.0, seed),
            GeneratorSpec::KHoleHexagon {
                radius,
                holes,
                seed,
            } => k_hole_hexagon(radius, holes, seed),
        }
    }

    /// The family name (stable identifiers for the CLI and reports).
    pub fn family(&self) -> &'static str {
        match self {
            GeneratorSpec::Line { .. } => "line",
            GeneratorSpec::Hexagon { .. } => "hexagon",
            GeneratorSpec::Parallelogram { .. } => "parallelogram",
            GeneratorSpec::Annulus { .. } => "annulus",
            GeneratorSpec::SwissCheese { .. } => "swiss-cheese",
            GeneratorSpec::Comb { .. } => "comb",
            GeneratorSpec::Spiral { .. } => "spiral",
            GeneratorSpec::Dumbbell { .. } => "dumbbell",
            GeneratorSpec::Caterpillar { .. } => "caterpillar",
            GeneratorSpec::RandomBlob { .. } => "random-blob",
            GeneratorSpec::SimplyConnectedBlob { .. } => "simply-connected-blob",
            GeneratorSpec::HoleyHexagon { .. } => "holey-hexagon",
            GeneratorSpec::KHoleHexagon { .. } => "k-hole-hexagon",
        }
    }

    /// All family names, in [`GeneratorSpec::sample`] index order.
    pub fn families() -> [&'static str; FAMILY_COUNT] {
        [
            "line",
            "hexagon",
            "parallelogram",
            "annulus",
            "swiss-cheese",
            "comb",
            "spiral",
            "dumbbell",
            "caterpillar",
            "random-blob",
            "simply-connected-blob",
            "holey-hexagon",
            "k-hole-hexagon",
        ]
    }

    /// A valid spec of the family with the given index (`family %
    /// FAMILY_COUNT`), scaled by `size >= 1`, seeded by `seed` — the uniform
    /// entry point property tests use to sweep the whole registry.
    pub fn sample(family: usize, size: u32, seed: u64) -> GeneratorSpec {
        let size = size.max(1);
        match family % FAMILY_COUNT {
            0 => GeneratorSpec::Line { n: size },
            1 => GeneratorSpec::Hexagon { radius: size },
            2 => GeneratorSpec::Parallelogram {
                width: size,
                height: (size / 2).max(1),
            },
            3 => GeneratorSpec::Annulus {
                outer: size + 1,
                inner: size / 2,
            },
            4 => GeneratorSpec::SwissCheese {
                radius: size,
                spacing: 2 + (seed % 3) as u32,
            },
            5 => GeneratorSpec::Comb {
                teeth: size,
                tooth_len: (size / 2).max(1),
            },
            6 => GeneratorSpec::Spiral { n: 3 * size + 1 },
            7 => GeneratorSpec::Dumbbell {
                radius: (size / 2).max(1),
                corridor: size,
            },
            8 => GeneratorSpec::Caterpillar {
                spine: size + 1,
                max_tooth: (size / 3).max(1),
                seed,
            },
            9 => GeneratorSpec::RandomBlob {
                n: 3 * size + 1,
                seed,
            },
            10 => GeneratorSpec::SimplyConnectedBlob {
                n: 3 * size + 1,
                seed,
            },
            11 => GeneratorSpec::HoleyHexagon {
                radius: size,
                hole_pct: (seed % 20) as u32,
                seed,
            },
            _ => GeneratorSpec::KHoleHexagon {
                radius: size,
                holes: (size / 2).max(1),
                seed,
            },
        }
    }

    /// An upper bound on the grid distance of any shape point from the
    /// origin region — the "in-bounds" contract property tests check, so a
    /// buggy generator cannot silently scatter points across the grid.
    pub fn radius_bound(&self) -> u32 {
        match *self {
            GeneratorSpec::Line { n } => n.max(1),
            GeneratorSpec::Hexagon { radius } => radius + 1,
            GeneratorSpec::Parallelogram { width, height } => width.max(1) + height.max(1),
            GeneratorSpec::Annulus { outer, .. } => outer.max(1) + 1,
            GeneratorSpec::SwissCheese { radius, .. } => radius + 1,
            GeneratorSpec::Comb { teeth, tooth_len } => 2 * teeth.max(1) + tooth_len + 1,
            GeneratorSpec::Spiral { n } => n.max(1),
            GeneratorSpec::Dumbbell { radius, corridor } => 3 * radius + corridor + 2,
            GeneratorSpec::Caterpillar {
                spine, max_tooth, ..
            } => spine.max(1) + max_tooth + 1,
            GeneratorSpec::RandomBlob { n, .. } => n.max(1),
            GeneratorSpec::SimplyConnectedBlob { n, .. } => n.max(1),
            GeneratorSpec::HoleyHexagon { radius, .. } => radius + 1,
            GeneratorSpec::KHoleHexagon { radius, .. } => radius + 1,
        }
    }
}

impl fmt::Display for GeneratorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GeneratorSpec::Line { n } => write!(f, "line({n})"),
            GeneratorSpec::Hexagon { radius } => write!(f, "hexagon({radius})"),
            GeneratorSpec::Parallelogram { width, height } => {
                write!(f, "parallelogram({width},{height})")
            }
            GeneratorSpec::Annulus { outer, inner } => write!(f, "annulus({outer},{inner})"),
            GeneratorSpec::SwissCheese { radius, spacing } => {
                write!(f, "swiss-cheese({radius},{spacing})")
            }
            GeneratorSpec::Comb { teeth, tooth_len } => write!(f, "comb({teeth},{tooth_len})"),
            GeneratorSpec::Spiral { n } => write!(f, "spiral({n})"),
            GeneratorSpec::Dumbbell { radius, corridor } => {
                write!(f, "dumbbell({radius},{corridor})")
            }
            GeneratorSpec::Caterpillar {
                spine,
                max_tooth,
                seed,
            } => write!(f, "caterpillar({spine},{max_tooth};{seed})"),
            GeneratorSpec::RandomBlob { n, seed } => write!(f, "random-blob({n};{seed})"),
            GeneratorSpec::SimplyConnectedBlob { n, seed } => {
                write!(f, "sc-blob({n};{seed})")
            }
            GeneratorSpec::HoleyHexagon {
                radius,
                hole_pct,
                seed,
            } => write!(f, "holey-hexagon({radius},{hole_pct}%;{seed})"),
            GeneratorSpec::KHoleHexagon {
                radius,
                holes,
                seed,
            } => write!(f, "k-hole-hexagon({radius},{holes};{seed})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_is_sampleable_and_buildable() {
        for (i, family) in GeneratorSpec::families().iter().enumerate() {
            let spec = GeneratorSpec::sample(i, 4, 7);
            assert_eq!(spec.family(), *family, "family order mismatch at {i}");
            let shape = spec.build();
            assert!(!shape.is_empty(), "{spec} is empty");
            assert!(shape.is_connected(), "{spec} is disconnected");
        }
    }

    #[test]
    fn degenerate_specs_clamp_instead_of_panicking() {
        for spec in [
            GeneratorSpec::Line { n: 0 },
            GeneratorSpec::Hexagon { radius: 0 },
            GeneratorSpec::Parallelogram {
                width: 0,
                height: 0,
            },
            GeneratorSpec::Annulus { outer: 0, inner: 9 },
            GeneratorSpec::Spiral { n: 0 },
            GeneratorSpec::RandomBlob { n: 0, seed: 1 },
            GeneratorSpec::HoleyHexagon {
                radius: 1,
                hole_pct: 100,
                seed: 1,
            },
        ] {
            let shape = spec.build();
            assert!(!shape.is_empty(), "{spec}");
            assert!(shape.is_connected(), "{spec}");
        }
    }

    #[test]
    fn display_labels_are_stable() {
        assert_eq!(
            GeneratorSpec::Hexagon { radius: 5 }.to_string(),
            "hexagon(5)"
        );
        assert_eq!(
            GeneratorSpec::RandomBlob { n: 40, seed: 3 }.to_string(),
            "random-blob(40;3)"
        );
    }
}
