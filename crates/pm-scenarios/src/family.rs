//! Scenario *families*: parameter grids that expand into concrete
//! scenarios at load time.
//!
//! A [`FamilySpec`] names one generator family from the registry
//! ([`GeneratorSpec::families`]) and a small `sizes × seeds` grid; loading
//! the corpus expands it into one [`ScenarioSpec`] per grid point via
//! [`GeneratorSpec::sample`]. Sweeps therefore live in the corpus as *one*
//! entry instead of one entry per instance, and growing a sweep is a data
//! edit, not code.

use crate::generators::GeneratorSpec;
use crate::perturb::PerturbationSpec;
use crate::spec::{AlgorithmSpec, ScenarioSpec};
use pm_core::api::RunOptions;
use pm_core::batch::SchedulerSpec;
use pm_faults::FaultSpec;
use serde::{Deserialize, Serialize};

/// One entry of the committed corpus: a concrete scenario, or a family that
/// expands into a grid of scenarios at load time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CorpusEntry {
    /// A single fully specified scenario.
    Scenario(ScenarioSpec),
    /// A parameter grid expanding into scenarios (see [`FamilySpec`]).
    Family(FamilySpec),
}

impl CorpusEntry {
    /// Expands the entry into its concrete scenarios.
    ///
    /// # Errors
    ///
    /// A family naming an unknown generator family or an empty grid is
    /// rejected (see [`FamilySpec::expand`]).
    pub fn expand(&self) -> Result<Vec<ScenarioSpec>, String> {
        match self {
            CorpusEntry::Scenario(spec) => Ok(vec![spec.clone()]),
            CorpusEntry::Family(family) => family.expand(),
        }
    }
}

/// A scenario family: one generator family swept over a `sizes × seeds`
/// grid, sharing algorithm, scheduler, options, tags and perturbation
/// script across all instances.
///
/// Expansion is deterministic: instance `(size, seed)` is named
/// `{name}-n{size}-s{seed}` and built by
/// [`GeneratorSpec::sample`]`(family, size, seed)`, so a family pins its
/// shapes exactly as strongly as per-instance entries would.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FamilySpec {
    /// Base name; instances append `-n{size}-s{seed}`.
    pub name: String,
    /// Suite tags shared by every instance.
    pub tags: Vec<String>,
    /// Generator family name (one of [`GeneratorSpec::families`]).
    pub family: String,
    /// Size axis of the grid (must be non-empty).
    pub sizes: Vec<u32>,
    /// Seed axis of the grid; an empty list means the single seed 0
    /// (deterministic families ignore the seed anyway).
    pub seeds: Vec<u64>,
    /// The algorithm every instance runs.
    pub algorithm: AlgorithmSpec,
    /// The scheduler every instance runs under.
    pub scheduler: SchedulerSpec,
    /// Run options shared by every instance.
    pub options: RunOptions,
    /// Perturbation script shared by every instance.
    pub perturbations: Vec<PerturbationSpec>,
    /// Fault plan shared by every instance (empty = fault-free).
    pub faults: FaultSpec,
}

impl FamilySpec {
    /// A family with the default algorithm (paper pipeline), the default
    /// measurement scheduler (`SeededRandom(7)`), default options, seed 0,
    /// no tags and no perturbations.
    pub fn new(name: impl Into<String>, family: impl Into<String>) -> FamilySpec {
        FamilySpec {
            name: name.into(),
            tags: Vec::new(),
            family: family.into(),
            sizes: Vec::new(),
            seeds: Vec::new(),
            algorithm: AlgorithmSpec::Pipeline,
            scheduler: SchedulerSpec::SeededRandom(7),
            options: RunOptions::default(),
            perturbations: Vec::new(),
            faults: FaultSpec::default(),
        }
    }

    /// Adds a suite tag.
    pub fn tag(mut self, tag: &str) -> FamilySpec {
        self.tags.push(tag.to_string());
        self
    }

    /// Sets the size axis.
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = u32>) -> FamilySpec {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Sets the seed axis.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> FamilySpec {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Selects the algorithm.
    pub fn algorithm(mut self, algorithm: AlgorithmSpec) -> FamilySpec {
        self.algorithm = algorithm;
        self
    }

    /// Selects the scheduler.
    pub fn scheduler(mut self, scheduler: SchedulerSpec) -> FamilySpec {
        self.scheduler = scheduler;
        self
    }

    /// Replaces the run options.
    pub fn options(mut self, options: RunOptions) -> FamilySpec {
        self.options = options;
        self
    }

    /// Appends a perturbation event to the shared script.
    pub fn perturb(mut self, perturbation: PerturbationSpec) -> FamilySpec {
        self.perturbations.push(perturbation);
        self
    }

    /// Replaces the shared fault plan.
    pub fn faults(mut self, faults: FaultSpec) -> FamilySpec {
        self.faults = faults;
        self
    }

    /// Expands the grid into concrete scenarios, sizes-major.
    ///
    /// # Errors
    ///
    /// An unknown generator family name or an empty size axis.
    pub fn expand(&self) -> Result<Vec<ScenarioSpec>, String> {
        let index = GeneratorSpec::families()
            .iter()
            .position(|f| *f == self.family)
            .ok_or_else(|| {
                format!(
                    "family `{}`: unknown generator family `{}` (known: {})",
                    self.name,
                    self.family,
                    GeneratorSpec::families().join(", ")
                )
            })?;
        if self.sizes.is_empty() {
            return Err(format!("family `{}`: empty size axis", self.name));
        }
        let default_seeds = [0u64];
        let seeds: &[u64] = if self.seeds.is_empty() {
            &default_seeds
        } else {
            &self.seeds
        };
        let mut out = Vec::with_capacity(self.sizes.len() * seeds.len());
        for &size in &self.sizes {
            for &seed in seeds {
                out.push(ScenarioSpec {
                    name: format!("{}-n{size}-s{seed}", self.name),
                    tags: self.tags.clone(),
                    generator: GeneratorSpec::sample(index, size, seed),
                    algorithm: self.algorithm,
                    scheduler: self.scheduler,
                    options: self.options,
                    perturbations: self.perturbations.clone(),
                    faults: self.faults.clone(),
                });
            }
        }
        Ok(out)
    }
}

/// Expands a corpus of entries into the flat scenario list the runner and
/// CLI consume, rejecting duplicate scenario names across entries.
///
/// # Errors
///
/// Any entry that fails to expand, or two entries expanding to the same
/// scenario name.
pub fn expand_entries(entries: &[CorpusEntry]) -> Result<Vec<ScenarioSpec>, String> {
    let mut out = Vec::with_capacity(entries.len());
    for entry in entries {
        out.extend(entry.expand()?);
    }
    let mut names: Vec<&str> = out.iter().map(|s| s.name.as_str()).collect();
    names.sort_unstable();
    if let Some(dup) = names.windows(2).find(|w| w[0] == w[1]) {
        return Err(format!("duplicate scenario name `{}`", dup[0]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_expand_sizes_major_with_stable_names() {
        let family = FamilySpec::new("sweep", "hexagon")
            .tag("t")
            .sizes([2, 3])
            .seeds([5, 7]);
        let expanded = family.expand().unwrap();
        let names: Vec<&str> = expanded.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["sweep-n2-s5", "sweep-n2-s7", "sweep-n3-s5", "sweep-n3-s7"]
        );
        for spec in &expanded {
            assert!(spec.has_tag("t"));
            assert_eq!(spec.generator.family(), "hexagon");
            let shape = spec.build_shape();
            assert!(!shape.is_empty());
            assert!(shape.is_connected());
        }
        // Deterministic families ignore the seed: both seeds build the same
        // shape at the same size.
        assert_eq!(expanded[0].build_shape(), expanded[1].build_shape());
    }

    #[test]
    fn empty_seed_axis_defaults_to_seed_zero() {
        let expanded = FamilySpec::new("f", "line").sizes([4]).expand().unwrap();
        assert_eq!(expanded.len(), 1);
        assert_eq!(expanded[0].name, "f-n4-s0");
        assert_eq!(expanded[0].generator, GeneratorSpec::Line { n: 4 });
    }

    #[test]
    fn invalid_families_are_rejected() {
        assert!(FamilySpec::new("f", "no-such-family")
            .sizes([3])
            .expand()
            .unwrap_err()
            .contains("unknown generator family"));
        assert!(FamilySpec::new("f", "hexagon")
            .expand()
            .unwrap_err()
            .contains("empty size axis"));
    }

    #[test]
    fn expand_entries_rejects_duplicate_names() {
        let spec = ScenarioSpec::new("dup", GeneratorSpec::Line { n: 3 });
        let err = expand_entries(&[
            CorpusEntry::Scenario(spec.clone()),
            CorpusEntry::Scenario(spec),
        ])
        .unwrap_err();
        assert!(err.contains("duplicate scenario name `dup`"), "{err}");
    }

    #[test]
    fn corpus_entries_round_trip_through_json() {
        let entries = vec![
            CorpusEntry::Scenario(ScenarioSpec::new("one", GeneratorSpec::Line { n: 5 })),
            CorpusEntry::Family(
                FamilySpec::new("grid", "simply-connected-blob")
                    .tag("sweep")
                    .sizes([10, 20])
                    .seeds([3]),
            ),
        ];
        let json = serde_json::to_string_pretty(&entries).unwrap();
        let back: Vec<CorpusEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
        assert_eq!(expand_entries(&back).unwrap().len(), 3);
    }
}
