//! The corpus-driven scenario CLI.
//!
//! ```text
//! pm-scenarios list   [--corpus FILE]
//! pm-scenarios suites [--corpus FILE]
//! pm-scenarios render <name>  [--corpus FILE]
//! pm-scenarios run <suite>    [--corpus FILE] [--threads N] [--out FILE]
//! pm-scenarios regen
//! ```
//!
//! `run` prints a human-readable summary to stderr and the `RunReport` JSON
//! array to stdout (or `--out FILE`). `regen` rewrites the committed corpus
//! and the smoke golden file from the built-in corpus (a dev tool; a test
//! pins the committed files to the code).

use pm_amoebot::ascii::render_shape;
use pm_scenarios::corpus::{self, SMOKE};
use pm_scenarios::{report_json, run_suite, select, suite_tags, ScenarioSpec};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    operand: Option<String>,
    corpus: Option<PathBuf>,
    out: Option<PathBuf>,
    threads: usize,
}

const USAGE: &str = "usage: pm-scenarios <list|suites|render <name>|run <suite>|regen> \
                     [--corpus FILE] [--threads N] [--out FILE]";

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or(USAGE)?;
    let mut parsed = Args {
        command,
        operand: None,
        corpus: None,
        out: None,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--corpus" => {
                parsed.corpus = Some(PathBuf::from(
                    args.next().ok_or("--corpus needs a file argument")?,
                ))
            }
            "--out" => {
                parsed.out = Some(PathBuf::from(
                    args.next().ok_or("--out needs a file argument")?,
                ))
            }
            "--threads" => {
                parsed.threads = args
                    .next()
                    .ok_or("--threads needs a number")?
                    .parse()
                    .map_err(|_| "--threads needs a number".to_string())?
            }
            other if parsed.operand.is_none() && !other.starts_with("--") => {
                parsed.operand = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    Ok(parsed)
}

fn load_corpus(args: &Args) -> Result<Vec<ScenarioSpec>, String> {
    match &args.corpus {
        Some(path) => corpus::load_file(path),
        None => corpus::load_embedded(),
    }
}

fn cmd_list(specs: &[ScenarioSpec]) {
    println!(
        "{:<32} {:<28} {:>6} {:<20} {:<18} {:>8}",
        "name", "generator", "n", "algorithm", "scheduler", "perturb"
    );
    for spec in specs {
        println!(
            "{:<32} {:<28} {:>6} {:<20} {:<18} {:>8}",
            spec.name,
            spec.generator.to_string(),
            spec.build_shape().len(),
            spec.algorithm.name(),
            spec.scheduler.name(),
            spec.perturbations.len(),
        );
    }
}

fn cmd_render(specs: &[ScenarioSpec], name: &str) -> Result<(), String> {
    let spec = specs
        .iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("no scenario named `{name}` (try `pm-scenarios list`)"))?;
    let shape = spec.build_shape();
    println!(
        "{} — {} (n = {}, algorithm = {}, scheduler = {})",
        spec.name,
        spec.generator,
        shape.len(),
        spec.algorithm.name(),
        spec.scheduler.name(),
    );
    for p in &spec.perturbations {
        println!("perturbation: {p}");
    }
    println!("{}", render_shape(&shape));
    Ok(())
}

fn cmd_run(specs: &[ScenarioSpec], args: &Args, suite: &str) -> Result<(), String> {
    let selected = select(specs, suite);
    if selected.is_empty() {
        return Err(format!(
            "suite `{suite}` selects no scenarios (suites: {}, or a scenario name / `all`)",
            suite_tags(specs).join(", ")
        ));
    }
    let reports = run_suite(&selected, args.threads.max(1));
    eprintln!(
        "{:<32} {:>6} {:>8} {:>12} {:>9} {:>8} {:<8}",
        "scenario", "n", "rounds", "activations", "leaders", "perturb", "outcome"
    );
    let mut failures = 0usize;
    for r in &reports {
        let (rounds, activations, leaders, outcome) = match &r.report {
            Some(report) => (
                report.total_rounds.to_string(),
                report.activations.to_string(),
                report.leaders.to_string(),
                "ok".to_string(),
            ),
            None => {
                failures += 1;
                (
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    r.error.clone().unwrap_or_else(|| "error".into()),
                )
            }
        };
        eprintln!(
            "{:<32} {:>6} {:>8} {:>12} {:>9} {:>8} {:<8}",
            r.scenario, r.n, rounds, activations, leaders, r.perturbations, outcome
        );
    }
    eprintln!(
        "{} scenario(s), {} ok, {} error(s)",
        reports.len(),
        reports.len() - failures,
        failures
    );
    let json = report_json(&reports);
    match &args.out {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("write {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
        }
        None => print!("{json}"),
    }
    // Error entries are legitimate data for assumption-violation scenarios,
    // so they do not affect the exit status; only smoke promises all-ok
    // (CI pins that via the golden diff).
    Ok(())
}

/// Rewrites the committed corpus and smoke golden file from the built-in
/// corpus (paths resolved relative to this crate's manifest).
fn cmd_regen() -> Result<(), String> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let corpus = pm_scenarios::builtin_corpus();
    let mut corpus_json =
        serde_json::to_string_pretty(&corpus).map_err(|e| format!("serialize corpus: {e}"))?;
    corpus_json.push('\n');
    let corpus_path = root.join("corpus/scenarios.json");
    std::fs::write(&corpus_path, corpus_json)
        .map_err(|e| format!("write {}: {e}", corpus_path.display()))?;
    eprintln!("wrote {}", corpus_path.display());

    let smoke = select(&corpus, SMOKE);
    let golden = report_json(&run_suite(&smoke, 1));
    let golden_path = root.join("golden/smoke.json");
    if let Some(parent) = golden_path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
    }
    std::fs::write(&golden_path, golden)
        .map_err(|e| format!("write {}: {e}", golden_path.display()))?;
    eprintln!("wrote {}", golden_path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "regen" => cmd_regen(),
        command => match load_corpus(&args) {
            Err(e) => Err(e),
            Ok(specs) => match (command, args.operand.as_deref()) {
                ("list", _) => {
                    cmd_list(&specs);
                    Ok(())
                }
                ("suites", _) => {
                    for tag in suite_tags(&specs) {
                        println!("{tag}");
                    }
                    println!("all");
                    Ok(())
                }
                ("render", Some(name)) => cmd_render(&specs, name),
                ("render", None) => Err("render needs a scenario name".to_string()),
                ("run", Some(suite)) => cmd_run(&specs, &args, suite),
                ("run", None) => Err("run needs a suite name (try `smoke` or `all`)".to_string()),
                (other, _) => Err(format!("unknown command `{other}`\n{USAGE}")),
            },
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
