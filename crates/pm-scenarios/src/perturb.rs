//! Declarative mid-run fault injection.
//!
//! A [`PerturbationSpec`] names an adversarial event at a specific round of
//! the election's round-driven phase (`dle` for the paper pipeline,
//! `election` for the erosion baseline): remove particles at random, or cut
//! the configuration along a grid column (the split/reconnect dynamic of the
//! paper's reconnection variant). [`PerturbationScript`] drives a steppable
//! [`Execution`] from the caller's side, mutating the particle system
//! through [`Execution::system`] exactly before the scripted rounds run —
//! the mid-run mutations flow through the same invalidate-on-mutation
//! analysis cache as ordinary shape edits, and the fault logic is a plain
//! loop over [`Execution::step_round`], not an observer callback.
//!
//! **Reset-and-recover semantics.** After mutating, every perturbation
//! re-initializes the surviving particles from the perturbed configuration:
//! the adversary resets the system into a fresh permitted initial
//! configuration and the algorithm restarts its election there, modelling
//! the recovery behaviour that self-stabilising leader election (Chalopin,
//! Das, Kokkou — arXiv 2408.08775) automates. This keeps every perturbed
//! run well-defined for algorithms whose invariants assume a clean start
//! (DLE's eligibility flags), while rounds, activations and moves keep
//! accumulating in the same phase totals — the *cost of recovery* is exactly
//! what the report shows.

use pm_amoebot::system::SystemControl;
use pm_core::api::{phase, ElectionError, Execution, RunReport, StepOutcome};
use pm_faults::prune_to_largest_component;
use pm_grid::Point;
use pm_telemetry::trace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One scripted adversarial event. Rounds are 0-based within the election's
/// round-driven phase; an event scheduled after the election already
/// terminated simply never fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PerturbationSpec {
    /// At the start of round `round`, remove `count` particles chosen
    /// uniformly at random (seeded), then prune to the largest connected
    /// component (so the survivors form a permitted initial configuration
    /// and the election still elects a unique leader), then reset.
    RemoveRandom { round: u64, count: u32, seed: u64 },
    /// At the start of round `round`, remove every particle whose head lies
    /// on the axial column `q == column`, keeping **all** resulting
    /// components, then reset. On a shape the column actually cuts, this
    /// splits the system: each component elects its own leader, which the
    /// report records as `leaders > 1` (run with `reconnect: false`).
    SplitColumn { round: u64, column: i32 },
}

impl PerturbationSpec {
    /// The 0-based phase round at which the event fires.
    pub fn round(&self) -> u64 {
        match self {
            PerturbationSpec::RemoveRandom { round, .. } => *round,
            PerturbationSpec::SplitColumn { round, .. } => *round,
        }
    }

    /// Applies the event to a running system; returns how many particles
    /// were removed. Refuses to remove the last particle (the event shrinks
    /// the system, it never empties it); a removal count of zero still
    /// resets, which is itself a legitimate adversarial event.
    pub fn apply(&self, system: &mut dyn SystemControl) -> usize {
        let before = system.particle_count();
        if before == 0 {
            return 0;
        }
        match *self {
            PerturbationSpec::RemoveRandom { count, seed, .. } => {
                let mut positions = system.particle_positions();
                let mut rng = StdRng::seed_from_u64(seed);
                positions.shuffle(&mut rng);
                let take = (count as usize).min(before - 1);
                for p in positions.into_iter().take(take) {
                    system.remove_at(p);
                }
                prune_to_largest_component(system);
            }
            PerturbationSpec::SplitColumn { column, .. } => {
                let on_column: Vec<Point> = system
                    .particle_positions()
                    .into_iter()
                    .filter(|p| p.q == column)
                    .collect();
                if on_column.len() < before {
                    for p in on_column {
                        system.remove_at(p);
                    }
                }
            }
        }
        system.reinitialize();
        before - system.particle_count()
    }
}

impl fmt::Display for PerturbationSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PerturbationSpec::RemoveRandom { round, count, seed } => {
                write!(f, "remove-random(r{round},{count};{seed})")
            }
            PerturbationSpec::SplitColumn { round, column } => {
                write!(f, "split-column(r{round},q={column})")
            }
        }
    }
}

/// A perturbation script bound to one run: drives a steppable
/// [`Execution`], firing each event at most once, exactly before the first
/// phase round matching its `round` field. Events scheduled for rounds the
/// election never reaches simply never fire.
#[derive(Clone, Debug)]
pub struct PerturbationScript {
    specs: Vec<PerturbationSpec>,
    applied: Vec<bool>,
    /// Total particles removed by fired events.
    removed: usize,
    /// Number of events that have fired.
    fired: usize,
}

impl PerturbationScript {
    /// A script firing the given events.
    pub fn new(specs: Vec<PerturbationSpec>) -> PerturbationScript {
        let applied = vec![false; specs.len()];
        PerturbationScript {
            specs,
            applied,
            removed: 0,
            fired: 0,
        }
    }

    /// Appends an event to a live script — the server's `perturb` verb
    /// injects faults into running sessions through this. The new event
    /// obeys the same firing rule as scripted ones: it fires exactly before
    /// the first round-driven phase round matching its `round`, or never.
    pub fn push(&mut self, spec: PerturbationSpec) {
        self.specs.push(spec);
        self.applied.push(false);
    }

    /// The script's events, original and appended alike (a restored session
    /// must replay injected events too, so checkpoints persist these).
    pub fn specs(&self) -> &[PerturbationSpec] {
        &self.specs
    }

    /// Total particles removed by events fired so far.
    pub fn removed(&self) -> usize {
        self.removed
    }

    /// Number of events fired so far.
    pub fn fired(&self) -> usize {
        self.fired
    }

    /// Fires every pending event scheduled for the round the execution is
    /// about to run ([`Execution::next_round`]); a no-op at phase
    /// boundaries, during closed-form phases and after completion.
    /// Returns how many events fired.
    pub fn apply_due(&mut self, execution: &mut Execution<'_>) -> usize {
        // `next_round` (not `status()`): polled every round, and the full
        // status snapshot tallies per-particle decision counts.
        let Some((phase_name, round)) = execution.next_round() else {
            return 0;
        };
        // Perturbations target the election's round-driven phase; OBD and
        // Collect are simulated in closed form and never expose a system.
        if phase_name != phase::DLE && phase_name != phase::ELECTION {
            return 0;
        }
        if !self
            .specs
            .iter()
            .zip(&self.applied)
            .any(|(spec, applied)| !applied && spec.round() == round)
        {
            return 0;
        }
        let mut system = execution
            .system()
            .expect("an upcoming round implies a live system");
        let mut fired_now = 0;
        for (spec, applied) in self.specs.iter().zip(self.applied.iter_mut()) {
            if !*applied && spec.round() == round {
                *applied = true;
                self.removed += spec.apply(&mut *system);
                self.fired += 1;
                fired_now += 1;
                // Out-of-band, like all telemetry: the firing lands on the
                // trace timeline so drained traces show the recovery rounds
                // in causal order after their cause.
                if trace::enabled() {
                    trace::instant("perturb", format!("perturb:{spec}"));
                }
            }
        }
        fired_now
    }

    /// Drives the execution to completion, firing the script's events at
    /// their rounds, and returns the final report.
    ///
    /// # Errors
    ///
    /// Whatever the underlying election surfaces
    /// (see [`LeaderElection::elect`]).
    ///
    /// [`LeaderElection::elect`]: pm_core::api::LeaderElection::elect
    pub fn drive(&mut self, execution: Execution<'_>) -> Result<RunReport, ElectionError> {
        self.drive_with(execution, |_, _| {})
    }

    /// Like [`PerturbationScript::drive`], invoking `on_step` with every
    /// step outcome and the execution (for status inspection) — the hook
    /// behind the `pm-scenarios trace` subcommand.
    ///
    /// # Errors
    ///
    /// Same as [`PerturbationScript::drive`].
    pub fn drive_with(
        &mut self,
        mut execution: Execution<'_>,
        mut on_step: impl FnMut(&StepOutcome, &Execution<'_>),
    ) -> Result<RunReport, ElectionError> {
        loop {
            self.apply_due(&mut execution);
            let outcome = execution.step_round()?;
            on_step(&outcome, &execution);
            if let StepOutcome::Finished(report) = outcome {
                return Ok(report);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GeneratorSpec;
    use pm_amoebot::scheduler::SeededRandom;
    use pm_core::api::{LeaderElection, PaperPipeline, RunOptions};

    fn perturbed_run(
        spec: GeneratorSpec,
        perturbations: Vec<PerturbationSpec>,
        opts: RunOptions,
    ) -> pm_core::api::RunReport {
        let shape = spec.build();
        let mut script = PerturbationScript::new(perturbations);
        let mut scheduler = SeededRandom::new(7);
        let execution = PaperPipeline
            .start(&shape, &mut scheduler, &opts)
            .expect("permitted initial configuration");
        script
            .drive(execution)
            .expect("perturbed election terminates")
    }

    #[test]
    fn remove_random_still_elects_a_unique_leader() {
        let report = perturbed_run(
            GeneratorSpec::Hexagon { radius: 5 },
            vec![PerturbationSpec::RemoveRandom {
                round: 4,
                count: 10,
                seed: 11,
            }],
            RunOptions::default(),
        );
        assert!(report.unique_leader());
        assert_eq!(report.undecided, 0);
        assert!(report.final_connected);
        // The removed particles are gone from the final configuration.
        assert!(report.final_positions.len() < report.n);
        assert!(report.final_positions.len() >= report.n - 10);
    }

    #[test]
    fn split_column_yields_one_leader_per_component() {
        let report = perturbed_run(
            GeneratorSpec::Dumbbell {
                radius: 3,
                corridor: 10,
            },
            vec![PerturbationSpec::SplitColumn {
                round: 3,
                column: 8,
            }],
            RunOptions {
                reconnect: false,
                ..RunOptions::default()
            },
        );
        // The cut splits the dumbbell into its two balls; each elects a
        // leader independently.
        assert_eq!(report.leaders, 2);
        assert_eq!(report.undecided, 0);
        assert!(!report.final_connected);
    }

    #[test]
    fn perturbed_runs_are_deterministic() {
        let run = || {
            perturbed_run(
                GeneratorSpec::SimplyConnectedBlob { n: 150, seed: 9 },
                vec![PerturbationSpec::RemoveRandom {
                    round: 6,
                    count: 25,
                    seed: 3,
                }],
                RunOptions::default(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn events_after_termination_never_fire() {
        let shape = GeneratorSpec::Hexagon { radius: 2 }.build();
        let mut script = PerturbationScript::new(vec![PerturbationSpec::RemoveRandom {
            round: 100_000,
            count: 5,
            seed: 1,
        }]);
        let mut scheduler = SeededRandom::new(7);
        let execution = PaperPipeline
            .start(&shape, &mut scheduler, &RunOptions::default())
            .unwrap();
        let report = script.drive(execution).unwrap();
        assert_eq!(script.fired(), 0);
        assert_eq!(script.removed(), 0);
        assert_eq!(report.final_positions.len(), report.n);
    }

    #[test]
    fn remove_random_never_empties_the_system() {
        let report = perturbed_run(
            GeneratorSpec::Line { n: 5 },
            vec![PerturbationSpec::RemoveRandom {
                round: 1,
                count: 1_000,
                seed: 2,
            }],
            RunOptions::default(),
        );
        assert!(report.unique_leader());
        assert_eq!(report.final_positions.len(), 1);
    }
}
