//! The declarative scenario: everything one election run needs, as data.

use crate::generators::GeneratorSpec;
use crate::perturb::PerturbationSpec;
use pm_baselines::{
    ErosionLeaderElection, QuadraticBoundary, RandomizedBoundary, SelfStabMaxElection,
};
use pm_core::api::{LeaderElection, PaperPipeline, RunOptions};
use pm_core::batch::SchedulerSpec;
use pm_faults::FaultSpec;
use pm_grid::Shape;
use serde::{Deserialize, Serialize};

static PIPELINE: PaperPipeline = PaperPipeline;
static EROSION: ErosionLeaderElection = ErosionLeaderElection;
static RANDOMIZED: RandomizedBoundary = RandomizedBoundary;
static QUADRATIC: QuadraticBoundary = QuadraticBoundary;
static SELF_STAB: SelfStabMaxElection = SelfStabMaxElection;

/// A serializable name for each algorithm behind the unified
/// [`LeaderElection`] trait.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlgorithmSpec {
    /// The paper pipeline (`OBD → DLE → Collect`; phases selected through
    /// [`RunOptions`]).
    #[default]
    Pipeline,
    /// The no-movement erosion baseline (stalls on shapes with holes —
    /// scenarios pairing the two are *expected* to report an error).
    Erosion,
    /// The randomized boundary baseline.
    RandomizedBoundary,
    /// The quadratic deterministic boundary baseline.
    QuadraticBoundary,
    /// The self-stabilising constant-memory election (Chalopin–Das–Kokkou,
    /// arXiv 2408.08775): recovers from arbitrary memory corruption without
    /// a reset, so it is the contender fault scenarios measure against the
    /// reset-and-recover baselines.
    SelfStabMax,
}

impl AlgorithmSpec {
    /// The algorithm instance.
    pub fn instance(&self) -> &'static (dyn LeaderElection + Sync) {
        match self {
            AlgorithmSpec::Pipeline => &PIPELINE,
            AlgorithmSpec::Erosion => &EROSION,
            AlgorithmSpec::RandomizedBoundary => &RANDOMIZED,
            AlgorithmSpec::QuadraticBoundary => &QUADRATIC,
            AlgorithmSpec::SelfStabMax => &SELF_STAB,
        }
    }

    /// The name the instance reports (`LeaderElection::name`).
    pub fn name(&self) -> &'static str {
        self.instance().name()
    }

    /// Whether the algorithm executes a round-driven phase that perturbation
    /// scripts can target (an `Execution` with rounds to step and a live
    /// system to mutate). The boundary baselines are simulated in closed
    /// form — a script attached to them would never fire, so the suite
    /// runner rejects such scenarios instead of silently reporting a
    /// fault-free run as perturbed. The same gate applies to fault plans,
    /// which fire through the identical round-driven surface.
    pub fn supports_perturbations(&self) -> bool {
        matches!(
            self,
            AlgorithmSpec::Pipeline | AlgorithmSpec::Erosion | AlgorithmSpec::SelfStabMax
        )
    }
}

/// One named, fully declarative election scenario: a generated shape, the
/// algorithm and scheduler to run it with, the run options, and an optional
/// perturbation script. Serializable, so whole workload suites live as JSON
/// corpora (`corpus/scenarios.json`) instead of code.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Unique scenario name (referenced by the CLI's `render`/`run`).
    pub name: String,
    /// Suite tags (`run <tag>` selects every scenario carrying the tag).
    pub tags: Vec<String>,
    /// The workload shape.
    pub generator: GeneratorSpec,
    /// The algorithm to run.
    pub algorithm: AlgorithmSpec,
    /// The activation scheduler.
    pub scheduler: SchedulerSpec,
    /// Run options (variant knobs: boundary knowledge, reconnection,
    /// occupancy backend, budgets).
    pub options: RunOptions,
    /// Adversarial events fired mid-run (empty = fault-free).
    pub perturbations: Vec<PerturbationSpec>,
    /// The generalised fault schedule (periodic removals, regrow,
    /// corruption, relocation — see `pm_faults::FaultPlan`); an empty plan
    /// schedules nothing.
    pub faults: FaultSpec,
}

impl ScenarioSpec {
    /// A scenario with the default algorithm (paper pipeline), the default
    /// measurement scheduler (`SeededRandom(7)`), default options, no tags
    /// and no perturbations.
    pub fn new(name: impl Into<String>, generator: GeneratorSpec) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            tags: Vec::new(),
            generator,
            algorithm: AlgorithmSpec::Pipeline,
            scheduler: SchedulerSpec::SeededRandom(7),
            options: RunOptions::default(),
            perturbations: Vec::new(),
            faults: FaultSpec::default(),
        }
    }

    /// Adds a suite tag.
    pub fn tag(mut self, tag: &str) -> ScenarioSpec {
        self.tags.push(tag.to_string());
        self
    }

    /// Selects the algorithm.
    pub fn algorithm(mut self, algorithm: AlgorithmSpec) -> ScenarioSpec {
        self.algorithm = algorithm;
        self
    }

    /// Selects the scheduler.
    pub fn scheduler(mut self, scheduler: SchedulerSpec) -> ScenarioSpec {
        self.scheduler = scheduler;
        self
    }

    /// Replaces the run options.
    pub fn options(mut self, options: RunOptions) -> ScenarioSpec {
        self.options = options;
        self
    }

    /// Appends a perturbation event.
    pub fn perturb(mut self, perturbation: PerturbationSpec) -> ScenarioSpec {
        self.perturbations.push(perturbation);
        self
    }

    /// Replaces the fault plan.
    pub fn faults(mut self, faults: FaultSpec) -> ScenarioSpec {
        self.faults = faults;
        self
    }

    /// Whether the scenario schedules any adversarial events at all
    /// (perturbations or fault processes).
    pub fn is_adversarial(&self) -> bool {
        !self.perturbations.is_empty() || !self.faults.is_empty()
    }

    /// Builds the scenario's initial shape.
    pub fn build_shape(&self) -> Shape {
        self.generator.build()
    }

    /// Whether the scenario carries the given suite tag.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_specs_name_their_instances() {
        assert_eq!(AlgorithmSpec::Pipeline.name(), "dle+collect");
        assert_eq!(AlgorithmSpec::Erosion.name(), "erosion-le");
        assert_eq!(
            AlgorithmSpec::RandomizedBoundary.name(),
            "randomized-boundary"
        );
        assert_eq!(
            AlgorithmSpec::QuadraticBoundary.name(),
            "quadratic-boundary"
        );
        assert_eq!(AlgorithmSpec::SelfStabMax.name(), "self-stab-max");
    }

    #[test]
    fn self_stab_supports_adversarial_scripts() {
        // The self-stabilising election runs a round-driven phase, so both
        // perturbation scripts and fault plans can target it; the
        // closed-form boundary baselines still cannot.
        assert!(AlgorithmSpec::SelfStabMax.supports_perturbations());
        assert!(!AlgorithmSpec::RandomizedBoundary.supports_perturbations());
        assert!(!AlgorithmSpec::QuadraticBoundary.supports_perturbations());
    }

    #[test]
    fn builder_composes() {
        use pm_faults::{FaultKind, FaultProcess};
        let spec = ScenarioSpec::new("s", GeneratorSpec::Hexagon { radius: 3 })
            .tag("smoke")
            .algorithm(AlgorithmSpec::Erosion)
            .scheduler(SchedulerSpec::RoundRobin)
            .perturb(PerturbationSpec::RemoveRandom {
                round: 2,
                count: 3,
                seed: 1,
            });
        assert!(spec.has_tag("smoke"));
        assert!(!spec.has_tag("full"));
        assert_eq!(spec.algorithm, AlgorithmSpec::Erosion);
        assert_eq!(spec.perturbations.len(), 1);
        assert!(spec.faults.is_empty());
        assert!(spec.is_adversarial());
        assert_eq!(spec.build_shape().len(), 37);

        let faulted = ScenarioSpec::new("f", GeneratorSpec::Hexagon { radius: 3 })
            .faults(FaultSpec::new(7).process(FaultProcess::once(FaultKind::Corruption, 3, 8)));
        assert!(faulted.perturbations.is_empty());
        assert!(faulted.is_adversarial());
        assert!(!ScenarioSpec::new("q", GeneratorSpec::Line { n: 4 }).is_adversarial());
    }
}
