//! Driving scenario suites through the thread-sharded batch runner.

use crate::script::ScenarioScript;
use crate::spec::ScenarioSpec;
use pm_core::api::{ElectionError, Execution, RunReport};
use pm_core::batch::{BatchJob, BatchRunner, BatchScenario};
use serde::{Deserialize, Serialize};

/// The outcome of one scenario: either a full [`RunReport`] or the error the
/// run surfaced (an *expected* datum for assumption-violation scenarios,
/// e.g. erosion on shapes with holes).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// The scenario's name.
    pub scenario: String,
    /// The algorithm's stable name.
    pub algorithm: String,
    /// The generator label (family + parameters).
    pub generator: String,
    /// Initial particle count.
    pub n: usize,
    /// Number of scripted perturbation events.
    pub perturbations: usize,
    /// Number of fault-plan processes scheduled by the scenario.
    pub faults: usize,
    /// Whether the run produced a report.
    pub ok: bool,
    /// The election report (`null` when the run errored).
    pub report: Option<RunReport>,
    /// The error message (`null` when the run succeeded).
    pub error: Option<String>,
}

/// Runs a suite through [`BatchRunner`] with the given worker count.
///
/// Results come back in scenario order and are **bit-identical across thread
/// counts and repeated runs**: every shape, scheduler, perturbation and fault
/// firing is seeded, the batch merge is deterministic, and each adversarial
/// run's combined script is a fresh [`ScenarioScript`] built inside the
/// worker.
pub fn run_suite(specs: &[&ScenarioSpec], threads: usize) -> Vec<ScenarioReport> {
    type BoxedDriver =
        Box<dyn for<'s> Fn(Execution<'s>) -> Result<RunReport, ElectionError> + Sync>;
    /// Drives one execution under a fresh script instance — built per *run*
    /// (inside the worker), so batched adversarial runs equal sequential
    /// ones.
    fn drive_scripted(
        spec: &ScenarioSpec,
        execution: Execution<'_>,
    ) -> Result<RunReport, ElectionError> {
        ScenarioScript::for_spec(spec).drive(execution)
    }
    let drivers: Vec<Option<BoxedDriver>> = specs
        .iter()
        .map(|spec| {
            if spec.is_adversarial() {
                let spec = (*spec).clone();
                let driver: BoxedDriver =
                    Box::new(move |execution| drive_scripted(&spec, execution));
                Some(driver)
            } else {
                None
            }
        })
        .collect();

    // A perturbation script or fault plan on an algorithm with no
    // round-driven phase would never fire; reject the scenario up front
    // rather than report a fault-free run as adversarial.
    let rejections: Vec<Option<String>> = specs
        .iter()
        .map(|spec| {
            if spec.is_adversarial() && !spec.algorithm.supports_perturbations() {
                let what = if spec.perturbations.is_empty() {
                    "fault plan"
                } else {
                    "perturbation script"
                };
                Some(format!(
                    "{what} attached to `{}`, which runs no round-driven \
                     phase — the script would never fire",
                    spec.algorithm.name()
                ))
            } else {
                None
            }
        })
        .collect();

    let shapes: Vec<_> = specs.iter().map(|spec| spec.build_shape()).collect();
    let sizes: Vec<usize> = shapes.iter().map(|shape| shape.len()).collect();
    let mut jobs = Vec::with_capacity(specs.len());
    for (((spec, driver), rejection), shape) in
        specs.iter().zip(&drivers).zip(&rejections).zip(shapes)
    {
        if rejection.is_some() {
            continue;
        }
        let mut job = BatchJob::new(
            spec.algorithm.instance(),
            BatchScenario::new(spec.name.clone(), shape)
                .options(spec.options)
                .scheduler(spec.scheduler),
        );
        if let Some(driver) = driver {
            job = job.driven(driver.as_ref());
        }
        jobs.push(job);
    }

    let mut results = BatchRunner::with_threads(threads)
        .run_jobs(jobs)
        .into_iter();

    specs
        .iter()
        .zip(sizes)
        .zip(rejections)
        .map(|((spec, n), rejection)| {
            let (ok, report, error) = match rejection {
                Some(why) => (false, None, Some(why)),
                None => match results.next().expect("one result per accepted job") {
                    Ok(report) => (true, Some(report), None),
                    Err(e) => (false, None, Some(e.to_string())),
                },
            };
            ScenarioReport {
                scenario: spec.name.clone(),
                algorithm: spec.algorithm.name().to_string(),
                generator: spec.generator.to_string(),
                n,
                perturbations: spec.perturbations.len(),
                faults: spec.faults.processes.len(),
                ok,
                report,
                error,
            }
        })
        .collect()
}

/// Serializes a suite result as pretty JSON (newline-terminated — the byte
/// format the golden determinism test and the CI smoke diff pin).
pub fn report_json(reports: &[ScenarioReport]) -> String {
    let mut text = serde_json::to_string_pretty(&reports.to_vec()).expect("reports serialize");
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{builtin_corpus, select, FAULTS, SMOKE};

    #[test]
    fn suite_results_are_identical_across_thread_counts() {
        let corpus = builtin_corpus();
        let smoke = select(&corpus, SMOKE);
        let sequential = run_suite(&smoke, 1);
        let sharded = run_suite(&smoke, 4);
        assert_eq!(sequential, sharded);
        assert!(sequential.iter().all(|r| r.ok), "smoke runs must succeed");
        assert!(sequential.iter().any(|r| r.perturbations > 0));
    }

    #[test]
    fn faults_suite_runs_and_is_deterministic() {
        let corpus = builtin_corpus();
        let faults = select(&corpus, FAULTS);
        assert!(!faults.is_empty());
        let sequential = run_suite(&faults, 1);
        let sharded = run_suite(&faults, 4);
        assert_eq!(sequential, sharded);
        assert!(sequential.iter().all(|r| r.ok), "fault runs must succeed");
        assert!(sequential.iter().all(|r| r.faults > 0));
        // Every fault run still ends with a unique leader (self-stabilising
        // contenders absorb the faults; reset-and-recover scenarios restart).
        for report in &sequential {
            let run = report.report.as_ref().expect("fault run report");
            assert!(run.unique_leader(), "{}", report.scenario);
        }
    }

    #[test]
    fn fault_plans_on_closed_form_baselines_are_rejected() {
        use crate::generators::GeneratorSpec;
        use crate::spec::{AlgorithmSpec, ScenarioSpec};
        use pm_faults::{FaultKind, FaultPlan, FaultProcess};
        let spec = ScenarioSpec::new("bad-faults", GeneratorSpec::Hexagon { radius: 3 })
            .algorithm(AlgorithmSpec::QuadraticBoundary)
            .faults(FaultPlan::new(3).process(FaultProcess::once(FaultKind::Removals, 1, 2)));
        let reports = run_suite(&[&spec], 1);
        assert_eq!(reports.len(), 1);
        assert!(!reports[0].ok);
        let error = reports[0].error.as_deref().unwrap_or_default();
        assert!(error.contains("fault plan"), "{error}");
        assert!(error.contains("would never fire"), "{error}");
    }

    #[test]
    fn perturbation_scripts_on_closed_form_baselines_are_rejected() {
        use crate::generators::GeneratorSpec;
        use crate::perturb::PerturbationSpec;
        use crate::spec::{AlgorithmSpec, ScenarioSpec};
        let spec = ScenarioSpec::new("bad", GeneratorSpec::Hexagon { radius: 3 })
            .algorithm(AlgorithmSpec::RandomizedBoundary)
            .perturb(PerturbationSpec::RemoveRandom {
                round: 1,
                count: 2,
                seed: 0,
            });
        let reports = run_suite(&[&spec], 1);
        assert_eq!(reports.len(), 1);
        assert!(!reports[0].ok);
        assert!(
            reports[0]
                .error
                .as_deref()
                .unwrap_or_default()
                .contains("would never fire"),
            "{:?}",
            reports[0].error
        );
        // The same script on erosion fires (round-driven phase exists). A
        // line stays hole-free after removal + largest-component pruning,
        // so the erosion family's hole-free assumption still holds.
        let erosion = ScenarioSpec::new("ok", GeneratorSpec::Line { n: 20 })
            .algorithm(AlgorithmSpec::Erosion)
            .perturb(PerturbationSpec::RemoveRandom {
                round: 0,
                count: 5,
                seed: 0,
            });
        let reports = run_suite(&[&erosion], 1);
        let report = reports[0].report.as_ref().expect("erosion run succeeds");
        assert!(report.final_positions.len() < report.n);
        assert_eq!(
            report.final_positions.len(),
            report.leaders + report.followers
        );
    }

    #[test]
    fn report_json_round_trips() {
        let corpus = builtin_corpus();
        let one = select(&corpus, "smoke-perturbed-remove");
        let reports = run_suite(&one, 1);
        let text = report_json(&reports);
        let back: Vec<ScenarioReport> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, reports);
        let report = reports[0].report.as_ref().unwrap();
        assert!(report.unique_leader());
        assert!(report.final_positions.len() < report.n);
    }
}
