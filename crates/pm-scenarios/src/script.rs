//! The combined adversary of one scenario run: the legacy one-shot
//! perturbation script and the generalised [`FaultScript`] driven together.
//!
//! A [`ScenarioScript`] is what actually sits between the caller and the
//! steppable [`Execution`]: before every round it fires due perturbation
//! events first (reset-and-recover semantics), then due fault-plan
//! processes (whose reset behaviour is the plan's own
//! [`ResetPolicy`](pm_faults::ResetPolicy)). Both halves key off
//! [`Execution::next_round`], so the combined script is exactly as
//! deterministic — and as checkpoint-replayable — as each half alone.

use crate::perturb::{PerturbationScript, PerturbationSpec};
use crate::spec::ScenarioSpec;
use pm_core::api::{ElectionError, Execution, RunReport, StepOutcome};
use pm_faults::{FaultProcess, FaultScript, FaultSpec};

/// One scenario's full adversarial script: perturbation events plus the
/// fault plan, fired in that order before each due round.
#[derive(Clone, Debug)]
pub struct ScenarioScript {
    perturbations: PerturbationScript,
    faults: FaultScript,
}

impl ScenarioScript {
    /// A script from explicit parts.
    pub fn new(events: Vec<PerturbationSpec>, plan: FaultSpec) -> ScenarioScript {
        ScenarioScript {
            perturbations: PerturbationScript::new(events),
            faults: FaultScript::new(plan),
        }
    }

    /// The script a scenario spec declares (perturbations + fault plan).
    pub fn for_spec(spec: &ScenarioSpec) -> ScenarioScript {
        ScenarioScript::new(spec.perturbations.clone(), spec.faults.clone())
    }

    /// The perturbation half (events and firing counters).
    pub fn perturbations(&self) -> &PerturbationScript {
        &self.perturbations
    }

    /// The fault half (plan and firing counters).
    pub fn faults(&self) -> &FaultScript {
        &self.faults
    }

    /// Appends a perturbation event to the live script (the server's
    /// `perturb` verb).
    pub fn push_perturbation(&mut self, event: PerturbationSpec) {
        self.perturbations.push(event);
    }

    /// Appends a fault process to the live script (the server's `fault`
    /// verb).
    pub fn push_fault(&mut self, process: FaultProcess) {
        self.faults.push(process);
    }

    /// Total scripted entries: perturbation events plus fault processes.
    pub fn entries(&self) -> usize {
        self.perturbations.specs().len() + self.faults.plan().processes.len()
    }

    /// Total firings so far, both halves combined.
    pub fn fired(&self) -> usize {
        self.perturbations.fired() + self.faults.fired()
    }

    /// Fires everything due before the round the execution is about to run;
    /// returns how many events/processes fired.
    pub fn apply_due(&mut self, execution: &mut Execution<'_>) -> usize {
        self.perturbations.apply_due(execution) + self.faults.apply_due(execution)
    }

    /// Drives the execution to completion, firing due script entries before
    /// every round, and returns the final report.
    ///
    /// # Errors
    ///
    /// Whatever the underlying election surfaces
    /// (see [`LeaderElection::elect`]).
    ///
    /// [`LeaderElection::elect`]: pm_core::api::LeaderElection::elect
    pub fn drive(&mut self, mut execution: Execution<'_>) -> Result<RunReport, ElectionError> {
        loop {
            self.apply_due(&mut execution);
            if let StepOutcome::Finished(report) = execution.step_round()? {
                return Ok(report);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GeneratorSpec;
    use crate::spec::AlgorithmSpec;
    use pm_core::api::RunOptions;
    use pm_faults::{FaultKind, FaultPlan};

    fn faulted_spec() -> ScenarioSpec {
        ScenarioSpec::new("combined", GeneratorSpec::Hexagon { radius: 3 })
            .algorithm(AlgorithmSpec::SelfStabMax)
            .perturb(PerturbationSpec::RemoveRandom {
                round: 1,
                count: 2,
                seed: 5,
            })
            .faults(FaultPlan::new(7).process(FaultProcess::once(FaultKind::Corruption, 3, 6)))
    }

    #[test]
    fn combined_scripts_fire_both_halves_deterministically() {
        let spec = faulted_spec();
        let run = || {
            let shape = spec.build_shape();
            let mut scheduler = spec.scheduler.build();
            let execution = spec
                .algorithm
                .instance()
                .start(&shape, &mut *scheduler, &RunOptions::default())
                .unwrap();
            let mut script = ScenarioScript::for_spec(&spec);
            let report = script.drive(execution).unwrap();
            (script.fired(), script.faults().corrupted(), report)
        };
        let (fired, corrupted, report) = run();
        assert_eq!(fired, 2, "one perturbation + one fault firing");
        assert!(corrupted > 0);
        assert!(report.unique_leader());
        assert_eq!(run(), (fired, corrupted, report));
    }

    #[test]
    fn entry_counts_track_live_injections() {
        let mut script = ScenarioScript::for_spec(&faulted_spec());
        assert_eq!(script.entries(), 2);
        script.push_perturbation(PerturbationSpec::RemoveRandom {
            round: 9,
            count: 1,
            seed: 0,
        });
        script.push_fault(FaultProcess::once(FaultKind::Regrow, 10, 2));
        assert_eq!(script.entries(), 4);
        assert_eq!(script.fired(), 0);
    }
}
