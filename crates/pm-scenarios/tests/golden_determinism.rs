//! Golden-file determinism: running the committed smoke suite produces
//! byte-identical report JSON — twice in a row, across `BatchRunner` thread
//! counts, and against the committed golden file.

use pm_scenarios::corpus::SMOKE;
use pm_scenarios::{load_embedded, report_json, run_suite, select};

fn smoke_report(threads: usize) -> String {
    let corpus = load_embedded().expect("committed corpus parses");
    let smoke = select(&corpus, SMOKE);
    assert!(smoke.len() >= 10, "smoke suite shrank to {}", smoke.len());
    report_json(&run_suite(&smoke, threads))
}

#[test]
fn smoke_suite_is_deterministic_across_runs_and_threads() {
    let sequential = smoke_report(1);
    assert_eq!(sequential, smoke_report(1), "repeated runs diverged");
    assert_eq!(sequential, smoke_report(2), "2-thread run diverged");
    assert_eq!(sequential, smoke_report(8), "8-thread run diverged");
}

#[test]
fn smoke_suite_matches_committed_golden_file() {
    let golden_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/smoke.json");
    let golden = std::fs::read_to_string(&golden_path).expect("committed golden file exists");
    assert_eq!(
        smoke_report(1),
        golden,
        "golden/smoke.json is out of date; run `cargo run -p pm-server --bin pm-scenarios -- regen` \
         and review the diff"
    );
}

#[test]
fn smoke_suite_reports_are_all_ok_and_include_perturbed_runs() {
    let corpus = load_embedded().unwrap();
    let smoke = select(&corpus, SMOKE);
    let reports = run_suite(&smoke, 4);
    for report in &reports {
        assert!(report.ok, "{} failed: {:?}", report.scenario, report.error);
        let run = report.report.as_ref().unwrap();
        assert!(run.rounds_consistent(), "{}", report.scenario);
        assert!(run.leaders >= 1, "{}", report.scenario);
    }
    let perturbed: Vec<_> = reports.iter().filter(|r| r.perturbations > 0).collect();
    assert!(!perturbed.is_empty());
    // The split scenario records the multi-leader outcome; the removal
    // scenarios keep the unique-leader predicate.
    assert!(perturbed
        .iter()
        .any(|r| r.report.as_ref().unwrap().leaders > 1));
    assert!(perturbed
        .iter()
        .any(|r| r.report.as_ref().unwrap().unique_leader()));
}
