//! Golden-file determinism for the `faults` suite: fault-plan scenarios
//! produce byte-identical report JSON across thread counts and against the
//! committed golden file (`golden/faults.json`) — the recovery analogue of
//! the smoke golden test, and the contract the CI recovery smoke step diffs.

use pm_scenarios::corpus::FAULTS;
use pm_scenarios::{load_embedded, report_json, run_suite, select};

fn faults_report(threads: usize) -> String {
    let corpus = load_embedded().expect("committed corpus parses");
    let faults = select(&corpus, FAULTS);
    assert!(faults.len() >= 5, "faults suite shrank to {}", faults.len());
    report_json(&run_suite(&faults, threads))
}

#[test]
fn faults_suite_is_deterministic_across_runs_and_threads() {
    let sequential = faults_report(1);
    assert_eq!(sequential, faults_report(1), "repeated runs diverged");
    assert_eq!(sequential, faults_report(2), "2-thread run diverged");
    assert_eq!(sequential, faults_report(8), "8-thread run diverged");
}

#[test]
fn faults_suite_matches_committed_golden_file() {
    let golden_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/faults.json");
    let golden = std::fs::read_to_string(&golden_path).expect("committed golden file exists");
    assert_eq!(
        faults_report(1),
        golden,
        "golden/faults.json is out of date; run `cargo run -p pm-server --bin pm-scenarios -- regen` \
         and review the diff"
    );
}

#[test]
fn faults_suite_reports_recover_a_unique_leader() {
    let corpus = load_embedded().unwrap();
    let faults = select(&corpus, FAULTS);
    let reports = run_suite(&faults, 4);
    assert!(!reports.is_empty());
    for report in &reports {
        assert!(report.ok, "{} failed: {:?}", report.scenario, report.error);
        assert!(report.faults > 0, "{}", report.scenario);
        let run = report.report.as_ref().unwrap();
        assert!(run.unique_leader(), "{}", report.scenario);
        assert_eq!(run.undecided, 0, "{}", report.scenario);
    }
}
