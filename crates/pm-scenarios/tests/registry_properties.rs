//! Property tests of the generator registry: every family, at arbitrary
//! sizes and seeds, yields a non-empty connected in-bounds shape, and specs
//! are lossless through JSON.

use pm_grid::Point;
use pm_scenarios::generators::FAMILY_COUNT;
use pm_scenarios::GeneratorSpec;
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = GeneratorSpec> {
    (0usize..FAMILY_COUNT, 1u32..12, any::<u64>())
        .prop_map(|(family, size, seed)| GeneratorSpec::sample(family, size, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every registry generator yields a connected, non-empty shape whose
    /// points stay within the spec's declared radius bound.
    #[test]
    fn registry_shapes_are_connected_and_in_bounds(spec in spec_strategy()) {
        let shape = spec.build();
        prop_assert!(!shape.is_empty(), "{spec} is empty");
        prop_assert!(shape.is_connected(), "{spec} is disconnected");
        let bound = spec.radius_bound();
        for p in shape.iter() {
            prop_assert!(
                Point::ORIGIN.grid_distance(p) <= bound,
                "{spec}: point {p} beyond radius bound {bound}"
            );
        }
    }

    /// Generator specs are lossless through JSON text.
    #[test]
    fn generator_specs_round_trip_through_json(spec in spec_strategy()) {
        let text = serde_json::to_string(&spec).expect("spec serializes");
        let back: GeneratorSpec = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        prop_assert_eq!(back, spec);
    }

    /// Seeded families are deterministic: the same spec builds the same
    /// shape twice.
    #[test]
    fn registry_shapes_are_deterministic(spec in spec_strategy()) {
        prop_assert_eq!(spec.build(), spec.build(), "{} not deterministic", spec);
    }
}
