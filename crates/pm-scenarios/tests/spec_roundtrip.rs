//! `ScenarioSpec` ↔ JSON losslessness over arbitrary specs, and the
//! committed corpus file's sync with the in-code corpus.

use pm_amoebot::system::OccupancyBackend;
use pm_core::api::RunOptions;
use pm_core::batch::SchedulerSpec;
use pm_faults::{FaultKind, FaultPlan, FaultProcess, ResetPolicy};
use pm_scenarios::generators::FAMILY_COUNT;
use pm_scenarios::{
    builtin_corpus, load_embedded, AlgorithmSpec, GeneratorSpec, PerturbationSpec, ScenarioSpec,
};
use proptest::prelude::*;

fn algorithm_strategy() -> impl Strategy<Value = AlgorithmSpec> {
    prop_oneof![
        Just(AlgorithmSpec::Pipeline),
        Just(AlgorithmSpec::Erosion),
        Just(AlgorithmSpec::RandomizedBoundary),
        Just(AlgorithmSpec::QuadraticBoundary),
        Just(AlgorithmSpec::SelfStabMax),
    ]
}

fn scheduler_strategy() -> impl Strategy<Value = SchedulerSpec> {
    prop_oneof![
        Just(SchedulerSpec::RoundRobin),
        Just(SchedulerSpec::ReverseRoundRobin),
        any::<u64>().prop_map(SchedulerSpec::SeededRandom),
        Just(SchedulerSpec::DoubleActivation),
    ]
}

fn options_strategy() -> impl Strategy<Value = RunOptions> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop_oneof![Just(None), (1u64..100_000).prop_map(Some)],
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(boundary, reconnect, track, budget, seed, hashed)| RunOptions {
                assume_outer_boundary_known: boundary,
                reconnect,
                track_connectivity: track,
                round_budget: budget,
                seed,
                occupancy: if hashed {
                    OccupancyBackend::Hashed
                } else {
                    OccupancyBackend::Dense
                },
            },
        )
}

fn perturbation_strategy() -> impl Strategy<Value = PerturbationSpec> {
    prop_oneof![
        (0u64..50, 0u32..40, any::<u64>()).prop_map(|(round, count, seed)| {
            PerturbationSpec::RemoveRandom { round, count, seed }
        }),
        (0u64..50, -10i32..10)
            .prop_map(|(round, column)| PerturbationSpec::SplitColumn { round, column }),
    ]
}

fn fault_process_strategy() -> impl Strategy<Value = FaultProcess> {
    let kind = prop_oneof![
        Just(FaultKind::Removals),
        Just(FaultKind::Regrow),
        Just(FaultKind::Corruption),
        Just(FaultKind::Relocate),
    ];
    (kind, 0u64..30, 0u64..5, 0u64..60, 0u32..20).prop_map(|(kind, start, period, until, count)| {
        if period == 0 {
            FaultProcess::once(kind, start, count)
        } else {
            FaultProcess::periodic(kind, start, period, until, count)
        }
    })
}

fn fault_plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        any::<bool>(),
        proptest::collection::vec(fault_process_strategy(), 0..3),
    )
        .prop_map(|(seed, reinit, processes)| {
            let mut plan = FaultPlan::new(seed).reset(if reinit {
                ResetPolicy::Reinitialize
            } else {
                ResetPolicy::None
            });
            for process in processes {
                plan = plan.process(process);
            }
            plan
        })
}

fn scenario_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        (0usize..FAMILY_COUNT, 1u32..10, any::<u64>()),
        proptest::collection::vec(prop_oneof![Just("smoke"), Just("full"), Just("x")], 0..3),
        algorithm_strategy(),
        scheduler_strategy(),
        options_strategy(),
        proptest::collection::vec(perturbation_strategy(), 0..3),
        fault_plan_strategy(),
    )
        .prop_map(
            |((family, size, seed), tags, algorithm, scheduler, options, perturbations, faults)| {
                let mut spec = ScenarioSpec::new(
                    format!("scenario-{family}-{size}-{seed}"),
                    GeneratorSpec::sample(family, size, seed),
                )
                .algorithm(algorithm)
                .scheduler(scheduler)
                .options(options)
                .faults(faults);
                for tag in tags {
                    spec = spec.tag(tag);
                }
                spec.perturbations = perturbations;
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `ScenarioSpec` → JSON → `ScenarioSpec` is the identity, through both
    /// the value tree and the text form.
    #[test]
    fn scenario_specs_round_trip_through_json(spec in scenario_strategy()) {
        let text = serde_json::to_string_pretty(&spec).expect("spec serializes");
        let back: ScenarioSpec = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        prop_assert_eq!(back, spec);
    }
}

/// The committed corpus file must equal the in-code corpus byte for byte
/// (regenerate with `cargo run -p pm-server --bin pm-scenarios -- regen`).
#[test]
fn committed_corpus_matches_builtin() {
    let embedded = load_embedded().expect("committed corpus parses");
    assert_eq!(
        embedded,
        builtin_corpus(),
        "corpus/scenarios.json is out of sync; run `cargo run -p pm-server --bin pm-scenarios -- regen`"
    );
}

/// Every committed scenario round-trips (the embedded corpus exercises the
/// full deserialize path; this pins re-serialization too).
#[test]
fn committed_corpus_round_trips() {
    let corpus = load_embedded().expect("committed corpus parses");
    let text = serde_json::to_string(&corpus).unwrap();
    let back: Vec<ScenarioSpec> = serde_json::from_str(&text).unwrap();
    assert_eq!(back, corpus);
}
