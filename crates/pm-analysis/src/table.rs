//! Plain-text result tables printed by the benchmark binaries.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple column-aligned table with a title and optional footnotes.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
    /// Footnotes printed below the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (cells are converted with `ToString`).
    pub fn push_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Appends a footnote.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| " --- |").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let widths = self.column_widths();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders() {
        let mut t = Table::new("demo", &["shape", "rounds"]);
        t.push_row(["hexagon(3)", "12"]);
        t.push_row(["annulus(4,1)", "17"]);
        t.push_note("rounds are asynchronous rounds");
        let text = t.to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("hexagon(3)"));
        assert!(text.contains("note:"));
        let md = t.to_markdown();
        assert!(md.contains("| shape | rounds |"));
        assert!(md.contains("| annulus(4,1) | 17 |"));
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new("ragged", &["a"]);
        t.push_row(["x", "extra"]);
        let text = t.to_string();
        assert!(text.contains("extra"));
    }
}
