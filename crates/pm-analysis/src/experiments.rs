//! One function per experiment of the reproduction (see DESIGN.md §5 and
//! EXPERIMENTS.md).
//!
//! Every function returns a [`Table`] whose rows are the measured series and
//! whose notes record the derived quantities (scaling exponents, ratios) that
//! are compared against the paper's claims.
//!
//! All elections run through the unified [`LeaderElection`] trait:
//! experiments iterate over `&dyn LeaderElection` contenders with
//! per-contender [`RunOptions`], instead of hard-coding one driver per
//! algorithm. Only the phase-level experiments (Collect on synthetic
//! breadcrumb lines, OBD cost models) additionally reach for the phase
//! simulators directly; the convergence experiment
//! ([`experiment_convergence`]) drives the steppable
//! [`Execution`](pm_core::api::Execution) handle round by round.

use crate::fit::loglog_slope;
use crate::stats::ShapeStats;
use crate::table::Table;
use crate::workloads;
use pm_amoebot::scheduler::{
    DoubleActivation, ReverseRoundRobin, RoundRobin, Scheduler, SeededRandom,
};
use pm_baselines::{ErosionLeaderElection, QuadraticBoundary, RandomizedBoundary};
use pm_core::api::{
    phase, Election, ElectionError, LeaderElection, PaperPipeline, RunOptions, RunReport,
};
use pm_core::batch::{BatchJob, BatchRunner, BatchScenario, SchedulerSpec};
use pm_core::collect::CollectSimulator;
use pm_core::obd::run_obd;
use pm_grid::{Point, Shape};

fn format_ratio(value: f64) -> String {
    format!("{value:.2}")
}

/// A labelled scheduler factory: experiments build a fresh scheduler per
/// run so random streams do not leak across measurements.
type SchedulerFactory = (&'static str, fn() -> Box<dyn Scheduler + Send>);

/// The scheduler used for every DLE-based measurement in the experiments.
///
/// A fixed-seed random activation order is used instead of plain round robin:
/// a lexicographic sweep lets a whole erosion front cascade within a single
/// asynchronous round (a legal but degenerate fair execution that makes every
/// instance look like `O(1)` rounds), whereas random orders exhibit the
/// generic behaviour the paper's worst-case bounds describe. Experiment F8
/// compares the schedulers explicitly.
fn measurement_scheduler() -> SeededRandom {
    SeededRandom::new(7)
}

/// The [`SchedulerSpec`] equivalent of [`measurement_scheduler`], for runs
/// that go through the thread-sharded [`BatchRunner`].
const MEASUREMENT_SPEC: SchedulerSpec = SchedulerSpec::SeededRandom(7);

/// Renders one contender's batch result as a table cell. A
/// [`ElectionError::Stuck`] stall renders as the assumption violation it is
/// (Table 1's assumption column — erosion on holes); any *other* failure is
/// a bug in a contender that must terminate (the paper pipeline maps budget
/// exhaustion to `ElectionError::Run`, Theorem 18), so it panics rather than
/// shipping a quietly malformed table.
fn rounds_cell(label: &str, result: Result<RunReport, ElectionError>) -> String {
    match result {
        Ok(report) => report.total_rounds.to_string(),
        Err(ElectionError::Stuck { .. }) => "stuck (holes)".to_string(),
        Err(e) => panic!("{label} must terminate on permitted inputs: {e}"),
    }
}

/// Runs the paper pipeline restricted to DLE (boundary knowledge assumed, no
/// reconnection), asserting the unique-leader predicate.
fn dle_report(shape: &Shape, scheduler: impl Scheduler + Send + 'static) -> RunReport {
    let report = Election::on(shape)
        .scheduler(scheduler)
        .assume_boundary_known()
        .skip_reconnection()
        .run()
        .expect("DLE terminates");
    assert!(report.unique_leader(), "unique leader required");
    report
}

/// **T1 — empirical Table 1.** Round counts of the paper's two variants and
/// of the baseline families on a mixed shape family, next to the workload
/// parameters each bound is stated in. The whole shape × contender grid is
/// one [`BatchRunner`] submission: runs shard across worker threads, and the
/// deterministic merge order guarantees the table is bit-identical to a
/// sequential sweep.
pub fn experiment_table1(scale: u32) -> Table {
    let contenders: [(&str, &(dyn LeaderElection + Sync), RunOptions); 5] = [
        (
            "DLE+Collect [this, O(D_A)]",
            &PaperPipeline,
            RunOptions::with_boundary_knowledge(),
        ),
        (
            "OBD+DLE+Collect [this, O(L_out+D)]",
            &PaperPipeline,
            RunOptions::default(),
        ),
        (
            "erosion [22], O(n)",
            &ErosionLeaderElection,
            RunOptions::default(),
        ),
        (
            "randomized [10], O(L_out+D)",
            &RandomizedBoundary,
            RunOptions::default(),
        ),
        (
            "quadratic [3], O(n^2)",
            &QuadraticBoundary,
            RunOptions::default(),
        ),
    ];

    let mut headers = vec!["shape", "n", "D_A", "L_out+D"];
    headers.extend(contenders.iter().map(|(label, _, _)| *label));
    let mut table = Table::new(format!("T1: empirical Table 1 (scale {scale})"), &headers);

    // Fan the whole grid out over the batch runner, row-major.
    let family = workloads::table1_family(scale);
    let jobs: Vec<BatchJob<'_>> = family
        .iter()
        .flat_map(|(label, shape)| {
            // Warm the shape's analysis cache before cloning so all five
            // contender scenarios (and ShapeStats below) share one Arc'd
            // analysis instead of each recomputing it.
            shape.analyze();
            contenders.iter().map(|(_, algorithm, opts)| {
                BatchJob::new(
                    *algorithm,
                    BatchScenario::new(label.clone(), shape.clone())
                        .options(*opts)
                        .scheduler(MEASUREMENT_SPEC),
                )
            })
        })
        .collect();
    let mut results = BatchRunner::new().run_jobs(jobs).into_iter();

    for (label, shape) in family {
        let stats = ShapeStats::compute(&shape);
        let mut row = vec![
            label,
            stats.n.to_string(),
            stats.d_a.to_string(),
            stats.lout_plus_d().to_string(),
        ];
        for (contender_label, _, _) in &contenders {
            let result = results.next().expect("one result per job");
            row.push(rounds_cell(contender_label, result));
        }
        table.push_row(row);
    }
    table.push_note(
        "Paper's claim: both variants of this paper are linear (in D_A resp. L_out+D); \
         the deterministic baselines are Omega(n) / O(n^2) and the erosion family \
         requires hole-free shapes.",
    );
    table
}

/// **F2 — Theorem 18.** DLE round counts against `D_A` on hexagons and
/// randomly perforated hexagons; the log–log slope should be ≈ 1.
pub fn experiment_dle_scaling(radii: &[u32]) -> Table {
    let mut table = Table::new(
        "F2: DLE rounds vs area diameter D_A (Theorem 18)",
        &["shape", "n", "D_A", "DLE rounds", "rounds / D_A"],
    );
    let mut hex_points = Vec::new();
    let mut holey_points = Vec::new();
    for (label, shape) in workloads::hexagons(radii)
        .into_iter()
        .chain(workloads::holey_hexagons(radii, 5))
    {
        let stats = ShapeStats::compute(&shape);
        let report = dle_report(&shape, measurement_scheduler());
        let rounds = report.phase_rounds(phase::DLE);
        let ratio = rounds as f64 / stats.d_a.max(1) as f64;
        if label.starts_with("hexagon") {
            hex_points.push((stats.d_a as f64, rounds as f64));
        } else {
            holey_points.push((stats.d_a as f64, rounds as f64));
        }
        table.push_row([
            label,
            stats.n.to_string(),
            stats.d_a.to_string(),
            rounds.to_string(),
            format_ratio(ratio),
        ]);
    }
    if let Some(slope) = loglog_slope(&hex_points) {
        table.push_note(format!(
            "hexagons: empirical exponent rounds ~ D_A^{slope:.2} (paper: 1.0)"
        ));
    }
    if let Some(slope) = loglog_slope(&holey_points) {
        table.push_note(format!(
            "perforated hexagons: empirical exponent rounds ~ D_A^{slope:.2} (paper: 1.0)"
        ));
    }
    table
}

/// **F3 — ablation: the power of movement and disconnection.** DLE against
/// the no-movement erosion baseline on erosion-hostile simply-connected
/// shapes (spirals), and on a shape with a hole where erosion stalls
/// entirely. Both contenders run through the trait.
pub fn experiment_erosion_ablation() -> Table {
    let mut table = Table::new(
        "F3: DLE vs no-movement erosion (ablation)",
        &["shape", "n", "D_A", "DLE rounds", "erosion rounds"],
    );
    let mut dle_points = Vec::new();
    let mut erosion_points = Vec::new();
    // Hole-free shapes first: both approaches are diameter-bounded there.
    for (label, shape) in workloads::simply_connected_blobs(&[64, 128, 256, 512], 3) {
        let stats = ShapeStats::compute(&shape);
        let dle = dle_report(&shape, measurement_scheduler());
        let erosion = ErosionLeaderElection
            .elect(&shape, &mut measurement_scheduler(), &RunOptions::default())
            .expect("simply connected");
        dle_points.push((stats.d_a as f64, dle.total_rounds as f64));
        erosion_points.push((stats.d_a as f64, erosion.total_rounds as f64));
        table.push_row([
            label,
            stats.n.to_string(),
            stats.d_a.to_string(),
            dle.total_rounds.to_string(),
            erosion.total_rounds.to_string(),
        ]);
    }
    // Shapes with holes: erosion cannot finish at all, DLE stays linear.
    for (label, shape) in workloads::annuli(&[6, 10])
        .into_iter()
        .chain(workloads::swiss(&[8]))
    {
        let stats = ShapeStats::compute(&shape);
        let dle = dle_report(&shape, measurement_scheduler());
        let erosion = match ErosionLeaderElection.elect(
            &shape,
            &mut measurement_scheduler(),
            &RunOptions::default(),
        ) {
            Err(ElectionError::Stuck { .. }) => "stuck (hole)".to_string(),
            Ok(report) => report.total_rounds.to_string(),
            Err(e) => format!("error: {e}"),
        };
        table.push_row([
            label,
            stats.n.to_string(),
            stats.d_a.to_string(),
            dle.total_rounds.to_string(),
            erosion,
        ]);
    }
    if let (Some(d), Some(e)) = (loglog_slope(&dle_points), loglog_slope(&erosion_points)) {
        table.push_note(format!(
            "hole-free blobs: DLE rounds ~ D_A^{d:.2}, erosion rounds ~ D_A^{e:.2}; \
             the qualitative separation is the hole rows, where erosion-style election \
             (the [22]/[27] family) cannot make progress while DLE stays linear in D_A."
        ));
    }
    table
}

/// **F4 — Theorem 23 / Corollary 22.** Collect round counts against the grid
/// eccentricity of the leader, on post-DLE configurations of thin annuli (the
/// sparsest breadcrumb trails) and on synthetic breadcrumb lines.
pub fn experiment_collect_scaling(eccentricities: &[u32]) -> Table {
    let mut table = Table::new(
        "F4: Collect rounds vs eps_G(l) (Theorem 23)",
        &[
            "input",
            "eps_G(l)",
            "collect rounds",
            "rounds / eps",
            "phases",
            "final connected",
        ],
    );
    let mut points = Vec::new();
    for &eps in eccentricities {
        let positions: Vec<Point> = (0..=eps as i32).map(|i| Point::new(i, 0)).collect();
        let mut sim = CollectSimulator::new(Point::ORIGIN, &positions);
        let outcome = sim.run();
        points.push((eps as f64, outcome.rounds as f64));
        table.push_row([
            format!("breadcrumb-line({eps})"),
            eps.to_string(),
            outcome.rounds.to_string(),
            format_ratio(outcome.rounds as f64 / eps.max(1) as f64),
            outcome.phases.len().to_string(),
            outcome.final_connected.to_string(),
        ]);
    }
    for (label, shape) in workloads::thin_annuli(&[6, 10, 14]) {
        // The post-DLE configuration (leader + breadcrumbs) comes out of the
        // unified API by skipping reconnection.
        let dle = dle_report(&shape, SeededRandom::new(0));
        let mut sim = CollectSimulator::new(dle.leader, &dle.final_positions);
        let outcome = sim.run();
        points.push((outcome.eccentricity as f64, outcome.rounds as f64));
        table.push_row([
            format!("post-DLE {label}"),
            outcome.eccentricity.to_string(),
            outcome.rounds.to_string(),
            format_ratio(outcome.rounds as f64 / outcome.eccentricity.max(1) as f64),
            outcome.phases.len().to_string(),
            outcome.final_connected.to_string(),
        ]);
    }
    if let Some(slope) = loglog_slope(&points) {
        table.push_note(format!(
            "empirical exponent rounds ~ eps^{slope:.2} (paper: 1.0, Theorem 23)"
        ));
    }
    table
}

/// **F5 — Lemma 19.** The breadcrumb property of post-DLE configurations: a
/// contracted particle at every grid distance up to `ε_G(l)` and none beyond.
pub fn experiment_breadcrumbs() -> Table {
    let mut table = Table::new(
        "F5: breadcrumbs after DLE (Lemma 19)",
        &[
            "shape",
            "n",
            "eps_G(l)",
            "missing distances",
            "particles beyond eps",
            "DLE final connected",
            "after Collect connected",
        ],
    );
    let shapes: Vec<(String, Shape)> = workloads::hexagons(&[4])
        .into_iter()
        .chain(workloads::annuli(&[6]))
        .chain(workloads::thin_annuli(&[8]))
        .chain(workloads::swiss(&[6]))
        .chain(workloads::blobs(&[150], 9))
        .collect();
    for (label, shape) in shapes {
        let dle = Election::on(&shape)
            .scheduler(SeededRandom::new(1))
            .assume_boundary_known()
            .skip_reconnection()
            .track_connectivity()
            .run()
            .expect("DLE terminates");
        let l = dle.leader;
        let eps = dle
            .final_positions
            .iter()
            .map(|p| l.grid_distance(*p))
            .max()
            .unwrap_or(0);
        let missing = (0..=eps)
            .filter(|d| {
                !dle.final_positions
                    .iter()
                    .any(|p| l.grid_distance(*p) == *d)
            })
            .count();
        let initial_eps = shape.iter().map(|p| l.grid_distance(p)).max().unwrap_or(0);
        let beyond = dle
            .final_positions
            .iter()
            .filter(|p| l.grid_distance(**p) > initial_eps)
            .count();
        let mut sim = CollectSimulator::new(l, &dle.final_positions);
        let collect = sim.run();
        table.push_row([
            label,
            shape.len().to_string(),
            eps.to_string(),
            missing.to_string(),
            beyond.to_string(),
            dle.final_connected.to_string(),
            collect.final_connected.to_string(),
        ]);
    }
    table.push_note("Lemma 19 predicts 0 missing distances and 0 particles beyond eps_G(l).");
    table
}

/// **F6 — Theorem 41.** OBD round counts against `L_out + D`, with the
/// unpipelined quadratic baseline for contrast.
pub fn experiment_obd_scaling(radii: &[u32]) -> Table {
    let mut table = Table::new(
        "F6: OBD rounds vs L_out + D (Theorem 41)",
        &[
            "shape",
            "L_out+D",
            "OBD rounds",
            "rounds / (L_out+D)",
            "quadratic [3] rounds",
        ],
    );
    let mut pipelined = Vec::new();
    let mut sequential = Vec::new();
    for (label, shape) in workloads::hexagons(radii)
        .into_iter()
        .chain(workloads::annuli(radii))
    {
        let stats = ShapeStats::compute(&shape);
        let obd = run_obd(&shape);
        assert!(obd.unique_outer());
        let quad = QuadraticBoundary
            .elect(&shape, &mut measurement_scheduler(), &RunOptions::default())
            .expect("baseline runs");
        let denom = stats.lout_plus_d() as f64;
        pipelined.push((denom, obd.rounds as f64));
        sequential.push((denom, quad.total_rounds as f64));
        table.push_row([
            label,
            stats.lout_plus_d().to_string(),
            obd.rounds.to_string(),
            format_ratio(obd.rounds as f64 / denom),
            quad.total_rounds.to_string(),
        ]);
    }
    if let (Some(p), Some(s)) = (loglog_slope(&pipelined), loglog_slope(&sequential)) {
        table.push_note(format!(
            "empirical exponents: OBD ~ (L_out+D)^{p:.2} (paper: 1.0); \
             unpipelined baseline ~ (L_out+D)^{s:.2} (paper: ~2.0)"
        ));
    }
    table
}

/// **F7 — the assumption-free pipeline.** Per-phase and total round counts of
/// `OBD → DLE → Collect` against `L_out + D`.
pub fn experiment_full_pipeline(radii: &[u32]) -> Table {
    let mut table = Table::new(
        "F7: full pipeline OBD -> DLE -> Collect (Table 1, last row)",
        &[
            "shape",
            "n",
            "L_out+D",
            "OBD",
            "DLE",
            "Collect",
            "total",
            "total / (L_out+D)",
            "unique leader & connected",
        ],
    );
    let mut points = Vec::new();
    for (label, shape) in workloads::hexagons(radii)
        .into_iter()
        .chain(workloads::holey_hexagons(radii, 11))
    {
        let stats = ShapeStats::compute(&shape);
        let report = Election::on(&shape)
            .scheduler(measurement_scheduler())
            .run()
            .expect("election succeeds");
        let denom = stats.lout_plus_d() as f64;
        points.push((denom, report.total_rounds as f64));
        table.push_row([
            label,
            stats.n.to_string(),
            stats.lout_plus_d().to_string(),
            report.phase_rounds(phase::OBD).to_string(),
            report.phase_rounds(phase::DLE).to_string(),
            report.phase_rounds(phase::COLLECT).to_string(),
            report.total_rounds.to_string(),
            format_ratio(report.total_rounds as f64 / denom),
            report.predicate_holds().to_string(),
        ]);
    }
    if let Some(slope) = loglog_slope(&points) {
        table.push_note(format!(
            "empirical exponent total ~ (L_out+D)^{slope:.2} (paper: 1.0)"
        ));
    }
    table
}

/// **F8 — scheduler robustness.** DLE round counts on fixed shapes under the
/// four fair strong schedulers; the counts must stay `O(D_A)` (the bound is
/// worst-case over all fair executions). One loop over boxed schedulers — no
/// per-scheduler drivers.
pub fn experiment_scheduler_robustness() -> Table {
    let schedulers: [SchedulerFactory; 5] = [
        ("round-robin", || Box::new(RoundRobin)),
        ("reverse", || Box::new(ReverseRoundRobin)),
        ("random(0)", || Box::new(SeededRandom::new(0))),
        ("random(1)", || Box::new(SeededRandom::new(1))),
        ("double-activation", || Box::new(DoubleActivation)),
    ];
    let mut headers = vec!["shape", "D_A"];
    headers.extend(schedulers.iter().map(|(label, _)| *label));
    let mut table = Table::new(
        "F8: DLE rounds under different fair strong schedulers",
        &headers,
    );
    let opts = RunOptions {
        assume_outer_boundary_known: true,
        reconnect: false,
        ..RunOptions::default()
    };
    let shapes: Vec<(String, Shape)> = workloads::hexagons(&[6])
        .into_iter()
        .chain(workloads::annuli(&[8]))
        .chain(workloads::swiss(&[6]))
        .collect();
    for (label, shape) in shapes {
        let stats = ShapeStats::compute(&shape);
        let mut row = vec![label, stats.d_a.to_string()];
        for (_, make_scheduler) in &schedulers {
            let mut scheduler = make_scheduler();
            let report = PaperPipeline
                .elect(&shape, &mut *scheduler, &opts)
                .expect("DLE terminates");
            assert!(report.unique_leader());
            row.push(report.phase_rounds(phase::DLE).to_string());
        }
        table.push_row(row);
    }
    table.push_note(
        "All counts stay within a small constant factor of D_A: the O(D_A) bound is \
         scheduler-independent (worst case over fair executions).",
    );
    table
}

/// **F9 — decision convergence.** Round-by-round decided-particle counts of
/// the DLE phase, sampled through the steppable `Execution` handle: the
/// rounds at which 50%, 90% and 100% of the particles have decided, next to
/// the phase's total. The per-round system inspection this needs (decided
/// counts *during* the run) is exactly what the inversion-of-control API
/// provides — `RunObserver` callbacks never exposed the system.
pub fn experiment_convergence(radii: &[u32]) -> Table {
    use pm_core::api::StepOutcome;
    let mut table = Table::new(
        "F9: DLE decision convergence (rounds to 50% / 90% / all decided)",
        &["shape", "n", "50%", "90%", "all", "DLE rounds"],
    );
    let opts = RunOptions {
        assume_outer_boundary_known: true,
        reconnect: false,
        ..RunOptions::default()
    };
    let shapes: Vec<(String, Shape)> = workloads::hexagons(radii)
        .into_iter()
        .chain(workloads::annuli(radii))
        .collect();
    for (label, shape) in shapes {
        let n = shape.len();
        let mut scheduler = measurement_scheduler();
        let mut execution = PaperPipeline
            .start(&shape, &mut scheduler, &opts)
            .expect("permitted initial configuration");
        let (mut half, mut ninety, mut all) = (None, None, None);
        let report = loop {
            match execution.step_round().expect("DLE terminates") {
                StepOutcome::RoundCompleted { rounds, .. } => {
                    let decided = execution.status().decided;
                    if half.is_none() && 2 * decided >= n {
                        half = Some(rounds);
                    }
                    if ninety.is_none() && 10 * decided >= 9 * n {
                        ninety = Some(rounds);
                    }
                    if all.is_none() && decided == n {
                        all = Some(rounds);
                    }
                }
                StepOutcome::Finished(report) => break report,
                _ => {}
            }
        };
        assert!(report.unique_leader());
        let cell = |value: Option<u64>| value.map_or("-".to_string(), |r| r.to_string());
        table.push_row([
            label,
            n.to_string(),
            cell(half),
            cell(ninety),
            cell(all),
            report.phase_rounds(phase::DLE).to_string(),
        ]);
    }
    table.push_note(
        "Sampled between rounds via Execution::status(); the long tail between 90% and \
         all-decided is the inward march of the last eligible points (Theorem 18's \
         D_A bound is on that tail, not on the bulk).",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_runs_and_orders_algorithms() {
        let table = experiment_table1(4);
        assert_eq!(table.rows.len(), 6);
        assert!(table.to_string().contains("hexagon(4)"));
        // The erosion baseline must report being stuck on the holey rows.
        let text = table.to_string();
        assert!(text.contains("stuck"));
    }

    #[test]
    fn dle_scaling_slope_is_close_to_linear() {
        let table = experiment_dle_scaling(&[3, 5, 7, 9]);
        let note = table.notes.join(" ");
        // Extract no numbers here; just assert the note exists and rows are
        // populated. The numeric check lives in the integration tests.
        assert!(note.contains("empirical exponent"));
        assert_eq!(table.rows.len(), 8);
    }

    #[test]
    fn erosion_ablation_reports_stuck_on_holes() {
        let table = experiment_erosion_ablation();
        assert!(table.to_string().contains("stuck (hole)"));
    }

    #[test]
    fn collect_scaling_has_connected_outputs() {
        let table = experiment_collect_scaling(&[8, 16, 32]);
        for row in &table.rows {
            assert_eq!(row.last().unwrap(), "true");
        }
    }

    #[test]
    fn breadcrumbs_table_reports_no_violations() {
        let table = experiment_breadcrumbs();
        for row in &table.rows {
            assert_eq!(row[3], "0", "missing distances in {row:?}");
            assert_eq!(row[4], "0", "particles beyond eps in {row:?}");
            assert_eq!(row.last().unwrap(), "true");
        }
    }

    #[test]
    fn obd_scaling_and_pipeline_tables_run() {
        let obd = experiment_obd_scaling(&[3, 5, 7]);
        assert_eq!(obd.rows.len(), 6);
        let pipeline = experiment_full_pipeline(&[3, 5]);
        assert_eq!(pipeline.rows.len(), 4);
        for row in &pipeline.rows {
            assert_eq!(row.last().unwrap(), "true");
        }
    }

    #[test]
    fn scheduler_robustness_runs() {
        let table = experiment_scheduler_robustness();
        assert_eq!(table.rows.len(), 3);
    }

    #[test]
    fn convergence_milestones_are_ordered() {
        let table = experiment_convergence(&[3, 5]);
        assert_eq!(table.rows.len(), 4);
        for row in &table.rows {
            let half: u64 = row[2].parse().expect("50% milestone reached");
            let ninety: u64 = row[3].parse().expect("90% milestone reached");
            let all: u64 = row[4].parse().expect("all-decided milestone reached");
            let total: u64 = row[5].parse().unwrap();
            assert!(half <= ninety && ninety <= all, "{row:?}");
            assert!(all <= total, "{row:?}");
        }
    }
}
