//! Named workload families used by the experiments.
//!
//! Each family is a list of `(label, shape)` pairs whose instances grow along
//! the parameter the corresponding experiment sweeps (diameter, boundary
//! length, eccentricity, …).

use pm_amoebot::generators::{
    annulus, comb, dumbbell, hexagon, random_blob, random_holey_hexagon,
    random_simply_connected_blob, spiral, swiss_cheese,
};
use pm_grid::Shape;

/// A named workload instance.
pub type Workload = (String, Shape);

/// Hexagonal balls of the given radii (hole-free, `n = Θ(D²)`).
pub fn hexagons(radii: &[u32]) -> Vec<Workload> {
    radii
        .iter()
        .map(|r| (format!("hexagon({r})"), hexagon(*r)))
        .collect()
}

/// Annuli with a hole of half the outer radius (`D_A < D`, one large hole).
pub fn annuli(outer_radii: &[u32]) -> Vec<Workload> {
    outer_radii
        .iter()
        .map(|r| (format!("annulus({r},{})", r / 2), annulus(*r, r / 2)))
        .collect()
}

/// Thin annuli of width one (worst case for reconnection: DLE leaves sparse
/// breadcrumbs across the hole).
pub fn thin_annuli(outer_radii: &[u32]) -> Vec<Workload> {
    outer_radii
        .iter()
        .map(|r| (format!("annulus({r},{})", r - 1), annulus(*r, r - 1)))
        .collect()
}

/// Swiss-cheese hexagons (many small holes).
pub fn swiss(radii: &[u32]) -> Vec<Workload> {
    radii
        .iter()
        .map(|r| (format!("swiss({r})"), swiss_cheese(*r, 3)))
        .collect()
}

/// Random Eden-growth blobs of the given sizes (may contain holes).
pub fn blobs(sizes: &[usize], seed: u64) -> Vec<Workload> {
    sizes
        .iter()
        .map(|n| (format!("blob({n})"), random_blob(*n, seed ^ *n as u64)))
        .collect()
}

/// Random simply-connected blobs (holes filled).
pub fn simply_connected_blobs(sizes: &[usize], seed: u64) -> Vec<Workload> {
    sizes
        .iter()
        .map(|n| {
            (
                format!("sc-blob({n})"),
                random_simply_connected_blob(*n, seed ^ *n as u64),
            )
        })
        .collect()
}

/// Randomly perforated hexagons (a fixed fraction of single-point holes).
pub fn holey_hexagons(radii: &[u32], seed: u64) -> Vec<Workload> {
    radii
        .iter()
        .map(|r| {
            (
                format!("holey({r})"),
                random_holey_hexagon(*r, 0.08, seed ^ *r as u64),
            )
        })
        .collect()
}

/// Spirals (simply-connected, erosion-hostile: few SCE points at any time).
pub fn spirals(sizes: &[u32]) -> Vec<Workload> {
    sizes
        .iter()
        .map(|n| (format!("spiral({n})"), spiral(*n)))
        .collect()
}

/// Combs (long thin teeth; diameter close to `n`).
pub fn combs(teeth: &[u32]) -> Vec<Workload> {
    teeth
        .iter()
        .map(|t| (format!("comb({t},{t})"), comb(*t, *t)))
        .collect()
}

/// Dumbbells (two balls joined by a corridor; very large diameter for their
/// size).
pub fn dumbbells(radii: &[u32]) -> Vec<Workload> {
    radii
        .iter()
        .map(|r| (format!("dumbbell({r},{})", 4 * r), dumbbell(*r, 4 * r)))
        .collect()
}

/// The mixed family used by the empirical Table 1: one representative of each
/// structural class at a comparable particle count.
pub fn table1_family(scale: u32) -> Vec<Workload> {
    let mut out = Vec::new();
    out.extend(hexagons(&[scale]));
    out.extend(annuli(&[scale + scale / 2]));
    out.extend(thin_annuli(&[scale + 2]));
    out.extend(swiss(&[scale]));
    out.extend(combs(&[scale]));
    out.extend(blobs(&[(3 * scale * (scale + 1) + 1) as usize], 17));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_nonempty_connected_and_labelled() {
        let families: Vec<Vec<Workload>> = vec![
            hexagons(&[2, 4]),
            annuli(&[4, 6]),
            thin_annuli(&[5]),
            swiss(&[5]),
            blobs(&[80], 1),
            simply_connected_blobs(&[80], 1),
            holey_hexagons(&[5], 2),
            spirals(&[30]),
            combs(&[4]),
            dumbbells(&[2]),
            table1_family(4),
        ];
        for family in families {
            assert!(!family.is_empty());
            for (label, shape) in family {
                assert!(!label.is_empty());
                assert!(!shape.is_empty(), "{label} is empty");
                assert!(shape.is_connected(), "{label} is disconnected");
            }
        }
    }

    #[test]
    fn annuli_have_holes_and_spirals_do_not() {
        for (label, shape) in annuli(&[5]) {
            assert!(shape.analyze().hole_count() >= 1, "{label}");
        }
        for (label, shape) in spirals(&[40]) {
            assert!(shape.is_simply_connected(), "{label}");
        }
    }
}
