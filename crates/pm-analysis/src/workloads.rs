//! Named workload families used by the experiments.
//!
//! Each family is a list of `(label, shape)` pairs whose instances grow along
//! the parameter the corresponding experiment sweeps (diameter, boundary
//! length, eccentricity, …). Shapes come exclusively from the `pm-scenarios`
//! generator registry — the workspace's single source of workload shapes —
//! via [`GeneratorSpec`]; the labels are the specs' display form, so every
//! experiment row names the exact spec that reproduces its shape.

pub use pm_scenarios::generators::{
    annulus, caterpillar, comb, dumbbell, hexagon, k_hole_hexagon, line, parallelogram,
    random_blob, random_holey_hexagon, random_simply_connected_blob, spiral, swiss_cheese,
};

use pm_grid::Shape;
use pm_scenarios::GeneratorSpec;

/// A named workload instance.
pub type Workload = (String, Shape);

fn instantiate(specs: impl IntoIterator<Item = GeneratorSpec>) -> Vec<Workload> {
    specs
        .into_iter()
        .map(|spec| (spec.to_string(), spec.build()))
        .collect()
}

/// Hexagonal balls of the given radii (hole-free, `n = Θ(D²)`).
pub fn hexagons(radii: &[u32]) -> Vec<Workload> {
    instantiate(radii.iter().map(|r| GeneratorSpec::Hexagon { radius: *r }))
}

/// Annuli with a hole of half the outer radius (`D_A < D`, one large hole).
pub fn annuli(outer_radii: &[u32]) -> Vec<Workload> {
    instantiate(outer_radii.iter().map(|r| GeneratorSpec::Annulus {
        outer: *r,
        inner: r / 2,
    }))
}

/// Thin annuli of width one (worst case for reconnection: DLE leaves sparse
/// breadcrumbs across the hole).
pub fn thin_annuli(outer_radii: &[u32]) -> Vec<Workload> {
    instantiate(outer_radii.iter().map(|r| GeneratorSpec::Annulus {
        outer: *r,
        inner: r - 1,
    }))
}

/// Swiss-cheese hexagons (many small holes).
pub fn swiss(radii: &[u32]) -> Vec<Workload> {
    instantiate(radii.iter().map(|r| GeneratorSpec::SwissCheese {
        radius: *r,
        spacing: 3,
    }))
}

/// Random Eden-growth blobs of the given sizes (may contain holes).
pub fn blobs(sizes: &[usize], seed: u64) -> Vec<Workload> {
    instantiate(sizes.iter().map(|n| GeneratorSpec::RandomBlob {
        n: *n as u32,
        seed: seed ^ *n as u64,
    }))
}

/// Random simply-connected blobs (holes filled).
pub fn simply_connected_blobs(sizes: &[usize], seed: u64) -> Vec<Workload> {
    instantiate(sizes.iter().map(|n| GeneratorSpec::SimplyConnectedBlob {
        n: *n as u32,
        seed: seed ^ *n as u64,
    }))
}

/// Randomly perforated hexagons (a fixed fraction of single-point holes).
pub fn holey_hexagons(radii: &[u32], seed: u64) -> Vec<Workload> {
    instantiate(radii.iter().map(|r| GeneratorSpec::HoleyHexagon {
        radius: *r,
        hole_pct: 8,
        seed: seed ^ *r as u64,
    }))
}

/// Spirals (simply-connected, erosion-hostile: few SCE points at any time).
pub fn spirals(sizes: &[u32]) -> Vec<Workload> {
    instantiate(sizes.iter().map(|n| GeneratorSpec::Spiral { n: *n }))
}

/// Combs (long thin teeth; diameter close to `n`).
pub fn combs(teeth: &[u32]) -> Vec<Workload> {
    instantiate(teeth.iter().map(|t| GeneratorSpec::Comb {
        teeth: *t,
        tooth_len: *t,
    }))
}

/// Dumbbells (two balls joined by a corridor; very large diameter for their
/// size).
pub fn dumbbells(radii: &[u32]) -> Vec<Workload> {
    instantiate(radii.iter().map(|r| GeneratorSpec::Dumbbell {
        radius: *r,
        corridor: 4 * r,
    }))
}

/// Caterpillars (seeded random teeth on a line spine).
pub fn caterpillars(spines: &[u32], seed: u64) -> Vec<Workload> {
    instantiate(spines.iter().map(|s| GeneratorSpec::Caterpillar {
        spine: *s,
        max_tooth: (s / 3).max(1),
        seed: seed ^ *s as u64,
    }))
}

/// The mixed family used by the empirical Table 1: one representative of each
/// structural class at a comparable particle count.
pub fn table1_family(scale: u32) -> Vec<Workload> {
    let mut out = Vec::new();
    out.extend(hexagons(&[scale]));
    out.extend(annuli(&[scale + scale / 2]));
    out.extend(thin_annuli(&[scale + 2]));
    out.extend(swiss(&[scale]));
    out.extend(combs(&[scale]));
    out.extend(blobs(&[(3 * scale * (scale + 1) + 1) as usize], 17));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_nonempty_connected_and_labelled() {
        let families: Vec<Vec<Workload>> = vec![
            hexagons(&[2, 4]),
            annuli(&[4, 6]),
            thin_annuli(&[5]),
            swiss(&[5]),
            blobs(&[80], 1),
            simply_connected_blobs(&[80], 1),
            holey_hexagons(&[5], 2),
            spirals(&[30]),
            combs(&[4]),
            dumbbells(&[2]),
            caterpillars(&[12], 3),
            table1_family(4),
        ];
        for family in families {
            assert!(!family.is_empty());
            for (label, shape) in family {
                assert!(!label.is_empty());
                assert!(!shape.is_empty(), "{label} is empty");
                assert!(shape.is_connected(), "{label} is disconnected");
            }
        }
    }

    #[test]
    fn annuli_have_holes_and_spirals_do_not() {
        for (label, shape) in annuli(&[5]) {
            assert!(shape.analyze().hole_count() >= 1, "{label}");
        }
        for (label, shape) in spirals(&[40]) {
            assert!(shape.is_simply_connected(), "{label}");
        }
    }

    #[test]
    fn labels_are_generator_specs() {
        assert_eq!(hexagons(&[4])[0].0, "hexagon(4)");
        assert_eq!(annuli(&[6])[0].0, "annulus(6,3)");
    }
}
