//! Least-squares fits used to check the scaling claims (linear in `D_A`,
//! linear in `L_out + D`, quadratic for the unpipelined baseline, …).

use serde::{Deserialize, Serialize};

/// A least-squares line `y = slope · x + intercept` with its coefficient of
/// determination.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1.0 for a perfect fit, `NaN` when
    /// the variance of `y` is zero).
    pub r2: f64,
}

/// Ordinary least-squares fit of `y` against `x`.
///
/// Returns `None` when fewer than two points are given or all `x` values are
/// identical.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<Fit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot.abs() < f64::EPSILON {
        f64::NAN
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(Fit {
        slope,
        intercept,
        r2,
    })
}

/// The slope of the least-squares fit of `log y` against `log x`: the
/// empirical polynomial exponent of the scaling `y ~ x^slope`.
///
/// Points with non-positive coordinates are skipped. Returns `None` when
/// fewer than two usable points remain.
pub fn loglog_slope(points: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    linear_fit(&logs).map(|f| f.slope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_perfect_line() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_recovers_exponents() {
        let linear: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 7.0 * i as f64)).collect();
        let quadratic: Vec<(f64, f64)> =
            (1..20).map(|i| (i as f64, 0.5 * (i * i) as f64)).collect();
        assert!((loglog_slope(&linear).unwrap() - 1.0).abs() < 0.01);
        assert!((loglog_slope(&quadratic).unwrap() - 2.0).abs() < 0.01);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
        assert!(loglog_slope(&[(0.0, 1.0), (-1.0, 2.0)]).is_none());
    }
}
