//! Experiment harness for the PODC 2021 leader-election reproduction.
//!
//! The paper is a theory paper: its evaluation artefacts are Table 1 (the
//! comparison of round complexities and assumptions across algorithms) and
//! the asymptotic bounds proved for each component (Theorems 18, 23, 41). The
//! experiments here regenerate an *empirical* Table 1 and one scaling series
//! per proved bound, so that the relative ordering of algorithms — who wins,
//! by what factor, and under which assumptions — can be checked directly
//! against the paper. See `EXPERIMENTS.md` at the repository root for the
//! mapping and the recorded results.
//!
//! * [`stats`] — per-shape workload statistics (`n`, `D`, `D_A`, `D_G`,
//!   `L_out`, `L_max`, number of holes).
//! * [`fit`] — least-squares scaling fits (log–log slopes) used to check the
//!   linear/quadratic claims.
//! * [`table`] — plain-text/markdown tables printed by the benchmark
//!   binaries.
//! * [`workloads`] — the named shape families used across the experiments.
//! * [`experiments`] — one function per experiment id (T1, F2, …, F9).

pub mod experiments;
pub mod fit;
pub mod stats;
pub mod table;
pub mod workloads;

pub use experiments::{
    experiment_breadcrumbs, experiment_collect_scaling, experiment_convergence,
    experiment_dle_scaling, experiment_erosion_ablation, experiment_full_pipeline,
    experiment_obd_scaling, experiment_scheduler_robustness, experiment_table1,
};
pub use fit::{linear_fit, loglog_slope, Fit};
pub use stats::ShapeStats;
pub use table::Table;
