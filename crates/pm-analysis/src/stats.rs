//! Per-shape workload statistics.

use pm_grid::{Metric, Shape};
use serde::{Deserialize, Serialize};

/// The parameters the paper's bounds are stated in, computed for one shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShapeStats {
    /// Number of particles `n`.
    pub n: usize,
    /// Number of points of the area `n_A` (particles plus hole points).
    pub n_area: usize,
    /// Diameter `D` of the shape with respect to itself.
    pub d: u32,
    /// Diameter `D_A` of the shape with respect to its area.
    pub d_a: u32,
    /// Diameter `D_G` of the shape with respect to the full grid.
    pub d_g: u32,
    /// Length `L_out` of the outer boundary (number of points).
    pub l_out: usize,
    /// Maximum boundary length `L_max`.
    pub l_max: usize,
    /// Number of holes.
    pub holes: usize,
}

impl ShapeStats {
    /// Computes the statistics of a connected shape (exact diameters; runs
    /// one BFS per particle, which is fine up to a few thousand particles).
    pub fn compute(shape: &Shape) -> ShapeStats {
        let metric = Metric::new(shape);
        let analysis = shape.analyze();
        ShapeStats {
            n: shape.len(),
            n_area: metric.area().len(),
            d: metric.diameter().unwrap_or(0),
            d_a: metric.area_diameter().unwrap_or(0),
            d_g: metric.grid_diameter(),
            l_out: analysis.outer_boundary_len(),
            l_max: analysis.max_boundary_len(),
            holes: analysis.hole_count(),
        }
    }

    /// `L_out + D`, the bound of the assumption-free variant (Table 1, last
    /// row).
    pub fn lout_plus_d(&self) -> usize {
        self.l_out + self.d as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_grid::builder::{annulus, hexagon, line};

    #[test]
    fn hexagon_stats() {
        let s = ShapeStats::compute(&hexagon(3));
        assert_eq!(s.n, 37);
        assert_eq!(s.n_area, 37);
        assert_eq!(s.d, 6);
        assert_eq!(s.d_a, 6);
        assert_eq!(s.d_g, 6);
        assert_eq!(s.l_out, 18);
        assert_eq!(s.holes, 0);
        assert_eq!(s.lout_plus_d(), 24);
    }

    #[test]
    fn annulus_stats_separate_d_and_da() {
        let s = ShapeStats::compute(&annulus(4, 1));
        assert_eq!(s.holes, 1);
        assert!(s.n_area > s.n);
        assert!(s.d >= s.d_a);
        assert!(s.d_a >= s.d_g);
        assert_eq!(s.l_max, s.l_out.max(s.l_max));
    }

    #[test]
    fn line_stats() {
        let s = ShapeStats::compute(&line(10));
        assert_eq!(s.n, 10);
        assert_eq!(s.d, 9);
        assert_eq!(s.l_out, 10);
    }
}
