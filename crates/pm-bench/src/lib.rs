//! Benchmark and figure-regeneration crate.
//!
//! * The `src/bin/*` binaries regenerate the paper's table and the scaling
//!   figures as plain-text tables (`cargo run -p pm-bench --bin <name>`,
//!   `--release` recommended for the larger sweeps).
//! * The Criterion benches under `benches/` measure the wall-clock cost of
//!   the simulator itself (geometry, DLE, OBD, Collect, full pipeline) so
//!   regressions in the implementation are visible; the *round counts* that
//!   reproduce the paper's claims are printed by the binaries and recorded in
//!   `EXPERIMENTS.md`.

use pm_analysis::Table;

/// Prints a table to stdout in both aligned-text and markdown form.
pub fn print_table(table: &Table) {
    println!("{table}");
    println!("{}", table.to_markdown());
}

/// Parses an optional positive integer argument from the command line
/// (`args[1]`), falling back to `default`.
pub fn arg_or(default: u32) -> u32 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_table_does_not_panic() {
        let mut t = Table::new("t", &["a"]);
        t.push_row(["1"]);
        print_table(&t);
    }

    #[test]
    fn arg_or_falls_back() {
        assert_eq!(arg_or(7), 7);
    }
}
