//! Throughput benchmark: end-to-end wall-clock cost of full elections
//! (`OBD → DLE → Collect`) on ball / annulus / random-hole shapes at
//! n ≈ 100, 1k and 10k, recorded as `BENCH_results.json` at the repo root so
//! the performance trajectory is tracked across PRs.
//!
//! Two sections are measured:
//!
//! * per-scenario single-run latency and activations/second;
//! * the whole scenario set through [`BatchRunner`], sequential (1 thread)
//!   vs sharded (all cores), asserting the reports are identical.
//!
//! If `BENCH_baseline.json` exists at the repo root (numbers measured on an
//! earlier revision with this same binary), each scenario also reports the
//! speedup against it.
//!
//! Usage: `cargo run --release -p pm-bench --bin throughput [max_n]`
//! (`max_n` caps the scenario size; CI smoke runs pass a small value).

use pm_amoebot::scheduler::SeededRandom;
use pm_bench::arg_or;
use pm_core::api::{Election, PaperPipeline, RunReport};
use pm_core::batch::{BatchRunner, BatchScenario, SchedulerSpec};
use pm_grid::Shape;
use pm_scenarios::GeneratorSpec;
use serde_json::Value;
use std::time::Instant;

/// One benchmark scenario: a named shape plus how many timed repetitions to
/// take the minimum over (small instances are noisy, large ones are slow).
struct Scenario {
    label: &'static str,
    shape: Shape,
    reps: u32,
}

/// A shape family: label prefix and the registry specs that land the point
/// count near 100 / 1k / 10k.
struct Family {
    labels: [&'static str; 3],
    specs: [GeneratorSpec; 3],
}

/// The bench corpus, expressed through the `pm-scenarios` generator
/// registry (the single source of workload shapes).
const FAMILIES: [Family; 3] = [
    Family {
        labels: ["ball-100", "ball-1k", "ball-10k"],
        specs: [
            GeneratorSpec::Hexagon { radius: 5 },
            GeneratorSpec::Hexagon { radius: 18 },
            GeneratorSpec::Hexagon { radius: 57 },
        ],
    },
    Family {
        labels: ["annulus-100", "annulus-1k", "annulus-10k"],
        specs: [
            GeneratorSpec::Annulus { outer: 7, inner: 3 },
            GeneratorSpec::Annulus {
                outer: 21,
                inner: 10,
            },
            GeneratorSpec::Annulus {
                outer: 66,
                inner: 33,
            },
        ],
    },
    Family {
        labels: ["holey-100", "holey-1k", "holey-10k"],
        specs: [
            GeneratorSpec::HoleyHexagon {
                radius: 5,
                hole_pct: 8,
                seed: 7,
            },
            GeneratorSpec::HoleyHexagon {
                radius: 18,
                hole_pct: 8,
                seed: 7,
            },
            GeneratorSpec::HoleyHexagon {
                radius: 57,
                hole_pct: 8,
                seed: 7,
            },
        ],
    },
];

fn scenarios(max_n: u32) -> Vec<Scenario> {
    let mut all = Vec::new();
    for family in &FAMILIES {
        for (label, spec) in family.labels.iter().zip(family.specs) {
            let shape = spec.build();
            if shape.len() > max_n as usize {
                continue;
            }
            all.push(Scenario {
                label,
                reps: if shape.len() <= 2_000 { 3 } else { 1 },
                shape,
            });
        }
    }
    all
}

/// Runs one full election and returns the report plus elapsed seconds.
fn timed_run(shape: &Shape) -> (RunReport, f64) {
    let start = Instant::now();
    let report = Election::on(shape)
        .scheduler(SeededRandom::new(7))
        .run()
        .expect("election succeeds on a connected shape");
    (report, start.elapsed().as_secs_f64())
}

/// Loads `label -> elapsed_ms` from a previous results file, if present.
fn load_baseline(path: &std::path::Path) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(Value::Object(root)) = serde_json::from_str::<Value>(&text) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (key, value) in &root {
        if key != "results" {
            continue;
        }
        let Value::Array(items) = value else { continue };
        for item in items {
            let Value::Object(fields) = item else {
                continue;
            };
            let label = fields.iter().find(|(k, _)| k == "label");
            let elapsed = fields.iter().find(|(k, _)| k == "elapsed_ms");
            if let (Some((_, Value::Str(label))), Some((_, elapsed))) = (label, elapsed) {
                let ms = match elapsed {
                    Value::Float(x) => *x,
                    Value::Int(i) => *i as f64,
                    Value::UInt(u) => *u as f64,
                    _ => continue,
                };
                out.push((label.clone(), ms));
            }
        }
    }
    out
}

/// Measures the full scenario set through the batch runner with the given
/// thread count; returns (elapsed_ms, reports).
fn timed_batch(max_n: u32, threads: usize) -> (f64, Vec<RunReport>) {
    let batch: Vec<BatchScenario> = scenarios(max_n)
        .into_iter()
        .map(|s| BatchScenario::new(s.label, s.shape).scheduler(SchedulerSpec::SeededRandom(7)))
        .collect();
    let runner = BatchRunner::with_threads(threads);
    let start = Instant::now();
    let results = runner.run(&PaperPipeline, batch);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let reports = results
        .into_iter()
        .map(|r| r.expect("every scenario elects"))
        .collect();
    (elapsed_ms, reports)
}

fn main() {
    let max_n = arg_or(10_000);
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let baseline = load_baseline(&repo_root.join("BENCH_baseline.json"));

    let mut results = Vec::new();
    println!(
        "{:<12} {:>6} {:>8} {:>12} {:>12} {:>14} {:>9}",
        "scenario", "n", "rounds", "activations", "elapsed_ms", "activ/sec", "speedup"
    );
    for scenario in scenarios(max_n) {
        let mut best: Option<(RunReport, f64)> = None;
        for _ in 0..scenario.reps {
            let (report, secs) = timed_run(&scenario.shape);
            if best.as_ref().is_none_or(|(_, b)| secs < *b) {
                best = Some((report, secs));
            }
        }
        let (report, secs) = best.expect("at least one repetition");
        let elapsed_ms = secs * 1e3;
        let per_sec = report.activations as f64 / secs.max(1e-9);
        let speedup = baseline
            .iter()
            .find(|(label, _)| label == scenario.label)
            .map(|(_, base_ms)| base_ms / elapsed_ms.max(1e-9));
        println!(
            "{:<12} {:>6} {:>8} {:>12} {:>12.2} {:>14.0} {:>9}",
            scenario.label,
            report.n,
            report.total_rounds,
            report.activations,
            elapsed_ms,
            per_sec,
            speedup.map_or("-".to_string(), |s| format!("{s:.2}x")),
        );
        let mut fields = vec![
            ("label".to_string(), Value::Str(scenario.label.to_string())),
            ("n".to_string(), Value::UInt(report.n as u64)),
            ("rounds".to_string(), Value::UInt(report.total_rounds)),
            ("activations".to_string(), Value::UInt(report.activations)),
            ("moves".to_string(), Value::UInt(report.moves)),
            ("elapsed_ms".to_string(), Value::Float(elapsed_ms)),
            ("activations_per_sec".to_string(), Value::Float(per_sec)),
        ];
        if let Some(speedup) = speedup {
            fields.push((
                "speedup_vs_baseline".to_string(),
                Value::Float((speedup * 100.0).round() / 100.0),
            ));
        }
        results.push(Value::Object(fields));
    }

    // Batch section: the same scenario set, sequential vs thread-sharded,
    // with identical reports required.
    let (sequential_ms, sequential_reports) = timed_batch(max_n, 1);
    let (parallel_ms, parallel_reports) = timed_batch(max_n, BatchRunner::new().threads());
    assert_eq!(
        sequential_reports, parallel_reports,
        "sharded batch must be bit-identical to the sequential batch"
    );
    let parallel_speedup = sequential_ms / parallel_ms.max(1e-9);
    println!(
        "\nbatch of {}: sequential {:.2} ms, {} threads {:.2} ms ({:.2}x)",
        sequential_reports.len(),
        sequential_ms,
        BatchRunner::new().threads(),
        parallel_ms,
        parallel_speedup,
    );

    let root = Value::Object(vec![
        (
            "benchmark".to_string(),
            Value::Str("pm-bench throughput (full election, SeededRandom(7))".to_string()),
        ),
        ("max_n".to_string(), Value::UInt(max_n as u64)),
        ("results".to_string(), Value::Array(results)),
        (
            "batch".to_string(),
            Value::Object(vec![
                (
                    "scenarios".to_string(),
                    Value::UInt(sequential_reports.len() as u64),
                ),
                (
                    "threads".to_string(),
                    Value::UInt(BatchRunner::new().threads() as u64),
                ),
                ("sequential_ms".to_string(), Value::Float(sequential_ms)),
                ("parallel_ms".to_string(), Value::Float(parallel_ms)),
                (
                    "parallel_speedup".to_string(),
                    Value::Float((parallel_speedup * 100.0).round() / 100.0),
                ),
            ]),
        ),
    ]);
    let text = serde_json::to_string_pretty(&root).expect("results serialize");
    let out_path = repo_root.join("BENCH_results.json");
    std::fs::write(&out_path, text + "\n").expect("write BENCH_results.json");
    println!("wrote {}", out_path.display());
}
