//! Telemetry overhead check: the same full election (`OBD → DLE →
//! Collect`) stepped through the `Execution` handle in three modes —
//! per-phase profiling disabled, enabled, and enabled with the span
//! recorder live — on the ball family up to `max_n`.
//!
//! Profiling and tracing are the only telemetry on the per-step hot path
//! (one `Instant::now()` pair per step, a phase-table update, and — with a
//! recorder installed — one `span_at` push per round reusing those same
//! two instants); everything else in `pm-telemetry` records per request or
//! per sweep. The disabled path must stay a single `Option` check, the
//! profiled path within a ~2% wall-clock regression, and tracing on top of
//! profiling within the same 2% budget measured as the **median of paired
//! per-rep ratios** (each rep runs both modes back to back, so drift hits
//! both sides; asserted at n ≥ 1000, where a run outlasts the noise
//! floor). Results merge into a `telemetry_overhead` section of
//! `BENCH_results.json` without touching the throughput sections.
//!
//! Usage: `cargo run --release -p pm-bench --bin telemetry_overhead [max_n]`
//! (`max_n` caps the scenario size; CI smoke runs pass a small value).

use pm_amoebot::scheduler::SeededRandom;
use pm_bench::arg_or;
use pm_core::api::{LeaderElection, PaperPipeline, RunOptions, RunReport};
use pm_grid::Shape;
use pm_scenarios::GeneratorSpec;
use pm_telemetry::trace;
use serde_json::Value;
use std::time::Instant;

/// Wall-clock budget for profiling overhead, and for tracing on top of
/// profiling (median paired ratio), in percent.
const BUDGET_PCT: f64 = 2.0;

/// The ball family at n ≈ 100 / 1k / 10k, as in the throughput bench.
const BALLS: [(&str, GeneratorSpec); 3] = [
    ("ball-100", GeneratorSpec::Hexagon { radius: 5 }),
    ("ball-1k", GeneratorSpec::Hexagon { radius: 18 }),
    ("ball-10k", GeneratorSpec::Hexagon { radius: 57 }),
];

/// One full election through the steppable handle; profiling per `profile`.
fn timed_run(shape: &Shape, profile: bool) -> (RunReport, f64) {
    let mut execution = PaperPipeline
        .start_owned(
            shape,
            Box::new(SeededRandom::new(7)),
            &RunOptions::default(),
        )
        .expect("election starts on a connected shape");
    if profile {
        execution.enable_profiling();
    }
    let start = Instant::now();
    let report = execution.finish().expect("election succeeds");
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let max_n = arg_or(10_000);
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");

    // One recorder for the whole run, toggled per rep: the traced reps
    // measure recording cost, not install/uninstall churn. Each traced rep
    // drains so ring memory stays bounded and no rep pays wraparound.
    assert!(
        trace::install(trace::DEFAULT_CAPACITY),
        "no recorder must be installed before the bench"
    );
    assert!(trace::set_enabled(false));

    let mut rows = Vec::new();
    println!(
        "{:<12} {:>6} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "scenario", "n", "plain_ms", "profiled_ms", "traced_ms", "overhead", "tracing"
    );
    for (label, spec) in BALLS {
        let shape = spec.build();
        if shape.len() > max_n as usize {
            continue;
        }
        let reps = if shape.len() <= 2_000 { 20 } else { 7 };
        // Interleave the modes so drift (thermal, cache) hits all of them;
        // take the minimum of each, the standard noise floor estimate. The
        // tracing comparison additionally keeps each rep's profiled/traced
        // pair together as a ratio, so per-rep drift cancels.
        let mut plain = f64::INFINITY;
        let mut profiled = f64::INFINITY;
        let mut traced = f64::INFINITY;
        let mut ratios = Vec::with_capacity(reps);
        for _ in 0..reps {
            let (plain_report, secs) = timed_run(&shape, false);
            plain = plain.min(secs);
            let (profiled_report, profiled_secs) = timed_run(&shape, true);
            profiled = profiled.min(profiled_secs);
            assert!(trace::set_enabled(true));
            let (traced_report, traced_secs) = timed_run(&shape, true);
            assert!(trace::set_enabled(false));
            let recorded = trace::drain();
            traced = traced.min(traced_secs);
            ratios.push(traced_secs / profiled_secs.max(1e-9));
            assert!(plain_report.profile.is_empty());
            assert_eq!(
                profiled_report.profile.len(),
                profiled_report.phases.len(),
                "one profile entry per phase"
            );
            assert_eq!(
                plain_report, profiled_report,
                "profiling changed the election outcome"
            );
            assert_eq!(
                plain_report, traced_report,
                "tracing changed the election outcome"
            );
            assert!(
                !recorded.is_empty(),
                "the traced rep recorded no round spans"
            );
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        let median_ratio = ratios[ratios.len() / 2];
        let overhead_pct = (profiled - plain) / plain.max(1e-9) * 100.0;
        let tracing_pct = (median_ratio - 1.0) * 100.0;
        println!(
            "{:<12} {:>6} {:>12.2} {:>12.2} {:>12.2} {:>9.2}% {:>9.2}%",
            label,
            shape.len(),
            plain * 1e3,
            profiled * 1e3,
            traced * 1e3,
            overhead_pct,
            tracing_pct
        );
        // Small runs finish in microseconds and measure scheduler jitter,
        // not tracing; the budget binds where a run outlasts the noise.
        if shape.len() >= 1_000 {
            assert!(
                tracing_pct <= BUDGET_PCT,
                "{label}: tracing overhead {tracing_pct:.2}% exceeds the \
                 {BUDGET_PCT}% budget (median of {} paired ratios)",
                ratios.len()
            );
        }
        rows.push(Value::Object(vec![
            ("label".to_string(), Value::Str(label.to_string())),
            ("n".to_string(), Value::UInt(shape.len() as u64)),
            ("plain_ms".to_string(), Value::Float(plain * 1e3)),
            ("profiled_ms".to_string(), Value::Float(profiled * 1e3)),
            ("traced_ms".to_string(), Value::Float(traced * 1e3)),
            (
                "overhead_pct".to_string(),
                Value::Float((overhead_pct * 100.0).round() / 100.0),
            ),
            (
                "tracing_overhead_pct".to_string(),
                Value::Float((tracing_pct * 100.0).round() / 100.0),
            ),
        ]));
    }
    let _ = trace::uninstall();

    let section = Value::Object(vec![
        (
            "benchmark".to_string(),
            Value::Str(
                "execution profiling disabled vs enabled vs enabled+tracing \
                 (full election, SeededRandom(7)); tracing column is the \
                 median paired traced/profiled ratio"
                    .to_string(),
            ),
        ),
        ("budget_pct".to_string(), Value::Float(BUDGET_PCT)),
        ("results".to_string(), Value::Array(rows)),
    ]);

    // Merge into BENCH_results.json without disturbing the throughput
    // sections (the file may not exist yet on a fresh checkout).
    let out_path = repo_root.join("BENCH_results.json");
    let mut root = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .and_then(|value| match value {
            Value::Object(fields) => Some(fields),
            _ => None,
        })
        .unwrap_or_default();
    root.retain(|(key, _)| key != "telemetry_overhead");
    root.push(("telemetry_overhead".to_string(), section));
    let text = serde_json::to_string_pretty(&Value::Object(root)).expect("results serialize");
    std::fs::write(&out_path, text + "\n").expect("write BENCH_results.json");
    println!("wrote {}", out_path.display());
}
