//! Regenerates experiment F3: DLE against the no-movement erosion baseline
//! (the ablation demonstrating the value of movement and disconnection).
//!
//! Usage: `cargo run --release -p pm-bench --bin fig_erosion_ablation`

fn main() {
    let table = pm_analysis::experiment_erosion_ablation();
    pm_bench::print_table(&table);
}
