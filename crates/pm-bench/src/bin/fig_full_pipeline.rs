//! Regenerates experiment F7: per-phase round counts of the assumption-free
//! pipeline OBD → DLE → Collect (Table 1, last row).
//!
//! Usage: `cargo run --release -p pm-bench --bin fig_full_pipeline [max_radius]`

fn main() {
    let max = pm_bench::arg_or(11).max(4);
    let radii: Vec<u32> = (3..=max).step_by(2).collect();
    let table = pm_analysis::experiment_full_pipeline(&radii);
    pm_bench::print_table(&table);
}
