//! Regenerates experiment F2: DLE rounds against the area diameter `D_A`
//! (Theorem 18).
//!
//! Usage: `cargo run --release -p pm-bench --bin fig_dle_scaling [max_radius]`

fn main() {
    let max = pm_bench::arg_or(12).max(4);
    let radii: Vec<u32> = (3..=max).step_by(2).collect();
    let table = pm_analysis::experiment_dle_scaling(&radii);
    pm_bench::print_table(&table);
}
