//! Regenerates the empirical Table 1 (experiment T1 in DESIGN.md).
//!
//! Usage: `cargo run --release -p pm-bench --bin table1 [scale]`
//! where `scale` is the hexagon radius of the mixed family (default 6).

fn main() {
    let scale = pm_bench::arg_or(6);
    let table = pm_analysis::experiment_table1(scale);
    pm_bench::print_table(&table);
}
