//! Regenerates experiment F9: DLE decision convergence — rounds until 50%,
//! 90% and all particles have decided, sampled between rounds through the
//! steppable `Execution` handle.
//!
//! Usage: `cargo run --release -p pm-bench --bin fig_convergence [max_radius]`

fn main() {
    let max = pm_bench::arg_or(11).max(4);
    let radii: Vec<u32> = (3..=max).step_by(2).collect();
    let table = pm_analysis::experiment_convergence(&radii);
    pm_bench::print_table(&table);
}
