//! Regenerates experiment F4: Collect rounds against the leader's grid
//! eccentricity (Theorem 23 / Corollary 22).
//!
//! Usage: `cargo run --release -p pm-bench --bin fig_collect_scaling [max_eps]`

fn main() {
    let max = pm_bench::arg_or(256).max(8);
    let mut eccs = Vec::new();
    let mut e = 8;
    while e <= max {
        eccs.push(e);
        e *= 2;
    }
    let table = pm_analysis::experiment_collect_scaling(&eccs);
    pm_bench::print_table(&table);
}
