//! Runs every experiment (T1, F2–F9) at moderate scales and prints all
//! result tables — the one-stop reproduction entry point referenced by
//! EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p pm-bench --bin reproduce_all`

fn main() {
    let tables = vec![
        pm_analysis::experiment_table1(6),
        pm_analysis::experiment_dle_scaling(&[3, 5, 7, 9, 11]),
        pm_analysis::experiment_erosion_ablation(),
        pm_analysis::experiment_collect_scaling(&[8, 16, 32, 64, 128, 256]),
        pm_analysis::experiment_breadcrumbs(),
        pm_analysis::experiment_obd_scaling(&[3, 5, 7, 9, 11]),
        pm_analysis::experiment_full_pipeline(&[3, 5, 7, 9]),
        pm_analysis::experiment_scheduler_robustness(),
        pm_analysis::experiment_convergence(&[3, 5, 7, 9]),
    ];
    for table in tables {
        pm_bench::print_table(&table);
        println!();
    }
}
