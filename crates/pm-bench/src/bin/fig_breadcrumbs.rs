//! Regenerates experiment F5: the breadcrumb property of post-DLE
//! configurations (Lemma 19).
//!
//! Usage: `cargo run --release -p pm-bench --bin fig_breadcrumbs`

fn main() {
    let table = pm_analysis::experiment_breadcrumbs();
    pm_bench::print_table(&table);
}
