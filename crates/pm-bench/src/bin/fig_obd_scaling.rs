//! Regenerates experiment F6: OBD rounds against `L_out + D` (Theorem 41),
//! with the unpipelined quadratic baseline for contrast.
//!
//! Usage: `cargo run --release -p pm-bench --bin fig_obd_scaling [max_radius]`

fn main() {
    let max = pm_bench::arg_or(13).max(5);
    let radii: Vec<u32> = (3..=max).step_by(2).collect();
    let table = pm_analysis::experiment_obd_scaling(&radii);
    pm_bench::print_table(&table);
}
