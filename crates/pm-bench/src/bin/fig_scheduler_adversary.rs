//! Regenerates experiment F8: DLE round counts under different fair strong
//! schedulers (the `O(D_A)` bound is worst-case over all fair executions).
//!
//! Usage: `cargo run --release -p pm-bench --bin fig_scheduler_adversary`

fn main() {
    let table = pm_analysis::experiment_scheduler_robustness();
    pm_bench::print_table(&table);
}
