//! Recovery benchmark: rounds-to-recover vs fault rate, self-stabilising
//! election vs the reset-and-recover baseline.
//!
//! For each fault rate (a periodic removal + corruption schedule with a
//! shrinking period), the same seeded plan is measured two ways on the ball
//! family:
//!
//! - **self-stab-max, no reset** (`ResetPolicy::None`): the
//!   Chalopin–Das–Kokkou constant-memory election absorbs the faults on its
//!   own; `reset_needed` must stay `false`.
//! - **dle+collect, reset-and-recover** (`ResetPolicy::Reinitialize`): the
//!   paper pipeline with the legacy global reset after every firing — the
//!   labelled baseline the repo used to call fault tolerance.
//!
//! A second table re-checks the telemetry budget on fault runs: per-phase
//! profiling enabled vs disabled around an identical fault schedule must
//! stay within the existing 2% wall-clock budget (asserted at n ≥ 1000,
//! where the measurement is above the noise floor; the CI smoke cap of
//! n ≤ 200 records the numbers without enforcing).
//!
//! Merges a `recovery` section into `BENCH_results.json` without touching
//! the other sections.
//!
//! Usage: `cargo run --release -p pm-bench --bin recovery [max_n]`

use pm_baselines::SelfStabMaxElection;
use pm_bench::arg_or;
use pm_core::api::{LeaderElection, PaperPipeline, RunOptions, RunReport, StepOutcome};
use pm_core::batch::SchedulerSpec;
use pm_faults::{
    measure_recovery, FaultKind, FaultPlan, FaultProcess, FaultScript, RecoveryReport, ResetPolicy,
};
use pm_grid::Shape;
use pm_scenarios::GeneratorSpec;
use serde_json::Value;
use std::time::Instant;

/// The ball family at n ≈ 100 / 1k, as in the telemetry-overhead bench
/// (10k omitted: reset-and-recover under per-round faults is quadratic-ish
/// and would dominate the bench wall-clock without adding information).
const BALLS: [(&str, GeneratorSpec); 2] = [
    ("ball-100", GeneratorSpec::Hexagon { radius: 5 }),
    ("ball-1k", GeneratorSpec::Hexagon { radius: 18 }),
];

/// Fault rates as (label, period): one removal + one corruption firing
/// every `period` rounds over the first 12 rounds of the election.
const RATES: [(&str, u64); 3] = [("every-6", 6), ("every-3", 3), ("every-2", 2)];

/// The shared schedule at one rate: removals and corruption interleaved.
fn plan_at(period: u64, reset: ResetPolicy) -> FaultPlan {
    FaultPlan::new(41)
        .reset(reset)
        .process(FaultProcess::periodic(
            FaultKind::Removals,
            1,
            period,
            12,
            1,
        ))
        .process(FaultProcess::periodic(
            FaultKind::Corruption,
            2,
            period,
            12,
            2,
        ))
}

fn recovery_row(recovery: &RecoveryReport) -> Value {
    Value::Object(vec![
        (
            "recovery_rounds".to_string(),
            Value::UInt(recovery.recovery_rounds),
        ),
        (
            "total_rounds".to_string(),
            Value::UInt(recovery.total_rounds),
        ),
        (
            "faults_fired".to_string(),
            Value::UInt(recovery.faults_fired as u64),
        ),
        ("removed".to_string(), Value::UInt(recovery.removed as u64)),
        (
            "corrupted".to_string(),
            Value::UInt(recovery.corrupted as u64),
        ),
        (
            "reset_needed".to_string(),
            Value::Bool(recovery.reset_needed),
        ),
    ])
}

/// `iters` back-to-back profiled-or-not fault runs of the self-stabilising
/// election inside one timer — fault runs finish in single-digit
/// milliseconds, so a lone run sits at the scheduler-jitter noise floor;
/// batching amortises it. Returns the last report and the per-run seconds.
fn timed_fault_run(shape: &Shape, plan: &FaultPlan, profile: bool, iters: u32) -> (RunReport, f64) {
    let mut last = None;
    let start = Instant::now();
    for _ in 0..iters {
        let scheduler = SchedulerSpec::SeededRandom(7);
        let mut scheduler = scheduler.build();
        let mut execution = SelfStabMaxElection
            .start(shape, &mut *scheduler, &RunOptions::default())
            .expect("election starts on a connected shape");
        if profile {
            execution.enable_profiling();
        }
        let mut script = FaultScript::new(plan.clone());
        last = Some(loop {
            script.apply_due(&mut execution);
            if let StepOutcome::Finished(report) =
                execution.step_round().expect("election succeeds")
            {
                break report;
            }
        });
    }
    let secs = start.elapsed().as_secs_f64() / f64::from(iters);
    (last.expect("at least one iteration"), secs)
}

fn main() {
    let max_n = arg_or(10_000);
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");

    // Table 1: recovery rounds vs fault rate, no-reset self-stab vs
    // reset-and-recover DLE on the identical seeded schedule.
    let mut rate_rows = Vec::new();
    println!(
        "{:<10} {:>6} {:<8} {:>6} {:>18} {:>18}",
        "scenario", "n", "rate", "fired", "self-stab rec.", "reset-dle rec."
    );
    for (label, spec) in BALLS {
        let shape = spec.build();
        if shape.len() > max_n as usize {
            continue;
        }
        for (rate_label, period) in RATES {
            let opts = RunOptions::default();
            let scheduler = SchedulerSpec::SeededRandom(13);
            let self_stab = measure_recovery(
                &SelfStabMaxElection,
                &shape,
                &scheduler,
                &opts,
                &plan_at(period, ResetPolicy::None),
            )
            .expect("self-stab recovery run succeeds");
            assert!(
                self_stab.recovered && !self_stab.reset_needed,
                "self-stab failed to absorb faults without reset: {self_stab:?}"
            );
            let reset_dle = measure_recovery(
                &PaperPipeline,
                &shape,
                &scheduler,
                &opts,
                &plan_at(period, ResetPolicy::Reinitialize),
            )
            .expect("reset-and-recover run succeeds");
            assert!(reset_dle.recovered, "{reset_dle:?}");
            println!(
                "{:<10} {:>6} {:<8} {:>6} {:>12} rounds {:>12} rounds",
                label,
                shape.len(),
                rate_label,
                self_stab.faults_fired,
                self_stab.recovery_rounds,
                reset_dle.recovery_rounds
            );
            rate_rows.push(Value::Object(vec![
                ("label".to_string(), Value::Str(label.to_string())),
                ("n".to_string(), Value::UInt(shape.len() as u64)),
                ("rate".to_string(), Value::Str(rate_label.to_string())),
                ("self_stab".to_string(), recovery_row(&self_stab)),
                ("reset_dle".to_string(), recovery_row(&reset_dle)),
            ]));
        }
    }

    // Table 2: the telemetry budget holds on fault runs too.
    let budget_pct = 2.0;
    let mut overhead_rows = Vec::new();
    println!(
        "\n{:<10} {:>6} {:>12} {:>12} {:>10}",
        "scenario", "n", "plain_ms", "profiled_ms", "overhead"
    );
    for (label, spec) in BALLS {
        let shape = spec.build();
        if shape.len() > max_n as usize {
            continue;
        }
        let plan = plan_at(3, ResetPolicy::None);
        // Fault runs are milliseconds long, so machine drift (thermal,
        // noisy neighbours) dwarfs the per-step profiling cost. Each rep
        // times the two modes back-to-back — both members of a pair see
        // the same machine state — and the overhead estimate is the
        // *median of the paired ratios*, which drift and outliers cannot
        // skew the way independent minima can. The min times are still
        // reported as the per-mode noise floors.
        let reps = 16;
        let iters = if shape.len() <= 200 { 64 } else { 8 };
        let mut plain = f64::INFINITY;
        let mut profiled = f64::INFINITY;
        let mut ratios = Vec::with_capacity(reps);
        for _ in 0..reps {
            let (plain_report, plain_secs) = timed_fault_run(&shape, &plan, false, iters);
            plain = plain.min(plain_secs);
            let (profiled_report, profiled_secs) = timed_fault_run(&shape, &plan, true, iters);
            profiled = profiled.min(profiled_secs);
            ratios.push(profiled_secs / plain_secs.max(1e-12));
            assert!(plain_report.profile.is_empty());
            assert!(!profiled_report.profile.is_empty());
            assert_eq!(
                plain_report, profiled_report,
                "profiling changed the fault-run outcome"
            );
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
        let median = (ratios[reps / 2 - 1] + ratios[reps / 2]) / 2.0;
        let overhead_pct = (median - 1.0) * 100.0;
        println!(
            "{:<10} {:>6} {:>12.2} {:>12.2} {:>9.2}%",
            label,
            shape.len(),
            plain * 1e3,
            profiled * 1e3,
            overhead_pct
        );
        if shape.len() >= 1_000 {
            assert!(
                overhead_pct <= budget_pct,
                "telemetry overhead on fault runs blew the {budget_pct}% budget: {overhead_pct:.2}%"
            );
        }
        overhead_rows.push(Value::Object(vec![
            ("label".to_string(), Value::Str(label.to_string())),
            ("n".to_string(), Value::UInt(shape.len() as u64)),
            ("plain_ms".to_string(), Value::Float(plain * 1e3)),
            ("profiled_ms".to_string(), Value::Float(profiled * 1e3)),
            (
                "overhead_pct".to_string(),
                Value::Float((overhead_pct * 100.0).round() / 100.0),
            ),
        ]));
    }

    let section = Value::Object(vec![
        (
            "benchmark".to_string(),
            Value::Str(
                "recovery rounds vs fault rate: self-stab (no reset) vs dle+collect \
                 (reset-and-recover), identical seeded schedules, SeededRandom(13)"
                    .to_string(),
            ),
        ),
        ("budget_pct".to_string(), Value::Float(budget_pct)),
        ("fault_rates".to_string(), Value::Array(rate_rows)),
        (
            "profiling_overhead".to_string(),
            Value::Array(overhead_rows),
        ),
    ]);

    let out_path = repo_root.join("BENCH_results.json");
    let mut root = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .and_then(|value| match value {
            Value::Object(fields) => Some(fields),
            _ => None,
        })
        .unwrap_or_default();
    root.retain(|(key, _)| key != "recovery");
    root.push(("recovery".to_string(), section));
    let text = serde_json::to_string_pretty(&Value::Object(root)).expect("results serialize");
    std::fs::write(&out_path, text + "\n").expect("write BENCH_results.json");
    println!("wrote {}", out_path.display());
}
