//! Criterion benchmark of the steppable `Execution` handle: the eager
//! `elect()` path against a hand-driven `start()` + `step_round()` loop on
//! the same workload. The two must cost the same — the handle is the same
//! state machine with the loop inverted, so any gap is pure dispatch
//! overhead (one boxed-trait call per round plus the status polling a
//! driver typically does).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_amoebot::scheduler::SeededRandom;
use pm_core::api::{LeaderElection, PaperPipeline, RunOptions, StepOutcome};
use pm_grid::builder::hexagon;
use std::hint::black_box;
use std::time::Duration;

fn bench_elect_vs_stepping(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution-handle");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for radius in [4u32, 8] {
        let shape = hexagon(radius);
        let opts = RunOptions::default();
        group.bench_with_input(BenchmarkId::new("elect", radius), &shape, |b, shape| {
            b.iter(|| {
                let mut scheduler = SeededRandom::new(7);
                black_box(
                    PaperPipeline
                        .elect(shape, &mut scheduler, &opts)
                        .unwrap()
                        .total_rounds,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("step-loop", radius), &shape, |b, shape| {
            b.iter(|| {
                let mut scheduler = SeededRandom::new(7);
                let mut execution = PaperPipeline.start(shape, &mut scheduler, &opts).unwrap();
                loop {
                    // Poll the upcoming round every step, as a perturbation
                    // driver does (the O(1) accessor, not a full status).
                    black_box(execution.next_round());
                    if let StepOutcome::Finished(report) = execution.step_round().unwrap() {
                        break black_box(report.total_rounds);
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_elect_vs_stepping);
criterion_main!(benches);
