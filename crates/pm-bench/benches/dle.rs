//! Criterion benchmarks of Algorithm DLE (experiment F2's engine): wall-clock
//! cost of the per-activation simulation across shape families and sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_amoebot::scheduler::RoundRobin;
use pm_core::dle::run_dle;
use pm_grid::builder::{annulus, hexagon};
use pm_grid::random::random_blob;
use std::hint::black_box;
use std::time::Duration;

fn bench_dle_hexagons(c: &mut Criterion) {
    let mut group = c.benchmark_group("dle-hexagon");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for radius in [4u32, 8, 12] {
        let shape = hexagon(radius);
        group.bench_with_input(BenchmarkId::from_parameter(radius), &shape, |b, s| {
            b.iter(|| {
                let outcome = run_dle(s, RoundRobin, false).expect("terminates");
                black_box(outcome.stats.rounds)
            });
        });
    }
    group.finish();
}

fn bench_dle_annuli(c: &mut Criterion) {
    let mut group = c.benchmark_group("dle-annulus");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for radius in [6u32, 10] {
        let shape = annulus(radius, radius / 2);
        group.bench_with_input(BenchmarkId::from_parameter(radius), &shape, |b, s| {
            b.iter(|| {
                let outcome = run_dle(s, RoundRobin, false).expect("terminates");
                black_box(outcome.stats.rounds)
            });
        });
    }
    group.finish();
}

fn bench_dle_blobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("dle-blob");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [128usize, 512] {
        let shape = random_blob(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &shape, |b, s| {
            b.iter(|| {
                let outcome = run_dle(s, RoundRobin, false).expect("terminates");
                black_box(outcome.stats.rounds)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dle_hexagons,
    bench_dle_annuli,
    bench_dle_blobs
);
criterion_main!(benches);
