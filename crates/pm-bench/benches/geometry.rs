//! Criterion benchmarks of the geometric substrate: face analysis, boundary
//! rings and diameter computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_grid::builder::{annulus, hexagon, swiss_cheese};
use pm_grid::{boundary_rings, Metric};
use std::hint::black_box;
use std::time::Duration;

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("shape-analysis");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for radius in [4u32, 8, 12] {
        let shape = swiss_cheese(radius, 3);
        group.bench_with_input(BenchmarkId::new("swiss", radius), &shape, |b, s| {
            b.iter(|| black_box(s.analyze().hole_count()));
        });
    }
    group.finish();
}

fn bench_boundary_rings(c: &mut Criterion) {
    let mut group = c.benchmark_group("boundary-rings");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for radius in [4u32, 8, 12] {
        let shape = annulus(radius, radius / 2);
        group.bench_with_input(BenchmarkId::new("annulus", radius), &shape, |b, s| {
            b.iter(|| black_box(boundary_rings(s).len()));
        });
    }
    group.finish();
}

fn bench_diameters(c: &mut Criterion) {
    let mut group = c.benchmark_group("diameters");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for radius in [4u32, 8] {
        let shape = hexagon(radius);
        group.bench_with_input(BenchmarkId::new("area-diameter", radius), &shape, |b, s| {
            b.iter(|| {
                let metric = Metric::new(s);
                black_box(metric.area_diameter())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_analysis,
    bench_boundary_rings,
    bench_diameters
);
criterion_main!(benches);
