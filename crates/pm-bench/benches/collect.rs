//! Criterion benchmarks of Algorithm Collect (experiment F4's engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_amoebot::scheduler::SeededRandom;
use pm_core::collect::CollectSimulator;
use pm_core::dle::run_dle;
use pm_grid::builder::annulus;
use pm_grid::Point;
use std::hint::black_box;
use std::time::Duration;

fn bench_breadcrumb_lines(c: &mut Criterion) {
    let mut group = c.benchmark_group("collect-breadcrumb-line");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for eps in [64u32, 256, 1024] {
        let positions: Vec<Point> = (0..=eps as i32).map(|i| Point::new(i, 0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(eps), &positions, |b, pos| {
            b.iter(|| {
                let mut sim = CollectSimulator::new(Point::ORIGIN, pos);
                black_box(sim.run().rounds)
            });
        });
    }
    group.finish();
}

fn bench_post_dle_collect(c: &mut Criterion) {
    let mut group = c.benchmark_group("collect-post-dle");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for radius in [8u32, 12] {
        let shape = annulus(radius, radius - 1);
        let dle = run_dle(&shape, SeededRandom::new(0), false).expect("terminates");
        let input = (dle.leader_point, dle.final_positions);
        group.bench_with_input(
            BenchmarkId::new("thin-annulus", radius),
            &input,
            |b, (l, pos)| {
                b.iter(|| {
                    let mut sim = CollectSimulator::new(*l, pos);
                    black_box(sim.run().rounds)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_breadcrumb_lines, bench_post_dle_collect);
criterion_main!(benches);
