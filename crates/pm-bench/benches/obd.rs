//! Criterion benchmarks of the OBD primitive and its unpipelined baseline
//! (experiment F6's engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_amoebot::scheduler::RoundRobin;
use pm_baselines::QuadraticBoundary;
use pm_core::api::{LeaderElection, RunOptions};
use pm_core::obd::run_obd;
use pm_grid::builder::{hexagon, swiss_cheese};
use std::hint::black_box;
use std::time::Duration;

fn bench_obd(c: &mut Criterion) {
    let mut group = c.benchmark_group("obd-pipelined");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for radius in [6u32, 10, 14] {
        let shape = hexagon(radius);
        group.bench_with_input(BenchmarkId::new("hexagon", radius), &shape, |b, s| {
            b.iter(|| black_box(run_obd(s).rounds));
        });
    }
    let holey = swiss_cheese(10, 3);
    group.bench_with_input(BenchmarkId::new("swiss", 10u32), &holey, |b, s| {
        b.iter(|| black_box(run_obd(s).rounds));
    });
    group.finish();
}

fn bench_quadratic_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("obd-unpipelined-baseline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for radius in [6u32, 10] {
        let shape = hexagon(radius);
        group.bench_with_input(BenchmarkId::new("hexagon", radius), &shape, |b, s| {
            b.iter(|| {
                let report = QuadraticBoundary
                    .elect(s, &mut RoundRobin, &RunOptions::default())
                    .expect("runs");
                black_box(report.total_rounds)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obd, bench_quadratic_baseline);
criterion_main!(benches);
