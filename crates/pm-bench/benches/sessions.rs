//! Criterion benchmark of the multi-tenant session scheduler: N concurrent
//! small elections driven to completion through `SessionScheduler` sweeps
//! (sequential and sharded) against the same N scenarios through the
//! `BatchRunner`, which finishes each run eagerly. The batch path is the
//! throughput ceiling — no slice bookkeeping, no owned-execution dispatch —
//! so the gap is the price of fair round-robin interleaving, which the
//! server pays to keep thousands of sessions live at once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_core::api::{LeaderElection, PaperPipeline, RunOptions};
use pm_core::batch::{BatchRunner, BatchScenario, SchedulerSpec};
use pm_core::session::{no_hook, Goal, SessionScheduler};
use pm_grid::builder::hexagon;
use std::hint::black_box;
use std::time::Duration;

const SLICE_STEPS: u64 = 16;

fn sessions_total_rounds(n_sessions: u64, threads: usize) -> u64 {
    let shape = hexagon(3);
    let opts = RunOptions::default();
    let mut scheduler: SessionScheduler = SessionScheduler::with_threads(SLICE_STEPS, threads);
    for seed in 0..n_sessions {
        let execution = PaperPipeline
            .start_owned(&shape, SchedulerSpec::SeededRandom(seed).build(), &opts)
            .expect("valid configuration");
        let id = scheduler.admit(execution, ());
        scheduler.set_goal(id, Goal::Complete);
    }
    while scheduler.sweep(&no_hook) > 0 {}
    scheduler
        .ids()
        .into_iter()
        .map(|id| {
            scheduler
                .outcome(id)
                .expect("swept to completion")
                .as_ref()
                .expect("hexagon elects")
                .total_rounds
        })
        .sum()
}

fn batch_total_rounds(n_sessions: u64, threads: usize) -> u64 {
    let shape = hexagon(3);
    let scenarios: Vec<BatchScenario> = (0..n_sessions)
        .map(|seed| BatchScenario {
            label: format!("s{seed}"),
            shape: shape.clone(),
            options: RunOptions::default(),
            scheduler: SchedulerSpec::SeededRandom(seed),
        })
        .collect();
    BatchRunner::with_threads(threads)
        .run(&PaperPipeline, scenarios)
        .into_iter()
        .map(|r| r.expect("hexagon elects").total_rounds)
        .sum()
}

fn bench_sessions_vs_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sessions");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n_sessions in [16u64, 64] {
        group.bench_with_input(
            BenchmarkId::new("batch-seq", n_sessions),
            &n_sessions,
            |b, &n| b.iter(|| black_box(batch_total_rounds(n, 1))),
        );
        group.bench_with_input(
            BenchmarkId::new("scheduler-seq", n_sessions),
            &n_sessions,
            |b, &n| b.iter(|| black_box(sessions_total_rounds(n, 1))),
        );
        group.bench_with_input(
            BenchmarkId::new("scheduler-4t", n_sessions),
            &n_sessions,
            |b, &n| b.iter(|| black_box(sessions_total_rounds(n, 4))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sessions_vs_batch);
criterion_main!(benches);
