//! Criterion benchmarks of the end-to-end election pipelines compared in
//! Table 1 (experiment T1's engine): the paper's two variants and the
//! baselines, on a fixed representative shape — each contender running
//! through the unified `LeaderElection` trait.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_amoebot::scheduler::RoundRobin;
use pm_baselines::{ErosionLeaderElection, QuadraticBoundary, RandomizedBoundary};
use pm_core::api::{LeaderElection, PaperPipeline, RunOptions};
use pm_grid::builder::{hexagon, swiss_cheese};
use pm_grid::Shape;
use std::hint::black_box;
use std::time::Duration;

fn contenders() -> [(&'static str, &'static dyn LeaderElection, RunOptions); 5] {
    [
        (
            "this-paper-O(D_A)",
            &PaperPipeline,
            RunOptions::with_boundary_knowledge(),
        ),
        (
            "this-paper-O(Lout+D)",
            &PaperPipeline,
            RunOptions::default(),
        ),
        (
            "erosion-baseline",
            &ErosionLeaderElection,
            RunOptions::default(),
        ),
        (
            "randomized-baseline",
            &RandomizedBoundary,
            RunOptions::default(),
        ),
        (
            "quadratic-baseline",
            &QuadraticBoundary,
            RunOptions::default(),
        ),
    ]
}

fn bench_contenders_on(c: &mut Criterion, group_name: &str, shape: &Shape, hole_free: bool) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (label, algorithm, opts) in contenders() {
        if !hole_free && algorithm.name() == "erosion-le" {
            // Erosion stalls on shapes with holes (Table 1's assumption
            // column); benchmarking the stall would measure the budget.
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(label), shape, |b, s| {
            b.iter(|| {
                let report = algorithm
                    .elect(s, &mut RoundRobin, &opts)
                    .expect("contender succeeds on its supported workloads");
                black_box(report.total_rounds)
            });
        });
    }
    group.finish();
}

fn bench_table1_row(c: &mut Criterion) {
    bench_contenders_on(c, "table1-hexagon6", &hexagon(6), true);
}

fn bench_table1_holey_row(c: &mut Criterion) {
    bench_contenders_on(c, "table1-swiss6", &swiss_cheese(6, 3), false);
}

criterion_group!(benches, bench_table1_row, bench_table1_holey_row);
criterion_main!(benches);
