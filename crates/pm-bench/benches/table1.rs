//! Criterion benchmarks of the end-to-end election pipelines compared in
//! Table 1 (experiment T1's engine): the paper's two variants and the
//! baselines, on a fixed representative shape.

use criterion::{criterion_group, criterion_main, Criterion};
use pm_amoebot::scheduler::RoundRobin;
use pm_baselines::{run_erosion_le, run_quadratic_boundary, run_randomized_boundary};
use pm_core::pipeline::{elect_leader, ElectionConfig};
use pm_grid::builder::{hexagon, swiss_cheese};
use std::hint::black_box;
use std::time::Duration;

fn bench_table1_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1-hexagon6");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let shape = hexagon(6);

    group.bench_function("this-paper-O(D_A)", |b| {
        b.iter(|| {
            let outcome = elect_leader(
                &shape,
                &ElectionConfig::with_boundary_knowledge(),
                &mut RoundRobin,
            )
            .expect("succeeds");
            black_box(outcome.total_rounds)
        });
    });
    group.bench_function("this-paper-O(Lout+D)", |b| {
        b.iter(|| {
            let outcome = elect_leader(&shape, &ElectionConfig::default(), &mut RoundRobin)
                .expect("succeeds");
            black_box(outcome.total_rounds)
        });
    });
    group.bench_function("erosion-baseline", |b| {
        b.iter(|| black_box(run_erosion_le(&shape, RoundRobin).expect("succeeds").rounds));
    });
    group.bench_function("randomized-baseline", |b| {
        b.iter(|| black_box(run_randomized_boundary(&shape, 7).expect("succeeds").rounds));
    });
    group.bench_function("quadratic-baseline", |b| {
        b.iter(|| black_box(run_quadratic_boundary(&shape).expect("succeeds").rounds));
    });
    group.finish();
}

fn bench_table1_holey_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1-swiss6");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let shape = swiss_cheese(6, 3);
    group.bench_function("this-paper-O(Lout+D)", |b| {
        b.iter(|| {
            let outcome = elect_leader(&shape, &ElectionConfig::default(), &mut RoundRobin)
                .expect("succeeds");
            black_box(outcome.total_rounds)
        });
    });
    group.bench_function("quadratic-baseline", |b| {
        b.iter(|| black_box(run_quadratic_boundary(&shape).expect("succeeds").rounds));
    });
    group.finish();
}

criterion_group!(benches, bench_table1_row, bench_table1_holey_row);
criterion_main!(benches);
