//! Property-based tests of the particle system: occupancy invariants under
//! random legal move sequences, scheduler fairness, and run accounting.

use pm_amoebot::algorithm::{ActivationContext, Algorithm, InitContext};
use pm_amoebot::scheduler::{
    DoubleActivation, ReverseRoundRobin, RoundRobin, Runner, Scheduler, SeededRandom,
};
use pm_amoebot::system::ParticleSystem;
use pm_amoebot::ParticleId;
use pm_grid::builder::{hexagon, line};
use pm_grid::{Direction, Shape};
use proptest::prelude::*;

/// A do-nothing algorithm used to build systems for direct manipulation.
struct Inert;
impl Algorithm for Inert {
    type Memory = ();
    fn init(&self, _ctx: &InitContext) {}
    fn activate(&self, ctx: &mut ActivationContext<'_, ()>) {
        ctx.terminate();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Applying arbitrary sequences of (possibly illegal) movement commands
    /// never corrupts the occupancy map: illegal commands are rejected with an
    /// error and legal ones preserve the invariants.
    #[test]
    fn random_move_sequences_preserve_invariants(ops in proptest::collection::vec((0usize..64, 0u8..3, 0i32..6), 1..120)) {
        let mut system = ParticleSystem::from_shape(&hexagon(2), &Inert);
        let n = system.len();
        for (raw_id, op, dir) in ops {
            let id = ParticleId::from_index(raw_id % n);
            let dir = Direction::from_index(dir);
            // Ignore the result: both Ok and Err are fine, the invariant is
            // what matters.
            let _ = match op {
                0 => system.expand(id, dir),
                1 => system.contract_to_head(id),
                _ => system.contract_to_tail(id),
            };
            system.check_invariants().expect("occupancy invariants violated");
            prop_assert_eq!(system.len(), n, "particles must never be created or destroyed");
            let occupied: usize = system
                .iter()
                .map(|(_, p)| if p.is_expanded() { 2 } else { 1 })
                .sum();
            prop_assert_eq!(occupied, system.shape().len());
        }
    }

    /// Every scheduler activates every live particle at least once per round,
    /// for arbitrary particle counts.
    #[test]
    fn schedulers_are_fair(n in 1usize..40, seed in any::<u64>()) {
        let ids: Vec<ParticleId> = (0..n).map(ParticleId::from_index).collect();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(RoundRobin),
            Box::new(ReverseRoundRobin),
            Box::new(SeededRandom::new(seed)),
            Box::new(DoubleActivation),
        ];
        for scheduler in schedulers.iter_mut() {
            for round in 0..3u64 {
                let order = scheduler.round_order(&ids, round);
                for id in &ids {
                    prop_assert!(order.contains(id), "{} missing from {}", id, scheduler.name());
                }
            }
        }
    }
}

/// An algorithm whose particles walk east for a fixed number of expansions
/// and then terminate: exercises expansion/contraction accounting end to end.
struct MarchEast {
    steps: u8,
}

#[derive(Clone, Debug, Default)]
struct MarchMemory {
    done: u8,
}

impl Algorithm for MarchEast {
    type Memory = MarchMemory;
    fn init(&self, _ctx: &InitContext) -> MarchMemory {
        MarchMemory::default()
    }
    fn activate(&self, ctx: &mut ActivationContext<'_, MarchMemory>) {
        if ctx.is_expanded() {
            ctx.contract_to_head().unwrap();
            return;
        }
        if ctx.memory().done >= self.steps {
            ctx.terminate();
            return;
        }
        // March east: into an empty point directly, or by handover when the
        // point ahead is the tail of an expanded particle.
        let can_move = match ctx.neighbor_at_head(Direction::E) {
            None => true,
            Some(q) => ctx.neighbor_is_expanded(q),
        };
        if can_move {
            ctx.memory_mut().done += 1;
            ctx.expand(Direction::E).unwrap();
        }
    }
}

#[test]
fn marching_particles_account_their_moves() {
    // A single particle marching 5 steps east: 5 expansions + 5 contractions.
    let shape = Shape::from_points([pm_grid::Point::ORIGIN]);
    let system = ParticleSystem::from_shape(&shape, &MarchEast { steps: 5 });
    let mut runner = Runner::new(system, MarchEast { steps: 5 }, RoundRobin);
    let stats = runner.run(64).unwrap();
    assert_eq!(stats.expansions, 5);
    assert_eq!(stats.contractions, 5);
    assert_eq!(stats.handovers, 0);
    let system = runner.into_system();
    assert_eq!(
        system.particle_at(pm_grid::Point::new(5, 0)),
        Some(ParticleId::from_index(0))
    );
}

#[test]
fn marching_line_uses_handovers_when_blocked() {
    // A line of particles all marching east: the leftmost ones push into
    // their neighbours via handovers.
    let system = ParticleSystem::from_shape(&line(4), &MarchEast { steps: 3 });
    let mut runner =
        Runner::new(system, MarchEast { steps: 3 }, RoundRobin).with_connectivity_tracking();
    let stats = runner.run(200).unwrap();
    assert!(stats.handovers > 0, "expected at least one handover");
    assert_eq!(stats.final_connected, Some(true));
    runner.system().check_invariants().unwrap();
}
