//! The particle system: configuration and movement operations (Section 2.2).

use crate::algorithm::{Algorithm, InitContext};
use crate::particle::{Particle, ParticleId};
use pm_grid::{Direction, GridRect, Point, Shape, DIRECTIONS};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// An error returned by a movement operation that violates the amoebot
/// model's rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveError {
    /// The particle attempted to expand while already expanded.
    AlreadyExpanded,
    /// The particle attempted to contract while contracted.
    NotExpanded,
    /// The expansion target is occupied by a contracted particle (no
    /// handover is possible).
    TargetOccupied,
    /// The handover partner is not in a state that permits the handover.
    InvalidHandover,
    /// The referenced particle id does not exist.
    NoSuchParticle,
}

impl fmt::Display for MoveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            MoveError::AlreadyExpanded => "particle is already expanded",
            MoveError::NotExpanded => "particle is not expanded",
            MoveError::TargetOccupied => "target point is occupied by a contracted particle",
            MoveError::InvalidHandover => "handover partner is not in a valid state",
            MoveError::NoSuchParticle => "no such particle",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for MoveError {}

/// Which occupancy data structure a [`ParticleSystem`] uses.
///
/// The dense backend is the default: a flat `Vec<Option<ParticleId>>` over
/// the initial shape's (slightly expanded) bounding box gives `O(1)`
/// neighbour probes during activations, with a hash-map overflow for the
/// rare particle that wanders outside the box. The hashed backend is the
/// pre-0.2 `HashMap` representation, kept selectable so differential tests
/// can prove the two produce bit-identical executions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyBackend {
    /// Flat vector indexed by [`GridRect`] cell id (default).
    #[default]
    Dense,
    /// `HashMap<Point, ParticleId>` (legacy reference implementation).
    Hashed,
}

/// How far beyond the initial bounding box the dense occupancy grid extends.
/// Movements past the margin fall back to the overflow map, so correctness
/// never depends on this value.
const DENSE_MARGIN: u32 = 2;

/// The occupancy map: which particle (if any) occupies each grid point.
#[derive(Clone, Debug)]
enum Occupancy {
    /// Flat vector over a bounded rectangle plus an overflow map for points
    /// outside it.
    Dense {
        rect: GridRect,
        cells: Vec<Option<ParticleId>>,
        overflow: HashMap<Point, ParticleId>,
        len: usize,
    },
    /// Plain hash map (reference implementation).
    Hashed(HashMap<Point, ParticleId>),
}

impl Occupancy {
    fn for_shape(shape: &Shape, backend: OccupancyBackend) -> Occupancy {
        match (backend, GridRect::of_shape(shape, DENSE_MARGIN)) {
            (OccupancyBackend::Dense, Some(rect)) => Occupancy::Dense {
                cells: vec![None; rect.cells()],
                rect,
                overflow: HashMap::new(),
                len: 0,
            },
            // Empty shapes (and the legacy backend) use the hash map.
            _ => Occupancy::Hashed(HashMap::with_capacity(shape.len())),
        }
    }

    /// The particle occupying `p`, if any.
    #[inline]
    fn get(&self, p: Point) -> Option<ParticleId> {
        match self {
            Occupancy::Dense {
                rect,
                cells,
                overflow,
                ..
            } => match rect.cell(p) {
                Some(cell) => cells[cell],
                None => overflow.get(&p).copied(),
            },
            Occupancy::Hashed(map) => map.get(&p).copied(),
        }
    }

    /// Maps `p` to `id`, overwriting any previous occupant (handovers
    /// transfer a point between particles in one step).
    fn insert(&mut self, p: Point, id: ParticleId) {
        match self {
            Occupancy::Dense {
                rect,
                cells,
                overflow,
                len,
            } => match rect.cell(p) {
                Some(cell) => {
                    if cells[cell].is_none() {
                        *len += 1;
                    }
                    cells[cell] = Some(id);
                }
                None => {
                    if overflow.insert(p, id).is_none() {
                        *len += 1;
                    }
                }
            },
            Occupancy::Hashed(map) => {
                map.insert(p, id);
            }
        }
    }

    /// Frees `p` if it is currently occupied by `id` (a contraction must not
    /// free a point that was already handed over to another particle).
    fn remove_if(&mut self, p: Point, id: ParticleId) {
        match self {
            Occupancy::Dense {
                rect,
                cells,
                overflow,
                len,
            } => match rect.cell(p) {
                Some(cell) => {
                    if cells[cell] == Some(id) {
                        cells[cell] = None;
                        *len -= 1;
                    }
                }
                None => {
                    if overflow.get(&p) == Some(&id) {
                        overflow.remove(&p);
                        *len -= 1;
                    }
                }
            },
            Occupancy::Hashed(map) => {
                if map.get(&p) == Some(&id) {
                    map.remove(&p);
                }
            }
        }
    }

    /// Empties the map (backend and dense rectangle retained), so a
    /// snapshot restore can re-insert every occupied point from scratch.
    fn clear(&mut self) {
        match self {
            Occupancy::Dense {
                cells,
                overflow,
                len,
                ..
            } => {
                cells.iter_mut().for_each(|slot| *slot = None);
                overflow.clear();
                *len = 0;
            }
            Occupancy::Hashed(map) => map.clear(),
        }
    }

    /// Number of occupied points.
    fn len(&self) -> usize {
        match self {
            Occupancy::Dense { len, .. } => *len,
            Occupancy::Hashed(map) => map.len(),
        }
    }

    /// All occupied points (in no particular order).
    fn points(&self) -> Vec<Point> {
        match self {
            Occupancy::Dense {
                rect,
                cells,
                overflow,
                len,
            } => {
                let mut out = Vec::with_capacity(*len);
                for (cell, slot) in cells.iter().enumerate() {
                    if slot.is_some() {
                        out.push(rect.point(cell));
                    }
                }
                out.extend(overflow.keys().copied());
                out
            }
            Occupancy::Hashed(map) => map.keys().copied().collect(),
        }
    }
}

/// The distinct neighbouring particles of one particle, in ascending id
/// order, stored inline (no heap allocation): a particle occupies at most
/// two points, whose neighbourhoods contain at most twelve distinct other
/// particles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Neighbors {
    ids: [ParticleId; 12],
    len: u8,
}

impl Neighbors {
    fn new() -> Neighbors {
        Neighbors {
            ids: [ParticleId(0); 12],
            len: 0,
        }
    }

    /// Inserts an id, keeping the list sorted and duplicate-free.
    fn insert(&mut self, id: ParticleId) {
        let n = self.len as usize;
        let mut i = 0;
        while i < n && self.ids[i] < id {
            i += 1;
        }
        if i < n && self.ids[i] == id {
            return;
        }
        let mut j = n;
        while j > i {
            self.ids[j] = self.ids[j - 1];
            j -= 1;
        }
        self.ids[i] = id;
        self.len += 1;
    }

    /// Number of distinct neighbours.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether there are no neighbours.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The neighbours as a sorted slice.
    pub fn as_slice(&self) -> &[ParticleId] {
        &self.ids[..self.len as usize]
    }

    /// Iterates over the neighbours in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = ParticleId> + '_ {
        self.as_slice().iter().copied()
    }

    /// Whether `id` is among the neighbours.
    pub fn contains(&self, id: ParticleId) -> bool {
        self.as_slice().binary_search(&id).is_ok()
    }
}

impl IntoIterator for Neighbors {
    type Item = ParticleId;
    type IntoIter = std::iter::Take<std::array::IntoIter<ParticleId, 12>>;
    fn into_iter(self) -> Self::IntoIter {
        self.ids.into_iter().take(self.len as usize)
    }
}

/// Builds the [`InitContext`] of a particle at `point` from a shape
/// analysis — the single definition of what a particle sees at
/// initialization time, shared by initial construction
/// ([`ParticleSystem::from_shape_with_backend`]) and perturbation resets
/// ([`ParticleSystem::reinitialize`]), so the two can never diverge.
fn init_context(analysis: &pm_grid::ShapeAnalysis, point: Point) -> InitContext {
    let mut occupied = [false; 6];
    let mut outer = [false; 6];
    for (i, d) in DIRECTIONS.iter().enumerate() {
        let n = point.neighbor(*d);
        occupied[i] = analysis.contains(n);
        outer[i] = !occupied[i] && analysis.is_outer_face_point(n);
    }
    InitContext {
        point,
        occupied,
        outer,
        is_boundary: occupied.iter().any(|o| !o),
    }
}

/// The mutation surface a perturbation script sees mid-run.
///
/// [`Runner::control`](crate::scheduler::Runner::control) hands out a
/// `SystemControl` between rounds of a round-driven phase (surfaced upward
/// as `Execution::system` in `pm-core`), so callers can inject adversarial
/// perturbations — remove particles, split the configuration — without
/// knowing the algorithm's memory type. After mutating, a perturbation calls
/// [`SystemControl::reinitialize`]: the adversary resets the survivors into a
/// fresh permitted initial configuration and the algorithm restarts its
/// election on the perturbed shape (modelling the recovery that
/// self-stabilising leader election automates, cf. arXiv 2408.08775).
pub trait SystemControl {
    /// Number of particles still in the system.
    fn particle_count(&self) -> usize;

    /// Head positions of the particles still in the system, in creation
    /// (id) order — a deterministic enumeration for seeded perturbations.
    fn particle_positions(&self) -> Vec<Point>;

    /// The currently occupied shape.
    fn occupied_shape(&self) -> Shape;

    /// Whether the occupied shape is currently connected.
    fn is_connected(&self) -> bool;

    /// Removes the particle occupying `p` (head or tail; the particle
    /// vanishes entirely). Returns whether a particle was removed.
    fn remove_at(&mut self, p: Point) -> bool;

    /// Adds a fresh contracted particle at the empty point `p`, with a
    /// memory produced by the algorithm's initializer on the post-addition
    /// shape (regrow faults). Returns whether a particle was added (`false`
    /// if the point was occupied).
    fn add_at(&mut self, p: Point) -> bool;

    /// Corrupts the memory of the particle occupying `p` with adversarial
    /// `entropy` via the algorithm's corruption hook
    /// ([`crate::algorithm::Algorithm::corrupt`]). Returns whether a memory
    /// was changed (`false` on an empty point, or when the algorithm
    /// defines no corruption model).
    fn corrupt_at(&mut self, p: Point, entropy: u64) -> bool;

    /// Re-initializes every surviving particle from the current
    /// configuration: expanded particles are force-contracted into their
    /// heads, memories are rebuilt by the algorithm's initializer on the
    /// current shape (fresh outer-boundary flags via the
    /// invalidate-on-mutation analysis cache), and termination flags are
    /// cleared. Movement counters are *not* reset — the reset is the
    /// adversary's action, and the report keeps the whole run's totals.
    fn reinitialize(&mut self);
}

/// A portable snapshot of a [`ParticleSystem`] mid-run: exactly the state
/// that cannot be rebuilt from the initial configuration.
///
/// The occupancy map is *not* serialized — it is a pure function of the
/// particles' occupied points, and [`ParticleSystem::restore_snapshot`]
/// rebuilds it on the target system's existing backend (whose dense
/// rectangle derives from the initial shape, exactly as in the live run).
/// The woken queue is likewise dropped: waking a particle clears its
/// parked flag *before* queueing, so the parked flags alone determine the
/// next round's live set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SystemSnapshot<M> {
    /// Every particle slot, including removed ones (ids stay stable).
    pub particles: Vec<Particle<M>>,
    /// `removed[i]` iff slot `i` was removed by a perturbation.
    pub removed: Vec<bool>,
    /// Quiescence-parking flags.
    pub parked: Vec<bool>,
    /// Cumulative expansion count.
    pub expansions: u64,
    /// Cumulative contraction count.
    pub contractions: u64,
    /// Cumulative handover count.
    pub handovers: u64,
}

/// The particle system: a set of particles on the triangular grid together
/// with the occupancy map, movement operations and movement counters.
///
/// The generic parameter `M` is the algorithm-specific per-particle memory.
///
/// Unlike most of the amoebot literature (and following this paper), the
/// system does **not** enforce connectivity after every move: temporary
/// disconnection is allowed, and only the initial and final configurations of
/// an algorithm are required to be connected.
#[derive(Clone, Debug)]
pub struct ParticleSystem<M> {
    particles: Vec<Particle<M>>,
    occupancy: Occupancy,
    /// `removed[i]` iff particle `i` was removed by a perturbation; removed
    /// slots stay in `particles` so ids remain stable, but are excluded from
    /// every query.
    removed: Vec<bool>,
    /// Number of particles not removed.
    alive: usize,
    /// Number of *alive* particles that have reached a final state (kept
    /// incremental so the runner's per-round completion check is `O(1)`).
    terminated: usize,
    /// Quiescence parking (see [`crate::algorithm::Algorithm::supports_quiescence`]):
    /// `parked[i]` iff particle `i`'s last activation changed nothing and
    /// nothing in its local view has changed since, so the runner may skip it.
    parked: Vec<bool>,
    /// Parked particles whose local view changed since they parked; drained
    /// by the runner at the next round boundary.
    woken: Vec<ParticleId>,
    /// Whether parking/waking bookkeeping is active (set by the runner from
    /// the algorithm's opt-in; all hooks are no-ops when disabled).
    parking: bool,
    expansions: u64,
    contractions: u64,
    handovers: u64,
}

impl<M> ParticleSystem<M> {
    /// Creates a system of contracted particles, one per point of `shape`,
    /// with memories produced by the algorithm's initializer, on the default
    /// (dense) occupancy backend.
    ///
    /// This corresponds to the paper's permitted initial configurations:
    /// connected (not enforced here — generators produce connected shapes and
    /// the election pipeline checks it), non-empty, contracted.
    pub fn from_shape<A>(shape: &Shape, algorithm: &A) -> ParticleSystem<M>
    where
        A: Algorithm<Memory = M> + ?Sized,
    {
        ParticleSystem::from_shape_with_backend(shape, algorithm, OccupancyBackend::default())
    }

    /// As [`ParticleSystem::from_shape`], with an explicit occupancy backend
    /// (differential tests run the same execution on both backends and
    /// compare results bit for bit).
    pub fn from_shape_with_backend<A>(
        shape: &Shape,
        algorithm: &A,
        backend: OccupancyBackend,
    ) -> ParticleSystem<M>
    where
        A: Algorithm<Memory = M> + ?Sized,
    {
        let analysis = shape.analyze();
        let mut particles = Vec::with_capacity(shape.len());
        let mut occupancy = Occupancy::for_shape(shape, backend);
        for point in shape.iter() {
            let ctx = init_context(&analysis, point);
            let memory = algorithm.init(&ctx);
            let id = ParticleId(particles.len());
            occupancy.insert(point, id);
            particles.push(Particle::contracted(point, memory));
        }
        let n = particles.len();
        ParticleSystem {
            particles,
            occupancy,
            removed: vec![false; n],
            alive: n,
            terminated: 0,
            parked: vec![false; n],
            woken: Vec::new(),
            parking: false,
            expansions: 0,
            contractions: 0,
            handovers: 0,
        }
    }

    /// Number of particles (excluding any removed by perturbations).
    pub fn len(&self) -> usize {
        self.alive
    }

    /// Whether the system has no particles.
    pub fn is_empty(&self) -> bool {
        self.alive == 0
    }

    /// All particle ids (excluding removed particles), in creation order.
    pub fn ids(&self) -> impl Iterator<Item = ParticleId> + '_ {
        (0..self.particles.len())
            .filter(|i| !self.removed[*i])
            .map(ParticleId)
    }

    /// Whether the particle was removed by a perturbation.
    pub fn is_removed(&self, id: ParticleId) -> bool {
        self.removed[id.0]
    }

    /// The particle with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn particle(&self, id: ParticleId) -> &Particle<M> {
        &self.particles[id.0]
    }

    /// Mutable access to the particle with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn particle_mut(&mut self, id: ParticleId) -> &mut Particle<M> {
        &mut self.particles[id.0]
    }

    /// Marks the particle as having reached a final state, keeping the
    /// incremental terminated count in sync (this is the only way particles
    /// terminate; the flag never reverts).
    pub(crate) fn set_terminated(&mut self, id: ParticleId) {
        let particle = &mut self.particles[id.0];
        if !particle.terminated {
            particle.terminated = true;
            self.terminated += 1;
        }
    }

    /// The particle occupying `point` (as head or tail), if any.
    #[inline]
    pub fn particle_at(&self, point: Point) -> Option<ParticleId> {
        self.occupancy.get(point)
    }

    /// Whether `point` is occupied by some particle.
    #[inline]
    pub fn is_occupied(&self, point: Point) -> bool {
        self.occupancy.get(point).is_some()
    }

    /// The current shape of the particle system: the set of occupied points.
    pub fn shape(&self) -> Shape {
        Shape::from_points(self.occupancy.points())
    }

    /// Whether the particle system's shape is currently connected.
    ///
    /// On the dense backend this runs a BFS directly over the occupancy grid
    /// (no intermediate `Shape` is built).
    pub fn is_connected(&self) -> bool {
        let Occupancy::Dense {
            rect,
            cells,
            overflow,
            len,
        } = &self.occupancy
        else {
            return self.shape().is_connected();
        };
        if *len == 0 {
            return true;
        }
        let start = match cells.iter().position(|slot| slot.is_some()) {
            Some(cell) => rect.point(cell),
            None => *overflow.keys().next().expect("len > 0"),
        };
        let mut visited_cells = vec![false; cells.len()];
        let mut visited_overflow: HashSet<Point> = HashSet::new();
        let visit = |p: Point,
                     visited_cells: &mut Vec<bool>,
                     visited_overflow: &mut HashSet<Point>|
         -> bool {
            match rect.cell(p) {
                Some(cell) => {
                    if cells[cell].is_none() || visited_cells[cell] {
                        false
                    } else {
                        visited_cells[cell] = true;
                        true
                    }
                }
                None => overflow.contains_key(&p) && visited_overflow.insert(p),
            }
        };
        let mut stack = Vec::with_capacity(64);
        visit(start, &mut visited_cells, &mut visited_overflow);
        stack.push(start);
        let mut seen = 1usize;
        while let Some(p) = stack.pop() {
            for n in p.neighbors() {
                if visit(n, &mut visited_cells, &mut visited_overflow) {
                    seen += 1;
                    stack.push(n);
                }
            }
        }
        seen == *len
    }

    /// Whether every particle is contracted.
    pub fn all_contracted(&self) -> bool {
        self.iter().all(|(_, p)| p.is_contracted())
    }

    /// Whether every particle has reached a final state (`O(1)` — the count
    /// is maintained incrementally).
    pub fn all_terminated(&self) -> bool {
        self.terminated == self.alive
    }

    /// The distinct particles adjacent to any point occupied by `id`
    /// (the paper's `N(p)`), in deterministic (ascending id) order.
    ///
    /// The result is collected on the stack ([`Neighbors`]): a particle
    /// occupies at most two points with at most twelve distinct neighbouring
    /// particles, so the per-activation hot path performs no allocation.
    pub fn neighbors_of(&self, id: ParticleId) -> Neighbors {
        let particle = self.particle(id);
        let mut out = Neighbors::new();
        for p in particle.occupied_points() {
            for n in p.neighbors() {
                if let Some(other) = self.particle_at(n) {
                    if other != id {
                        out.insert(other);
                    }
                }
            }
        }
        out
    }

    /// Movement counters: `(expansions, contractions, handovers)`.
    pub fn move_counts(&self) -> (u64, u64, u64) {
        (self.expansions, self.contractions, self.handovers)
    }

    /// Expands the contracted particle `id` from its point into the adjacent
    /// point in direction `dir`.
    ///
    /// If the target point is empty this is a plain expansion. If the target
    /// point is occupied by an **expanded** particle, the move is performed
    /// as a handover: the occupying particle contracts out of the target
    /// point and `id` expands into it, atomically.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::AlreadyExpanded`] if `id` is expanded, and
    /// [`MoveError::TargetOccupied`] if the target is occupied by a
    /// contracted particle.
    pub fn expand(&mut self, id: ParticleId, dir: Direction) -> Result<(), MoveError> {
        if id.0 >= self.particles.len() {
            return Err(MoveError::NoSuchParticle);
        }
        if self.particles[id.0].is_expanded() {
            return Err(MoveError::AlreadyExpanded);
        }
        let origin = self.particles[id.0].head;
        let target = origin.neighbor(dir);
        match self.particle_at(target) {
            None => {
                self.particles[id.0].head = target;
                // Tail stays at `origin`.
                self.occupancy.insert(target, id);
                self.expansions += 1;
                self.wake_adjacent_to(origin);
                self.wake_adjacent_to(target);
                Ok(())
            }
            Some(other_id) => {
                let other = &self.particles[other_id.0];
                if other.is_contracted() {
                    return Err(MoveError::TargetOccupied);
                }
                // Handover: `other` contracts out of `target`, `id` expands
                // into it.
                let other_kept = if other.tail == target {
                    self.particles[other_id.0].tail = self.particles[other_id.0].head;
                    self.particles[other_id.0].head
                } else {
                    debug_assert_eq!(other.head, target);
                    self.particles[other_id.0].head = self.particles[other_id.0].tail;
                    self.particles[other_id.0].tail
                };
                self.particles[id.0].head = target;
                self.occupancy.insert(target, id);
                self.handovers += 1;
                if self.parking {
                    self.wake(other_id);
                    self.wake_adjacent_to(origin);
                    self.wake_adjacent_to(target);
                    self.wake_adjacent_to(other_kept);
                }
                Ok(())
            }
        }
    }

    /// Contracts the expanded particle `id` into its head point.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::NotExpanded`] if the particle is contracted.
    pub fn contract_to_head(&mut self, id: ParticleId) -> Result<(), MoveError> {
        if id.0 >= self.particles.len() {
            return Err(MoveError::NoSuchParticle);
        }
        let particle = &self.particles[id.0];
        if particle.is_contracted() {
            return Err(MoveError::NotExpanded);
        }
        let tail = particle.tail;
        let head = particle.head;
        // The tail slot is released only if it still belongs to this
        // particle (it always does: handovers update occupancy eagerly).
        self.occupancy.remove_if(tail, id);
        self.particles[id.0].tail = self.particles[id.0].head;
        self.contractions += 1;
        self.wake_adjacent_to(tail);
        self.wake_adjacent_to(head);
        Ok(())
    }

    /// Contracts the expanded particle `id` into its tail point.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::NotExpanded`] if the particle is contracted.
    pub fn contract_to_tail(&mut self, id: ParticleId) -> Result<(), MoveError> {
        if id.0 >= self.particles.len() {
            return Err(MoveError::NoSuchParticle);
        }
        let particle = &self.particles[id.0];
        if particle.is_contracted() {
            return Err(MoveError::NotExpanded);
        }
        let head = particle.head;
        let tail = particle.tail;
        self.occupancy.remove_if(head, id);
        self.particles[id.0].head = self.particles[id.0].tail;
        self.contractions += 1;
        self.wake_adjacent_to(head);
        self.wake_adjacent_to(tail);
        Ok(())
    }

    /// Consumes the system and returns the particles (removed slots
    /// excluded).
    pub fn into_particles(self) -> Vec<Particle<M>> {
        let removed = self.removed;
        self.particles
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !removed[*i])
            .map(|(_, p)| p)
            .collect()
    }

    /// Iterates over `(id, particle)` pairs (removed particles excluded).
    pub fn iter(&self) -> impl Iterator<Item = (ParticleId, &Particle<M>)> {
        self.particles
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.removed[*i])
            .map(|(i, p)| (ParticleId(i), p))
    }

    /// Head positions of all particles, in creation (id) order — the
    /// deterministic enumeration used by seeded perturbations.
    pub fn particle_positions(&self) -> Vec<Point> {
        self.iter().map(|(_, p)| p.head()).collect()
    }

    /// Removes a particle from the system entirely (perturbation support):
    /// its points are vacated and it is excluded from all further queries and
    /// activations. Returns `false` if the id was already removed.
    pub fn remove_particle(&mut self, id: ParticleId) -> bool {
        if id.0 >= self.particles.len() || self.removed[id.0] {
            return false;
        }
        let (head, tail) = {
            let p = &self.particles[id.0];
            (p.head, p.tail)
        };
        self.occupancy.remove_if(head, id);
        if tail != head {
            self.occupancy.remove_if(tail, id);
        }
        self.removed[id.0] = true;
        self.alive -= 1;
        if self.particles[id.0].terminated {
            self.terminated -= 1;
        }
        // Neighbouring particles observe the vacated points.
        self.wake_adjacent_to(head);
        if tail != head {
            self.wake_adjacent_to(tail);
        }
        true
    }

    /// Adds a fresh contracted particle at the empty `point` (regrow-fault
    /// support): it gets a new id (slots of removed particles are never
    /// reused), a memory produced by the algorithm's initializer on the
    /// *post-addition* shape, and takes part in every subsequent round.
    /// Returns `false` — without changing anything — if the point is
    /// occupied.
    ///
    /// Snapshots taken before an addition have fewer particle slots than
    /// the grown system, so [`ParticleSystem::restore_snapshot`] rejects
    /// them; checkpoint layers fall back to replaying from the initial
    /// configuration, which re-applies the addition deterministically.
    pub fn add_particle<A>(&mut self, point: Point, algorithm: &A) -> bool
    where
        A: Algorithm<Memory = M> + ?Sized,
    {
        if self.occupancy.get(point).is_some() {
            return false;
        }
        let mut points = self.occupancy.points();
        points.push(point);
        let shape = Shape::from_points(points);
        let analysis = shape.analyze();
        let ctx = init_context(&analysis, point);
        let memory = algorithm.init(&ctx);
        let id = ParticleId(self.particles.len());
        self.occupancy.insert(point, id);
        self.particles.push(Particle::contracted(point, memory));
        self.removed.push(false);
        self.parked.push(false);
        self.alive += 1;
        // Neighbouring particles observe the newly occupied point.
        self.wake_adjacent_to(point);
        true
    }

    /// Corrupts the memory of particle `id` with adversarial `entropy` via
    /// the algorithm's [`Algorithm::corrupt`] hook (transient-fault
    /// support). If the memory changed, any final-state flag is revoked —
    /// the one sanctioned exception to termination monotonicity, since an
    /// adversary that scrambles a memory can scramble a "final" state too —
    /// and the particle and its neighbours are woken. Returns whether the
    /// memory was changed.
    pub fn corrupt_particle<A>(&mut self, id: ParticleId, algorithm: &A, entropy: u64) -> bool
    where
        A: Algorithm<Memory = M> + ?Sized,
    {
        if id.0 >= self.particles.len() || self.removed[id.0] {
            return false;
        }
        if !algorithm.corrupt(&mut self.particles[id.0].memory, entropy) {
            return false;
        }
        if self.particles[id.0].terminated {
            self.particles[id.0].terminated = false;
            self.terminated -= 1;
        }
        self.wake(id);
        self.wake_neighbors_of(id);
        true
    }

    /// Re-initializes every surviving particle from the current
    /// configuration (see [`SystemControl::reinitialize`]). Expanded
    /// particles are force-contracted into their heads without charging the
    /// movement counters: the reset is the adversary's action, not the
    /// algorithm's.
    pub fn reinitialize<A>(&mut self, algorithm: &A)
    where
        A: Algorithm<Memory = M> + ?Sized,
    {
        for i in 0..self.particles.len() {
            if self.removed[i] {
                continue;
            }
            let (head, tail) = (self.particles[i].head, self.particles[i].tail);
            if head != tail {
                self.occupancy.remove_if(tail, ParticleId(i));
                self.particles[i].tail = head;
            }
        }
        let shape = Shape::from_points(self.iter().map(|(_, p)| p.head()));
        let analysis = shape.analyze();
        for i in 0..self.particles.len() {
            if self.removed[i] {
                continue;
            }
            let point = self.particles[i].head;
            let ctx = init_context(&analysis, point);
            self.particles[i].memory = algorithm.init(&ctx);
            self.particles[i].terminated = false;
        }
        self.terminated = 0;
        self.parked.iter_mut().for_each(|p| *p = false);
        self.woken.clear();
    }

    /// Captures the system's mid-run state for a [`SystemSnapshot`].
    pub fn snapshot(&self) -> SystemSnapshot<M>
    where
        M: Clone,
    {
        SystemSnapshot {
            particles: self.particles.clone(),
            removed: self.removed.clone(),
            parked: self.parked.clone(),
            expansions: self.expansions,
            contractions: self.contractions,
            handovers: self.handovers,
        }
    }

    /// Overwrites this system's state with a snapshot captured by
    /// [`ParticleSystem::snapshot`] of a system built from the *same*
    /// initial shape. The occupancy map is rebuilt in place (backend and
    /// dense rectangle retained from the initial build), the alive and
    /// terminated counts are recomputed, and the woken queue is cleared —
    /// parked flags alone carry the quiescence state across the restore.
    ///
    /// # Errors
    ///
    /// Rejects snapshots whose slot counts are inconsistent or that do not
    /// match this system's particle count (a snapshot of a different
    /// configuration).
    pub fn restore_snapshot(&mut self, snapshot: &SystemSnapshot<M>) -> Result<(), String>
    where
        M: Clone,
    {
        let slots = snapshot.particles.len();
        if snapshot.removed.len() != slots || snapshot.parked.len() != slots {
            return Err(format!(
                "inconsistent snapshot: {slots} particle slot(s), {} removed flag(s), \
                 {} parked flag(s)",
                snapshot.removed.len(),
                snapshot.parked.len()
            ));
        }
        if slots != self.particles.len() {
            return Err(format!(
                "snapshot has {slots} particle slot(s) but the system has {}",
                self.particles.len()
            ));
        }
        self.occupancy.clear();
        for (i, particle) in snapshot.particles.iter().enumerate() {
            if snapshot.removed[i] {
                continue;
            }
            let id = ParticleId(i);
            self.occupancy.insert(particle.head, id);
            if particle.tail != particle.head {
                self.occupancy.insert(particle.tail, id);
            }
        }
        self.particles = snapshot.particles.clone();
        self.removed = snapshot.removed.clone();
        self.parked = snapshot.parked.clone();
        self.woken.clear();
        self.alive = self.removed.iter().filter(|r| !**r).count();
        self.terminated = self
            .particles
            .iter()
            .zip(&self.removed)
            .filter(|(p, removed)| !**removed && p.terminated)
            .count();
        self.expansions = snapshot.expansions;
        self.contractions = snapshot.contractions;
        self.handovers = snapshot.handovers;
        Ok(())
    }

    // -- Quiescence parking ------------------------------------------------
    //
    // A particle may be *parked* by the runner when its algorithm declares
    // activations to be pure functions of the local view
    // (`Algorithm::supports_quiescence`) and an activation changed nothing.
    // Re-running such an activation stays a no-op until something in the
    // particle's local view changes, so every mutation path below wakes the
    // particles whose view it touches: memory writes (via the activation
    // context), movement operations, and perturbation removals.

    /// Enables or disables parking/waking bookkeeping (runner-controlled).
    pub(crate) fn set_parking(&mut self, enabled: bool) {
        self.parking = enabled;
        if !enabled {
            self.parked.iter_mut().for_each(|p| *p = false);
            self.woken.clear();
        }
    }

    /// Whether parking bookkeeping is active.
    pub(crate) fn parking_enabled(&self) -> bool {
        self.parking
    }

    /// Whether the particle is currently parked.
    pub(crate) fn is_parked(&self, id: ParticleId) -> bool {
        self.parked[id.0]
    }

    /// Parks a particle (its last activation was a no-op).
    pub(crate) fn park(&mut self, id: ParticleId) {
        self.parked[id.0] = true;
    }

    /// Wakes a parked particle (its local view changed).
    pub(crate) fn wake(&mut self, id: ParticleId) {
        if self.parked[id.0] {
            self.parked[id.0] = false;
            self.woken.push(id);
        }
    }

    /// Wakes every particle occupying a point adjacent to `p` (and at `p`
    /// itself).
    pub(crate) fn wake_adjacent_to(&mut self, p: Point) {
        if !self.parking {
            return;
        }
        if let Some(id) = self.occupancy.get(p) {
            self.wake(id);
        }
        for n in p.neighbors() {
            if let Some(id) = self.occupancy.get(n) {
                self.wake(id);
            }
        }
    }

    /// Wakes every particle adjacent to `id` (its memory — part of their
    /// local views — is about to change).
    pub(crate) fn wake_neighbors_of(&mut self, id: ParticleId) {
        if !self.parking {
            return;
        }
        let neighbors = self.neighbors_of(id);
        for n in neighbors {
            self.wake(n);
        }
    }

    /// Moves the woken queue into `out` (cleared first; capacity retained).
    pub(crate) fn drain_woken(&mut self, out: &mut Vec<ParticleId>) {
        out.clear();
        out.append(&mut self.woken);
    }

    /// Clears every parked flag (liveness fallback); returns how many
    /// particles were unparked.
    pub(crate) fn unpark_all(&mut self) -> usize {
        let mut count = 0;
        for p in &mut self.parked {
            if *p {
                *p = false;
                count += 1;
            }
        }
        self.woken.clear();
        count
    }

    /// Checks the internal occupancy invariants (every occupied point maps to
    /// the particle occupying it, and vice versa, and the terminated count
    /// matches the flags); used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut expected: HashMap<Point, ParticleId> = HashMap::new();
        for (i, p) in self.particles.iter().enumerate() {
            if self.removed[i] {
                continue;
            }
            for pt in p.occupied_points() {
                if let Some(prev) = expected.insert(pt, ParticleId(i)) {
                    return Err(format!("point {pt} occupied by both {prev} and P{i}"));
                }
            }
            if p.is_expanded() && !p.head.is_adjacent(p.tail) {
                return Err(format!("particle P{i} occupies non-adjacent points"));
            }
        }
        if expected.len() != self.occupancy.len() {
            return Err(format!(
                "occupancy size mismatch: map has {} entries, particles occupy {}",
                self.occupancy.len(),
                expected.len()
            ));
        }
        for (pt, id) in &expected {
            if self.occupancy.get(*pt) != Some(*id) {
                return Err(format!("occupancy map disagrees at {pt}"));
            }
        }
        let flagged = self.iter().filter(|(_, p)| p.terminated).count();
        if flagged != self.terminated {
            return Err(format!(
                "terminated count mismatch: counter {} vs flags {flagged}",
                self.terminated
            ));
        }
        if self.removed.iter().filter(|r| !**r).count() != self.alive {
            return Err("alive count disagrees with removed flags".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{ActivationContext, Algorithm};
    use pm_grid::builder::line;

    struct Dummy;
    impl Algorithm for Dummy {
        type Memory = u32;
        fn init(&self, ctx: &InitContext) -> u32 {
            // Record the number of occupied neighbours at init time.
            ctx.occupied.iter().filter(|o| **o).count() as u32
        }
        fn activate(&self, ctx: &mut ActivationContext<'_, u32>) {
            ctx.terminate();
        }
    }

    fn system_on_line(n: u32) -> ParticleSystem<u32> {
        ParticleSystem::from_shape(&line(n), &Dummy)
    }

    #[test]
    fn from_shape_creates_contracted_particles() {
        let sys = system_on_line(4);
        assert_eq!(sys.len(), 4);
        assert!(sys.all_contracted());
        assert!(!sys.all_terminated());
        assert!(sys.is_connected());
        assert_eq!(sys.shape(), line(4));
        sys.check_invariants().unwrap();
        // Endpoint particles saw one occupied neighbour, midpoints two.
        let endpoint = sys.particle_at(Point::new(0, 0)).unwrap();
        let midpoint = sys.particle_at(Point::new(1, 0)).unwrap();
        assert_eq!(*sys.particle(endpoint).memory(), 1);
        assert_eq!(*sys.particle(midpoint).memory(), 2);
    }

    #[test]
    fn both_backends_agree_on_construction() {
        let shape = pm_grid::builder::hexagon(2);
        let dense =
            ParticleSystem::from_shape_with_backend(&shape, &Dummy, OccupancyBackend::Dense);
        let hashed =
            ParticleSystem::from_shape_with_backend(&shape, &Dummy, OccupancyBackend::Hashed);
        dense.check_invariants().unwrap();
        hashed.check_invariants().unwrap();
        assert_eq!(dense.shape(), hashed.shape());
        for p in shape.iter() {
            assert_eq!(dense.particle_at(p), hashed.particle_at(p));
        }
        for (id, particle) in dense.iter() {
            assert_eq!(particle.memory(), hashed.particle(id).memory());
        }
    }

    #[test]
    fn expand_and_contract() {
        let mut sys = system_on_line(2);
        let id = sys.particle_at(Point::new(1, 0)).unwrap();
        // Expand east into an empty point.
        sys.expand(id, Direction::E).unwrap();
        assert!(sys.particle(id).is_expanded());
        assert_eq!(sys.particle(id).head(), Point::new(2, 0));
        assert_eq!(sys.particle(id).tail(), Point::new(1, 0));
        assert!(sys.is_occupied(Point::new(2, 0)));
        sys.check_invariants().unwrap();
        // Cannot expand again while expanded.
        assert_eq!(
            sys.expand(id, Direction::E),
            Err(MoveError::AlreadyExpanded)
        );
        // Contract to head frees the tail point.
        sys.contract_to_head(id).unwrap();
        assert!(sys.particle(id).is_contracted());
        assert!(!sys.is_occupied(Point::new(1, 0)));
        sys.check_invariants().unwrap();
        assert_eq!(sys.move_counts(), (1, 1, 0));
    }

    #[test]
    fn contract_to_tail_frees_head() {
        let mut sys = system_on_line(1);
        let id = sys.particle_at(Point::new(0, 0)).unwrap();
        sys.expand(id, Direction::SE).unwrap();
        sys.contract_to_tail(id).unwrap();
        assert_eq!(sys.particle(id).head(), Point::new(0, 0));
        assert!(!sys.is_occupied(Point::new(0, 1)));
        sys.check_invariants().unwrap();
    }

    #[test]
    fn expansion_into_contracted_particle_fails() {
        let mut sys = system_on_line(2);
        let id = sys.particle_at(Point::new(0, 0)).unwrap();
        assert_eq!(sys.expand(id, Direction::E), Err(MoveError::TargetOccupied));
    }

    #[test]
    fn handover_transfers_the_point() {
        let mut sys = system_on_line(2);
        let left = sys.particle_at(Point::new(0, 0)).unwrap();
        let right = sys.particle_at(Point::new(1, 0)).unwrap();
        // Right expands east, then left performs a handover into right's tail.
        sys.expand(right, Direction::E).unwrap();
        sys.expand(left, Direction::E).unwrap();
        assert!(sys.particle(left).is_expanded());
        assert!(sys.particle(right).is_contracted());
        assert_eq!(sys.particle(right).head(), Point::new(2, 0));
        assert_eq!(sys.particle(left).head(), Point::new(1, 0));
        assert_eq!(sys.particle(left).tail(), Point::new(0, 0));
        sys.check_invariants().unwrap();
        let (expansions, _, handovers) = sys.move_counts();
        assert_eq!(expansions, 1);
        assert_eq!(handovers, 1);
    }

    #[test]
    fn contracting_a_contracted_particle_fails() {
        let mut sys = system_on_line(1);
        let id = sys.particle_at(Point::new(0, 0)).unwrap();
        assert_eq!(sys.contract_to_head(id), Err(MoveError::NotExpanded));
        assert_eq!(sys.contract_to_tail(id), Err(MoveError::NotExpanded));
    }

    #[test]
    fn neighbors_of_reports_distinct_adjacent_particles() {
        let sys = ParticleSystem::from_shape(&pm_grid::builder::hexagon(1), &Dummy);
        let center = sys.particle_at(Point::new(0, 0)).unwrap();
        assert_eq!(sys.neighbors_of(center).len(), 6);
        let rim = sys.particle_at(Point::new(1, 0)).unwrap();
        assert_eq!(sys.neighbors_of(rim).len(), 3);
    }

    #[test]
    fn disconnection_is_permitted_and_detected() {
        let mut sys = system_on_line(3);
        let middle = sys.particle_at(Point::new(1, 0)).unwrap();
        // The middle particle walks away to the south: the system disconnects.
        sys.expand(middle, Direction::SE).unwrap();
        sys.contract_to_head(middle).unwrap();
        assert!(!sys.is_connected());
        sys.check_invariants().unwrap();
    }

    #[test]
    fn particles_can_leave_the_dense_rectangle() {
        // A particle that wanders far outside the initial bounding box lands
        // in the overflow map; every query keeps working.
        let mut sys = system_on_line(2);
        let id = sys.particle_at(Point::new(1, 0)).unwrap();
        for _ in 0..10 {
            sys.expand(id, Direction::E).unwrap();
            sys.contract_to_head(id).unwrap();
            sys.check_invariants().unwrap();
        }
        let far = Point::new(11, 0);
        assert_eq!(sys.particle_at(far), Some(id));
        assert!(sys.is_occupied(far));
        assert!(!sys.is_connected());
        assert_eq!(sys.shape().len(), 2);
        // And it can come back.
        for _ in 0..10 {
            sys.expand(id, Direction::W).unwrap();
            sys.contract_to_head(id).unwrap();
            sys.check_invariants().unwrap();
        }
        assert!(sys.is_connected());
    }

    #[test]
    fn remove_particle_vacates_points_and_updates_counts() {
        let mut sys = system_on_line(3);
        let middle = sys.particle_at(Point::new(1, 0)).unwrap();
        assert!(sys.remove_particle(middle));
        assert!(!sys.remove_particle(middle), "double removal is a no-op");
        assert_eq!(sys.len(), 2);
        assert!(!sys.is_occupied(Point::new(1, 0)));
        assert!(sys.is_removed(middle));
        assert_eq!(sys.ids().count(), 2);
        assert_eq!(sys.iter().count(), 2);
        assert!(!sys.is_connected());
        sys.check_invariants().unwrap();
        assert_eq!(
            sys.particle_positions(),
            vec![Point::new(0, 0), Point::new(2, 0)]
        );
    }

    #[test]
    fn removing_a_terminated_particle_keeps_all_terminated_consistent() {
        let mut sys = system_on_line(2);
        let left = sys.particle_at(Point::new(0, 0)).unwrap();
        let right = sys.particle_at(Point::new(1, 0)).unwrap();
        sys.set_terminated(left);
        assert!(!sys.all_terminated());
        sys.remove_particle(left);
        // The only remaining particle is unterminated.
        assert!(!sys.all_terminated());
        sys.set_terminated(right);
        assert!(sys.all_terminated());
        sys.check_invariants().unwrap();
    }

    #[test]
    fn removing_an_expanded_particle_frees_both_points() {
        let mut sys = system_on_line(1);
        let id = sys.particle_at(Point::new(0, 0)).unwrap();
        sys.expand(id, Direction::E).unwrap();
        sys.remove_particle(id);
        assert!(!sys.is_occupied(Point::new(0, 0)));
        assert!(!sys.is_occupied(Point::new(1, 0)));
        assert!(sys.is_empty());
        sys.check_invariants().unwrap();
    }

    #[test]
    fn reinitialize_contracts_resets_memories_and_clears_termination() {
        let mut sys = ParticleSystem::from_shape(&line(3), &Dummy);
        let left = sys.particle_at(Point::new(0, 0)).unwrap();
        let right = sys.particle_at(Point::new(2, 0)).unwrap();
        sys.set_terminated(left);
        sys.expand(right, Direction::E).unwrap();
        sys.remove_particle(sys.particle_at(Point::new(1, 0)).unwrap());
        sys.reinitialize(&Dummy);
        sys.check_invariants().unwrap();
        assert!(sys.all_contracted(), "expanded survivors are contracted");
        assert!(!sys.particle(left).is_terminated());
        assert_eq!(sys.len(), 2);
        // Dummy's init records the occupied-neighbour count of the *current*
        // configuration: the survivors at (0,0) and (2,0) are isolated.
        for (_, p) in sys.iter() {
            assert_eq!(*p.memory(), 0, "memory rebuilt from the perturbed shape");
        }
        // Movement counters survive the reset (the report keeps run totals).
        assert_eq!(sys.move_counts().0, 1);
    }

    #[test]
    fn add_particle_grows_the_system_with_a_fresh_slot() {
        let mut sys = ParticleSystem::from_shape(&line(2), &Dummy);
        let p = Point::new(2, 0);
        assert!(sys.add_particle(p, &Dummy));
        assert!(!sys.add_particle(p, &Dummy), "point now occupied");
        assert_eq!(sys.len(), 3);
        assert!(sys.is_connected());
        sys.check_invariants().unwrap();
        // The new particle's memory was initialized on the post-addition
        // shape: it sees exactly its one west neighbour.
        let id = sys.particle_at(p).unwrap();
        assert_eq!(id.index(), 2, "fresh slot, ids stay stable");
        assert_eq!(*sys.particle(id).memory(), 1);
        // Additions work on both backends, including outside the dense
        // rectangle (overflow map).
        let far = Point::new(40, 0);
        assert!(sys.add_particle(far, &Dummy));
        assert_eq!(*sys.particle(sys.particle_at(far).unwrap()).memory(), 0);
        sys.check_invariants().unwrap();
        let mut hashed =
            ParticleSystem::from_shape_with_backend(&line(2), &Dummy, OccupancyBackend::Hashed);
        assert!(hashed.add_particle(p, &Dummy));
        hashed.check_invariants().unwrap();
    }

    /// Corruption support: `corrupt` overwrites the counter with the
    /// entropy's low bits and reports a change iff the value differs.
    struct Corruptible;
    impl Algorithm for Corruptible {
        type Memory = u32;
        fn init(&self, _ctx: &InitContext) -> u32 {
            0
        }
        fn activate(&self, ctx: &mut ActivationContext<'_, u32>) {
            ctx.terminate();
        }
        fn corrupt(&self, memory: &mut u32, entropy: u64) -> bool {
            let scrambled = entropy as u32;
            let changed = *memory != scrambled;
            *memory = scrambled;
            changed
        }
    }

    #[test]
    fn corrupt_particle_scrambles_memory_and_revokes_termination() {
        let mut sys = ParticleSystem::from_shape(&line(2), &Corruptible);
        let left = sys.particle_at(Point::new(0, 0)).unwrap();
        let right = sys.particle_at(Point::new(1, 0)).unwrap();
        sys.set_terminated(left);
        sys.set_terminated(right);
        assert!(sys.all_terminated());
        assert!(sys.corrupt_particle(left, &Corruptible, 7));
        assert_eq!(*sys.particle(left).memory(), 7);
        assert!(!sys.particle(left).is_terminated(), "final state revoked");
        assert!(!sys.all_terminated());
        sys.check_invariants().unwrap();
        // A corruption that does not change the memory is not a fault.
        assert!(!sys.corrupt_particle(left, &Corruptible, 7));
        // Removed particles cannot be corrupted.
        sys.remove_particle(left);
        assert!(!sys.corrupt_particle(left, &Corruptible, 9));
    }

    #[test]
    fn corrupt_particle_is_a_noop_without_a_corruption_model() {
        // `Dummy` keeps the default `corrupt` (no corruption model).
        let mut sys = ParticleSystem::from_shape(&line(1), &Dummy);
        let id = sys.particle_at(Point::new(0, 0)).unwrap();
        let before = *sys.particle(id).memory();
        assert!(!sys.corrupt_particle(id, &Dummy, u64::MAX));
        assert_eq!(*sys.particle(id).memory(), before);
    }

    #[test]
    fn move_error_display() {
        assert_eq!(
            MoveError::NotExpanded.to_string(),
            "particle is not expanded"
        );
        assert!(MoveError::TargetOccupied.to_string().contains("occupied"));
    }
}
