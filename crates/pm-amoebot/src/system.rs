//! The particle system: configuration and movement operations (Section 2.2).

use crate::algorithm::{Algorithm, InitContext};
use crate::particle::{Particle, ParticleId};
use pm_grid::{Direction, Point, Shape, DIRECTIONS};
use std::collections::HashMap;
use std::fmt;

/// An error returned by a movement operation that violates the amoebot
/// model's rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveError {
    /// The particle attempted to expand while already expanded.
    AlreadyExpanded,
    /// The particle attempted to contract while contracted.
    NotExpanded,
    /// The expansion target is occupied by a contracted particle (no
    /// handover is possible).
    TargetOccupied,
    /// The handover partner is not in a state that permits the handover.
    InvalidHandover,
    /// The referenced particle id does not exist.
    NoSuchParticle,
}

impl fmt::Display for MoveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            MoveError::AlreadyExpanded => "particle is already expanded",
            MoveError::NotExpanded => "particle is not expanded",
            MoveError::TargetOccupied => "target point is occupied by a contracted particle",
            MoveError::InvalidHandover => "handover partner is not in a valid state",
            MoveError::NoSuchParticle => "no such particle",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for MoveError {}

/// The particle system: a set of particles on the triangular grid together
/// with the occupancy map, movement operations and movement counters.
///
/// The generic parameter `M` is the algorithm-specific per-particle memory.
///
/// Unlike most of the amoebot literature (and following this paper), the
/// system does **not** enforce connectivity after every move: temporary
/// disconnection is allowed, and only the initial and final configurations of
/// an algorithm are required to be connected.
#[derive(Clone, Debug)]
pub struct ParticleSystem<M> {
    particles: Vec<Particle<M>>,
    occupancy: HashMap<Point, ParticleId>,
    expansions: u64,
    contractions: u64,
    handovers: u64,
}

impl<M> ParticleSystem<M> {
    /// Creates a system of contracted particles, one per point of `shape`,
    /// with memories produced by the algorithm's initializer.
    ///
    /// This corresponds to the paper's permitted initial configurations:
    /// connected (not enforced here — generators produce connected shapes and
    /// the election pipeline checks it), non-empty, contracted.
    pub fn from_shape<A>(shape: &Shape, algorithm: &A) -> ParticleSystem<M>
    where
        A: Algorithm<Memory = M> + ?Sized,
    {
        let analysis = shape.analyze();
        let mut particles = Vec::with_capacity(shape.len());
        let mut occupancy = HashMap::with_capacity(shape.len());
        for point in shape.iter() {
            let mut occupied = [false; 6];
            let mut outer = [false; 6];
            for (i, d) in DIRECTIONS.iter().enumerate() {
                let n = point.neighbor(*d);
                occupied[i] = shape.contains(n);
                outer[i] = !shape.contains(n) && analysis.is_outer_face_point(n);
            }
            let ctx = InitContext {
                point,
                occupied,
                outer,
                is_boundary: occupied.iter().any(|o| !o),
            };
            let memory = algorithm.init(&ctx);
            let id = ParticleId(particles.len());
            occupancy.insert(point, id);
            particles.push(Particle::contracted(point, memory));
        }
        ParticleSystem {
            particles,
            occupancy,
            expansions: 0,
            contractions: 0,
            handovers: 0,
        }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// Whether the system has no particles.
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// All particle ids, in creation order.
    pub fn ids(&self) -> impl Iterator<Item = ParticleId> {
        (0..self.particles.len()).map(ParticleId)
    }

    /// The particle with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn particle(&self, id: ParticleId) -> &Particle<M> {
        &self.particles[id.0]
    }

    /// Mutable access to the particle with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn particle_mut(&mut self, id: ParticleId) -> &mut Particle<M> {
        &mut self.particles[id.0]
    }

    /// The particle occupying `point` (as head or tail), if any.
    pub fn particle_at(&self, point: Point) -> Option<ParticleId> {
        self.occupancy.get(&point).copied()
    }

    /// Whether `point` is occupied by some particle.
    pub fn is_occupied(&self, point: Point) -> bool {
        self.occupancy.contains_key(&point)
    }

    /// The current shape of the particle system: the set of occupied points.
    pub fn shape(&self) -> Shape {
        Shape::from_points(self.occupancy.keys().copied())
    }

    /// Whether the particle system's shape is currently connected.
    pub fn is_connected(&self) -> bool {
        self.shape().is_connected()
    }

    /// Whether every particle is contracted.
    pub fn all_contracted(&self) -> bool {
        self.particles.iter().all(|p| p.is_contracted())
    }

    /// Whether every particle has reached a final state.
    pub fn all_terminated(&self) -> bool {
        self.particles.iter().all(|p| p.is_terminated())
    }

    /// The distinct particles adjacent to any point occupied by `id`
    /// (the paper's `N(p)`), in deterministic order.
    pub fn neighbors_of(&self, id: ParticleId) -> Vec<ParticleId> {
        let particle = self.particle(id);
        let mut out: Vec<ParticleId> = particle
            .occupied_points()
            .flat_map(|p| p.neighbors())
            .filter_map(|n| self.particle_at(n))
            .filter(|other| *other != id)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Movement counters: `(expansions, contractions, handovers)`.
    pub fn move_counts(&self) -> (u64, u64, u64) {
        (self.expansions, self.contractions, self.handovers)
    }

    /// Expands the contracted particle `id` from its point into the adjacent
    /// point in direction `dir`.
    ///
    /// If the target point is empty this is a plain expansion. If the target
    /// point is occupied by an **expanded** particle, the move is performed
    /// as a handover: the occupying particle contracts out of the target
    /// point and `id` expands into it, atomically.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::AlreadyExpanded`] if `id` is expanded, and
    /// [`MoveError::TargetOccupied`] if the target is occupied by a
    /// contracted particle.
    pub fn expand(&mut self, id: ParticleId, dir: Direction) -> Result<(), MoveError> {
        if id.0 >= self.particles.len() {
            return Err(MoveError::NoSuchParticle);
        }
        if self.particles[id.0].is_expanded() {
            return Err(MoveError::AlreadyExpanded);
        }
        let origin = self.particles[id.0].head;
        let target = origin.neighbor(dir);
        match self.particle_at(target) {
            None => {
                self.particles[id.0].head = target;
                // Tail stays at `origin`.
                self.occupancy.insert(target, id);
                self.expansions += 1;
                Ok(())
            }
            Some(other_id) => {
                let other = &self.particles[other_id.0];
                if other.is_contracted() {
                    return Err(MoveError::TargetOccupied);
                }
                // Handover: `other` contracts out of `target`, `id` expands
                // into it.
                if other.tail == target {
                    self.particles[other_id.0].tail = self.particles[other_id.0].head;
                } else {
                    debug_assert_eq!(other.head, target);
                    self.particles[other_id.0].head = self.particles[other_id.0].tail;
                }
                self.particles[id.0].head = target;
                self.occupancy.insert(target, id);
                self.handovers += 1;
                Ok(())
            }
        }
    }

    /// Contracts the expanded particle `id` into its head point.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::NotExpanded`] if the particle is contracted.
    pub fn contract_to_head(&mut self, id: ParticleId) -> Result<(), MoveError> {
        if id.0 >= self.particles.len() {
            return Err(MoveError::NoSuchParticle);
        }
        let particle = &self.particles[id.0];
        if particle.is_contracted() {
            return Err(MoveError::NotExpanded);
        }
        let tail = particle.tail;
        // The tail slot is released only if it still belongs to this
        // particle (it always does: handovers update occupancy eagerly).
        if self.occupancy.get(&tail) == Some(&id) {
            self.occupancy.remove(&tail);
        }
        self.particles[id.0].tail = self.particles[id.0].head;
        self.contractions += 1;
        Ok(())
    }

    /// Contracts the expanded particle `id` into its tail point.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::NotExpanded`] if the particle is contracted.
    pub fn contract_to_tail(&mut self, id: ParticleId) -> Result<(), MoveError> {
        if id.0 >= self.particles.len() {
            return Err(MoveError::NoSuchParticle);
        }
        let particle = &self.particles[id.0];
        if particle.is_contracted() {
            return Err(MoveError::NotExpanded);
        }
        let head = particle.head;
        if self.occupancy.get(&head) == Some(&id) {
            self.occupancy.remove(&head);
        }
        self.particles[id.0].head = self.particles[id.0].tail;
        self.contractions += 1;
        Ok(())
    }

    /// Consumes the system and returns the particles.
    pub fn into_particles(self) -> Vec<Particle<M>> {
        self.particles
    }

    /// Iterates over `(id, particle)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParticleId, &Particle<M>)> {
        self.particles
            .iter()
            .enumerate()
            .map(|(i, p)| (ParticleId(i), p))
    }

    /// Checks the internal occupancy invariants (every occupied point maps to
    /// the particle occupying it, and vice versa); used by tests and debug
    /// assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut expected: HashMap<Point, ParticleId> = HashMap::new();
        for (i, p) in self.particles.iter().enumerate() {
            for pt in p.occupied_points() {
                if let Some(prev) = expected.insert(pt, ParticleId(i)) {
                    return Err(format!("point {pt} occupied by both {prev} and P{i}"));
                }
            }
            if p.is_expanded() && !p.head.is_adjacent(p.tail) {
                return Err(format!("particle P{i} occupies non-adjacent points"));
            }
        }
        if expected.len() != self.occupancy.len() {
            return Err(format!(
                "occupancy size mismatch: map has {} entries, particles occupy {}",
                self.occupancy.len(),
                expected.len()
            ));
        }
        for (pt, id) in &expected {
            if self.occupancy.get(pt) != Some(id) {
                return Err(format!("occupancy map disagrees at {pt}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{ActivationContext, Algorithm};
    use pm_grid::builder::line;

    struct Dummy;
    impl Algorithm for Dummy {
        type Memory = u32;
        fn init(&self, ctx: &InitContext) -> u32 {
            // Record the number of occupied neighbours at init time.
            ctx.occupied.iter().filter(|o| **o).count() as u32
        }
        fn activate(&self, ctx: &mut ActivationContext<'_, u32>) {
            ctx.terminate();
        }
    }

    fn system_on_line(n: u32) -> ParticleSystem<u32> {
        ParticleSystem::from_shape(&line(n), &Dummy)
    }

    #[test]
    fn from_shape_creates_contracted_particles() {
        let sys = system_on_line(4);
        assert_eq!(sys.len(), 4);
        assert!(sys.all_contracted());
        assert!(!sys.all_terminated());
        assert!(sys.is_connected());
        assert_eq!(sys.shape(), line(4));
        sys.check_invariants().unwrap();
        // Endpoint particles saw one occupied neighbour, midpoints two.
        let endpoint = sys.particle_at(Point::new(0, 0)).unwrap();
        let midpoint = sys.particle_at(Point::new(1, 0)).unwrap();
        assert_eq!(*sys.particle(endpoint).memory(), 1);
        assert_eq!(*sys.particle(midpoint).memory(), 2);
    }

    #[test]
    fn expand_and_contract() {
        let mut sys = system_on_line(2);
        let id = sys.particle_at(Point::new(1, 0)).unwrap();
        // Expand east into an empty point.
        sys.expand(id, Direction::E).unwrap();
        assert!(sys.particle(id).is_expanded());
        assert_eq!(sys.particle(id).head(), Point::new(2, 0));
        assert_eq!(sys.particle(id).tail(), Point::new(1, 0));
        assert!(sys.is_occupied(Point::new(2, 0)));
        sys.check_invariants().unwrap();
        // Cannot expand again while expanded.
        assert_eq!(
            sys.expand(id, Direction::E),
            Err(MoveError::AlreadyExpanded)
        );
        // Contract to head frees the tail point.
        sys.contract_to_head(id).unwrap();
        assert!(sys.particle(id).is_contracted());
        assert!(!sys.is_occupied(Point::new(1, 0)));
        sys.check_invariants().unwrap();
        assert_eq!(sys.move_counts(), (1, 1, 0));
    }

    #[test]
    fn contract_to_tail_frees_head() {
        let mut sys = system_on_line(1);
        let id = sys.particle_at(Point::new(0, 0)).unwrap();
        sys.expand(id, Direction::SE).unwrap();
        sys.contract_to_tail(id).unwrap();
        assert_eq!(sys.particle(id).head(), Point::new(0, 0));
        assert!(!sys.is_occupied(Point::new(0, 1)));
        sys.check_invariants().unwrap();
    }

    #[test]
    fn expansion_into_contracted_particle_fails() {
        let mut sys = system_on_line(2);
        let id = sys.particle_at(Point::new(0, 0)).unwrap();
        assert_eq!(sys.expand(id, Direction::E), Err(MoveError::TargetOccupied));
    }

    #[test]
    fn handover_transfers_the_point() {
        let mut sys = system_on_line(2);
        let left = sys.particle_at(Point::new(0, 0)).unwrap();
        let right = sys.particle_at(Point::new(1, 0)).unwrap();
        // Right expands east, then left performs a handover into right's tail.
        sys.expand(right, Direction::E).unwrap();
        sys.expand(left, Direction::E).unwrap();
        assert!(sys.particle(left).is_expanded());
        assert!(sys.particle(right).is_contracted());
        assert_eq!(sys.particle(right).head(), Point::new(2, 0));
        assert_eq!(sys.particle(left).head(), Point::new(1, 0));
        assert_eq!(sys.particle(left).tail(), Point::new(0, 0));
        sys.check_invariants().unwrap();
        let (expansions, _, handovers) = sys.move_counts();
        assert_eq!(expansions, 1);
        assert_eq!(handovers, 1);
    }

    #[test]
    fn contracting_a_contracted_particle_fails() {
        let mut sys = system_on_line(1);
        let id = sys.particle_at(Point::new(0, 0)).unwrap();
        assert_eq!(sys.contract_to_head(id), Err(MoveError::NotExpanded));
        assert_eq!(sys.contract_to_tail(id), Err(MoveError::NotExpanded));
    }

    #[test]
    fn neighbors_of_reports_distinct_adjacent_particles() {
        let sys = ParticleSystem::from_shape(&pm_grid::builder::hexagon(1), &Dummy);
        let center = sys.particle_at(Point::new(0, 0)).unwrap();
        assert_eq!(sys.neighbors_of(center).len(), 6);
        let rim = sys.particle_at(Point::new(1, 0)).unwrap();
        assert_eq!(sys.neighbors_of(rim).len(), 3);
    }

    #[test]
    fn disconnection_is_permitted_and_detected() {
        let mut sys = system_on_line(3);
        let middle = sys.particle_at(Point::new(1, 0)).unwrap();
        // The middle particle walks away to the south: the system disconnects.
        sys.expand(middle, Direction::SE).unwrap();
        sys.contract_to_head(middle).unwrap();
        assert!(!sys.is_connected());
        sys.check_invariants().unwrap();
    }

    #[test]
    fn move_error_display() {
        assert_eq!(
            MoveError::NotExpanded.to_string(),
            "particle is not expanded"
        );
        assert!(MoveError::TargetOccupied.to_string().contains("occupied"));
    }
}
