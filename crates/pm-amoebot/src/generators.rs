//! Workload shape generators.
//!
//! The deterministic parametric families (line, hexagon, annulus, comb,
//! spiral, Swiss cheese, parallelogram) are re-exported from
//! [`pm_grid::builder`]; this module adds the random families used by the
//! experiments: random connected blobs, their hole-free variants, and
//! hexagons with randomly punched holes.

pub use pm_grid::builder::{annulus, comb, hexagon, line, parallelogram, spiral, swiss_cheese};

use pm_grid::{Point, Shape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A random connected "blob" of exactly `n` points, grown by repeatedly
/// attaching a uniformly random empty neighbour of the current shape
/// (Eden-model growth). May contain holes.
///
/// Deterministic given `(n, seed)`.
pub fn random_blob(n: usize, seed: u64) -> Shape {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shape = Shape::from_points([Point::ORIGIN]);
    let mut frontier: Vec<Point> = Point::ORIGIN.neighbors().collect();
    while shape.len() < n {
        let idx = rng.gen_range(0..frontier.len());
        let p = frontier.swap_remove(idx);
        if shape.contains(p) {
            continue;
        }
        shape.insert(p);
        frontier.extend(p.neighbors().filter(|q| !shape.contains(*q)));
    }
    shape
}

/// A random connected, **simply-connected** blob of at least `n` points: a
/// [`random_blob`] whose holes are filled in afterwards (so the point count
/// may slightly exceed `n`).
pub fn random_simply_connected_blob(n: usize, seed: u64) -> Shape {
    let blob = random_blob(n, seed);
    let filled = blob.area();
    debug_assert!(filled.is_simply_connected());
    filled
}

/// A hexagonal ball of the given radius with approximately
/// `hole_fraction · n` interior points removed as single-point holes.
///
/// Holes are only punched at points whose entire 2-hop neighbourhood is
/// occupied and hole-free, so every hole is a single point, holes never merge
/// with each other or with the outer face, and the shape stays connected.
/// Deterministic given `(radius, hole_fraction, seed)`.
pub fn random_holey_hexagon(radius: u32, hole_fraction: f64, seed: u64) -> Shape {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shape = hexagon(radius);
    if radius < 2 {
        return shape;
    }
    let budget = ((shape.len() as f64) * hole_fraction.clamp(0.0, 0.4)) as usize;
    let mut candidates: Vec<Point> = Point::ORIGIN.ball(radius.saturating_sub(2));
    candidates.shuffle(&mut rng);
    let mut punched = 0;
    for p in candidates {
        if punched >= budget {
            break;
        }
        let safe = p
            .neighbors()
            .all(|q| shape.contains(q) && q.neighbors().all(|r| r == p || shape.contains(r)));
        if safe {
            shape.remove(p);
            punched += 1;
        }
    }
    shape
}

/// A connected "dumbbell": two hexagonal balls of the given radius joined by
/// a thin corridor of the given length. Its diameter is much larger than the
/// diameter suggested by its point count, stressing diameter-sensitive
/// algorithms.
pub fn dumbbell(radius: u32, corridor: u32) -> Shape {
    let left = hexagon(radius);
    let offset = Point::new((2 * radius + corridor + 1) as i32, 0);
    let mut shape = left;
    for p in Point::ORIGIN.ball(radius) {
        shape.insert(p + offset);
    }
    for i in 0..=(2 * radius + corridor) as i32 {
        shape.insert(Point::new(i, 0));
    }
    shape
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_blob_is_connected_and_deterministic() {
        let a = random_blob(100, 7);
        let b = random_blob(100, 7);
        let c = random_blob(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 100);
        assert!(a.is_connected());
    }

    #[test]
    fn simply_connected_blob_has_no_holes() {
        for seed in 0..5 {
            let s = random_simply_connected_blob(200, seed);
            assert!(s.len() >= 200);
            assert!(s.is_connected());
            assert!(s.is_simply_connected());
        }
    }

    #[test]
    fn holey_hexagon_properties() {
        let s = random_holey_hexagon(8, 0.1, 3);
        assert!(s.is_connected());
        let analysis = s.analyze();
        assert!(analysis.hole_count() >= 1);
        for hole in analysis.holes() {
            assert_eq!(hole.len(), 1, "holes must be single points");
        }
    }

    #[test]
    fn holey_hexagon_small_radius_is_plain() {
        assert_eq!(random_holey_hexagon(1, 0.3, 1), hexagon(1));
    }

    #[test]
    fn dumbbell_is_connected_with_large_diameter() {
        let s = dumbbell(3, 10);
        assert!(s.is_connected());
        assert!(s.is_simply_connected());
        let metric = pm_grid::Metric::new(&s);
        let d = metric.grid_diameter();
        assert!(d as usize >= 20, "diameter {d} should exceed the corridor");
    }
}
