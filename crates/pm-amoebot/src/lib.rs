//! Amoebot particle-system simulator.
//!
//! This crate implements the system model of Section 2.2 of *"Efficient
//! Deterministic Leader Election for Programmable Matter"* (PODC 2021):
//! constant-memory particles on the triangular grid that occupy one point
//! (contracted) or two adjacent points (expanded), communicate by reading and
//! writing the memories of neighbouring particles, and move by expansion,
//! contraction and handover. The particle system progresses through a
//! sequence of atomic particle activations produced by a fair, strong
//! (sequential) scheduler; time is measured in asynchronous rounds.
//!
//! The crate provides:
//!
//! * [`system::ParticleSystem`] — the configuration (particle positions,
//!   expansion states and memories) plus the three movement operations.
//! * [`algorithm::Algorithm`] — the trait a distributed algorithm implements:
//!   a per-particle memory type, an initializer, and an atomic activation
//!   handler that only sees local information through
//!   [`algorithm::ActivationContext`].
//! * [`scheduler`] — fair strong schedulers (round robin, reversed, seeded
//!   random, double-activation adversary) and the [`scheduler::Runner`] that
//!   executes an algorithm to termination while counting rounds.
//! * [`ascii`] — rendering of configurations in the style of the paper's
//!   figures.
//!
//! Workload shapes live in `pm-grid` (`builder` for deterministic families,
//! `random` for seeded random ones); the `pm-scenarios` crate re-exports both
//! behind its generator registry.
//! * [`trace`] — execution statistics (rounds, moves, disconnection events).
//!
//! # Example: a trivial algorithm
//!
//! ```
//! use pm_amoebot::algorithm::{ActivationContext, Algorithm, InitContext};
//! use pm_amoebot::scheduler::{RoundRobin, Runner};
//! use pm_amoebot::system::ParticleSystem;
//! use pm_grid::builder::hexagon;
//!
//! /// Every particle simply terminates on its first activation.
//! struct Noop;
//! #[derive(Clone, Debug, Default)]
//! struct NoopMemory;
//! impl Algorithm for Noop {
//!     type Memory = NoopMemory;
//!     fn init(&self, _ctx: &InitContext) -> NoopMemory { NoopMemory }
//!     fn activate(&self, ctx: &mut ActivationContext<'_, NoopMemory>) { ctx.terminate(); }
//! }
//!
//! let system = ParticleSystem::<NoopMemory>::from_shape(&hexagon(2), &Noop);
//! let mut runner = Runner::new(system, Noop, RoundRobin::default());
//! let stats = runner.run(100).expect("terminates");
//! assert_eq!(stats.rounds, 1);
//! ```

pub mod algorithm;
pub mod ascii;
pub mod particle;
pub mod scheduler;
pub mod system;
pub mod trace;

pub use algorithm::{ActivationContext, Algorithm, InitContext};
pub use particle::{Particle, ParticleId};
pub use scheduler::{
    DoubleActivation, ReverseRoundRobin, RoundRobin, Runner, RunnerSnapshot, Scheduler,
    SchedulerState, SeededRandom,
};
pub use system::{
    MoveError, Neighbors, OccupancyBackend, ParticleSystem, SystemControl, SystemSnapshot,
};
pub use trace::RunStats;
