//! ASCII rendering of particle configurations, in the spirit of the paper's
//! figures (occupied points, holes, expanded particles).

use crate::particle::Particle;
use crate::system::ParticleSystem;
use pm_grid::{Point, Shape};

/// Renders the occupied shape of the system: `#` for a point occupied by a
/// contracted particle, `H`/`T` for the head/tail of an expanded particle,
/// `o` for hole points of the occupied shape, and `.` elsewhere.
pub fn render<M>(system: &ParticleSystem<M>) -> String {
    render_with(system, |particle, point| {
        if particle.is_contracted() {
            '#'
        } else if particle.head() == point {
            'H'
        } else {
            'T'
        }
    })
}

/// Renders the system with a caller-provided glyph function, which receives
/// the particle occupying each point and the point itself. Hole points render
/// as `o` and empty points as `.`.
pub fn render_with<M>(
    system: &ParticleSystem<M>,
    glyph: impl Fn(&Particle<M>, Point) -> char,
) -> String {
    let shape = system.shape();
    let Some((min, max)) = shape.bounding_box() else {
        return String::new();
    };
    let analysis = shape.analyze();
    let mut out = String::new();
    for r in min.r..=max.r {
        // Indent rows so that the axial shear is visually suggested.
        for _ in 0..(r - min.r) {
            out.push(' ');
        }
        for q in min.q..=max.q {
            let p = Point::new(q, r);
            let ch = match system.particle_at(p) {
                Some(id) => glyph(system.particle(id), p),
                None if analysis.is_hole_point(p) => 'o',
                None => '.',
            };
            out.push(ch);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

/// Renders a bare shape with the same conventions (`#`, `o`, `.`), useful for
/// documenting workloads.
pub fn render_shape(shape: &Shape) -> String {
    let Some((min, max)) = shape.bounding_box() else {
        return String::new();
    };
    let analysis = shape.analyze();
    let mut out = String::new();
    for r in min.r..=max.r {
        for _ in 0..(r - min.r) {
            out.push(' ');
        }
        for q in min.q..=max.q {
            let p = Point::new(q, r);
            let ch = if shape.contains(p) {
                '#'
            } else if analysis.is_hole_point(p) {
                'o'
            } else {
                '.'
            };
            out.push(ch);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{ActivationContext, Algorithm, InitContext};
    use pm_grid::builder::annulus;
    use pm_grid::Direction;

    struct Dummy;
    impl Algorithm for Dummy {
        type Memory = ();
        fn init(&self, _ctx: &InitContext) {}
        fn activate(&self, ctx: &mut ActivationContext<'_, ()>) {
            ctx.terminate();
        }
    }

    #[test]
    fn render_marks_holes_and_particles() {
        let system = ParticleSystem::from_shape(&annulus(2, 0), &Dummy);
        let art = render(&system);
        assert!(art.contains('#'));
        assert!(art.contains('o'));
        assert!(!art.contains('H'));
    }

    #[test]
    fn render_shows_expanded_particles() {
        let mut system = ParticleSystem::from_shape(&pm_grid::builder::line(2), &Dummy);
        let id = system.particle_at(Point::new(1, 0)).unwrap();
        system.expand(id, Direction::E).unwrap();
        let art = render(&system);
        assert!(art.contains('H'));
        assert!(art.contains('T'));
    }

    #[test]
    fn render_shape_matches_shape() {
        let s = annulus(2, 0);
        let art = render_shape(&s);
        assert_eq!(art.matches('#').count(), s.len());
        assert_eq!(art.matches('o').count(), 1);
    }

    #[test]
    fn render_empty_system_is_empty() {
        let system = ParticleSystem::from_shape(&Shape::new(), &Dummy);
        assert!(render(&system).is_empty());
    }
}
