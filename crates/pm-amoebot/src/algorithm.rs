//! The algorithm trait and the local view a particle gets during an atomic
//! activation.
//!
//! An activated particle executes three steps in order (Section 2.2): it
//! reads the memories of its neighbours, performs bounded computation and
//! updates its own and its neighbours' memories, and finally executes at most
//! one movement operation. [`ActivationContext`] exposes exactly these
//! capabilities; algorithms never see the global configuration.

use crate::particle::ParticleId;
use crate::system::{MoveError, ParticleSystem};
use pm_grid::{Direction, Point, DIRECTIONS};

/// The information available to a particle when its memory is initialized in
/// the initial (connected, contracted) configuration.
///
/// `outer[i]` tells whether the adjacent point in direction `i` is empty and
/// belongs to the outer face of the initial shape. This is the read-only
/// input `p.outer[0..5]` of Algorithm DLE (the "boundary detection initially"
/// assumption of Table 1); algorithms that do not assume it simply ignore the
/// field, and the OBD primitive recomputes it from scratch.
#[derive(Clone, Copy, Debug)]
pub struct InitContext {
    /// The point the particle initially occupies.
    pub point: Point,
    /// For each clockwise direction index, whether the adjacent point is
    /// occupied in the initial configuration.
    pub occupied: [bool; 6],
    /// For each clockwise direction index, whether the adjacent point is
    /// empty and lies on the outer face of the initial configuration.
    pub outer: [bool; 6],
    /// Whether the particle initially lies on some boundary of the shape.
    pub is_boundary: bool,
}

/// A distributed algorithm in the amoebot model.
///
/// Implementations provide a per-particle memory type, an initializer run
/// once per particle on the initial configuration, and the atomic activation
/// handler.
pub trait Algorithm {
    /// The constant-size per-particle memory.
    type Memory: Clone + std::fmt::Debug;

    /// Computes the initial memory of a particle.
    fn init(&self, ctx: &InitContext) -> Self::Memory;

    /// Executes one atomic activation of a particle.
    fn activate(&self, ctx: &mut ActivationContext<'_, Self::Memory>);

    /// Whether the algorithm has globally completed. The default — all
    /// particles have reached a final state — matches the paper's definition
    /// of termination.
    fn is_complete(&self, system: &ParticleSystem<Self::Memory>) -> bool {
        system.all_terminated()
    }

    /// Whether activations are pure functions of the particle's *local view*
    /// — its own memory, its neighbours' memories and the occupancy of the
    /// points around its head and tail — as the amoebot model prescribes.
    ///
    /// When `true`, the runner may **park** a particle whose activation
    /// changed nothing (no memory write, no move, no termination) and skip
    /// it until something in its local view changes: repeating a no-op
    /// activation on an unchanged view is provably another no-op, so parked
    /// particles are skipped without altering which executions are possible.
    /// Every mutation path wakes the affected particles (memory writes
    /// through the activation context, movement operations, perturbation
    /// removals), and the runner falls back to unparking everyone if only
    /// parked particles remain, so fairness is preserved.
    ///
    /// The default is `false` (no parking): opt in only for algorithms whose
    /// `activate` reads nothing beyond the activation context's local
    /// queries.
    fn supports_quiescence(&self) -> bool {
        false
    }

    /// Scrambles a particle's memory from adversarial `entropy` bits — the
    /// transient-fault model of self-stabilisation (arXiv 2408.08775): the
    /// adversary may overwrite a particle's memory with an arbitrary value
    /// of the memory type, and a self-stabilising algorithm must recover
    /// without a global reset. Returns whether the memory was changed.
    ///
    /// The default leaves the memory untouched and returns `false`: the
    /// algorithm defines no corruption model, and corruption faults against
    /// it are reported as not applied by the fault driver.
    fn corrupt(&self, memory: &mut Self::Memory, entropy: u64) -> bool {
        let _ = (memory, entropy);
        false
    }
}

/// The local view and action interface of the particle being activated.
///
/// All queries are relative to the activated particle: its own memory and
/// expansion state, the occupancy of the six points around its head (and
/// tail), and read/write access to the memories of neighbouring particles.
/// At most one movement operation should be performed per activation (this
/// mirrors the model; it is the algorithm's responsibility, as in the paper's
/// pseudocode).
pub struct ActivationContext<'a, M> {
    system: &'a mut ParticleSystem<M>,
    id: ParticleId,
    moved: bool,
    mutated: bool,
    /// Whether this activation already woke the neighbours for a write to
    /// the particle's own memory (the wake set cannot change between writes
    /// within one atomic activation — moves issue their own wakes — so one
    /// sweep per activation suffices).
    self_wake_done: bool,
}

impl<'a, M> ActivationContext<'a, M> {
    /// Creates the activation context for particle `id`.
    pub fn new(system: &'a mut ParticleSystem<M>, id: ParticleId) -> ActivationContext<'a, M> {
        ActivationContext {
            system,
            id,
            moved: false,
            mutated: false,
            self_wake_done: false,
        }
    }

    /// The id of the activated particle (an opaque simulator handle).
    pub fn id(&self) -> ParticleId {
        self.id
    }

    /// The activated particle's own memory.
    pub fn memory(&self) -> &M {
        self.system.particle(self.id).memory()
    }

    /// Mutable access to the activated particle's own memory.
    pub fn memory_mut(&mut self) -> &mut M {
        self.mutated = true;
        // The particle's memory is part of its neighbours' local views;
        // wake them once per activation.
        if !self.self_wake_done {
            self.self_wake_done = true;
            self.system.wake_neighbors_of(self.id);
        }
        self.system.particle_mut(self.id).memory_mut()
    }

    /// Whether the activated particle is expanded.
    pub fn is_expanded(&self) -> bool {
        self.system.particle(self.id).is_expanded()
    }

    /// The head point of the activated particle.
    pub fn head(&self) -> Point {
        self.system.particle(self.id).head()
    }

    /// The tail point of the activated particle.
    pub fn tail(&self) -> Point {
        self.system.particle(self.id).tail()
    }

    /// Whether the point adjacent to the head in direction `dir` is occupied.
    pub fn occupied_at_head(&self, dir: Direction) -> bool {
        self.system.is_occupied(self.head().neighbor(dir))
    }

    /// The particle occupying the point adjacent to the head in direction
    /// `dir`, if any (excluding the activated particle itself).
    pub fn neighbor_at_head(&self, dir: Direction) -> Option<ParticleId> {
        let p = self.head().neighbor(dir);
        self.system.particle_at(p).filter(|other| *other != self.id)
    }

    /// The particle occupying the point adjacent to the tail in direction
    /// `dir`, if any (excluding the activated particle itself).
    pub fn neighbor_at_tail(&self, dir: Direction) -> Option<ParticleId> {
        let p = self.tail().neighbor(dir);
        self.system.particle_at(p).filter(|other| *other != self.id)
    }

    /// The occupancy mask around the head: entry `i` is `true` iff the point
    /// in clockwise direction `i` from the head is occupied.
    pub fn head_occupancy_mask(&self) -> [bool; 6] {
        let mut mask = [false; 6];
        for (i, d) in DIRECTIONS.iter().enumerate() {
            mask[i] = self.occupied_at_head(*d);
        }
        mask
    }

    /// All distinct neighbouring particles (`N(p)`), in deterministic order,
    /// collected without heap allocation.
    pub fn neighbors(&self) -> crate::system::Neighbors {
        self.system.neighbors_of(self.id)
    }

    /// The head point of a neighbouring particle.
    pub fn neighbor_head(&self, id: ParticleId) -> Point {
        self.system.particle(id).head()
    }

    /// Whether a neighbouring particle is expanded.
    pub fn neighbor_is_expanded(&self, id: ParticleId) -> bool {
        self.system.particle(id).is_expanded()
    }

    /// Reads a neighbouring particle's memory.
    pub fn neighbor_memory(&self, id: ParticleId) -> &M {
        self.system.particle(id).memory()
    }

    /// Writes a neighbouring particle's memory.
    ///
    /// In the amoebot model a particle may write to the memories of its
    /// neighbours during its activation; this is how Algorithm DLE clears the
    /// `eligible` flags of the particles around an eroded point.
    pub fn neighbor_memory_mut(&mut self, id: ParticleId) -> &mut M {
        self.mutated = true;
        // The neighbour's memory is part of its own and its neighbours'
        // local views.
        self.system.wake(id);
        self.system.wake_neighbors_of(id);
        self.system.particle_mut(id).memory_mut()
    }

    /// Expands the (contracted) activated particle in direction `dir` from
    /// its current point; performs a handover automatically if the target is
    /// occupied by an expanded particle.
    ///
    /// # Errors
    ///
    /// Propagates [`MoveError`] from the underlying system operation.
    pub fn expand(&mut self, dir: Direction) -> Result<(), MoveError> {
        self.moved = true;
        self.mutated = true;
        self.system.expand(self.id, dir)
    }

    /// Contracts the (expanded) activated particle into its head.
    ///
    /// # Errors
    ///
    /// Propagates [`MoveError`] from the underlying system operation.
    pub fn contract_to_head(&mut self) -> Result<(), MoveError> {
        self.moved = true;
        self.mutated = true;
        self.system.contract_to_head(self.id)
    }

    /// Contracts the (expanded) activated particle into its tail.
    ///
    /// # Errors
    ///
    /// Propagates [`MoveError`] from the underlying system operation.
    pub fn contract_to_tail(&mut self) -> Result<(), MoveError> {
        self.moved = true;
        self.mutated = true;
        self.system.contract_to_tail(self.id)
    }

    /// Marks the activated particle as having reached a final state.
    pub fn terminate(&mut self) {
        self.mutated = true;
        self.system.set_terminated(self.id);
    }

    /// Whether a movement operation was performed during this activation.
    pub fn has_moved(&self) -> bool {
        self.moved
    }

    /// Whether the activation changed any state at all (memory writes —
    /// own or neighbours' —, moves, or termination). The runner uses this
    /// to park quiescent particles (see
    /// [`Algorithm::supports_quiescence`]).
    pub fn has_mutated(&self) -> bool {
        self.mutated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_grid::builder::line;

    #[derive(Clone, Debug, Default)]
    struct Mem {
        flag: bool,
    }

    struct Flagger;
    impl Algorithm for Flagger {
        type Memory = Mem;
        fn init(&self, _ctx: &InitContext) -> Mem {
            Mem::default()
        }
        fn activate(&self, ctx: &mut ActivationContext<'_, Mem>) {
            // Set every neighbour's flag, then terminate.
            for n in ctx.neighbors() {
                ctx.neighbor_memory_mut(n).flag = true;
            }
            ctx.terminate();
        }
    }

    #[test]
    fn context_reads_and_writes_neighbors() {
        let mut sys = ParticleSystem::from_shape(&line(3), &Flagger);
        let middle = sys.particle_at(Point::new(1, 0)).unwrap();
        {
            let mut ctx = ActivationContext::new(&mut sys, middle);
            assert!(!ctx.is_expanded());
            assert_eq!(ctx.head(), Point::new(1, 0));
            assert_eq!(ctx.neighbors().len(), 2);
            assert!(ctx.occupied_at_head(Direction::E));
            assert!(!ctx.occupied_at_head(Direction::SE));
            assert!(ctx.neighbor_at_head(Direction::W).is_some());
            Flagger.activate(&mut ctx);
            assert!(!ctx.has_moved());
        }
        let left = sys.particle_at(Point::new(0, 0)).unwrap();
        let right = sys.particle_at(Point::new(2, 0)).unwrap();
        assert!(sys.particle(left).memory().flag);
        assert!(sys.particle(right).memory().flag);
        assert!(!sys.particle(middle).memory().flag);
        assert!(sys.particle(middle).is_terminated());
        assert!(!Flagger.is_complete(&sys));
    }

    #[test]
    fn context_movement_is_tracked() {
        let mut sys = ParticleSystem::from_shape(&line(1), &Flagger);
        let id = sys.particle_at(Point::new(0, 0)).unwrap();
        let mut ctx = ActivationContext::new(&mut sys, id);
        ctx.expand(Direction::NE).unwrap();
        assert!(ctx.has_moved());
        assert!(ctx.is_expanded());
        assert_eq!(ctx.tail(), Point::new(0, 0));
        ctx.contract_to_head().unwrap();
        assert!(!ctx.is_expanded());
    }

    #[test]
    fn head_occupancy_mask_matches_queries() {
        let mut sys = ParticleSystem::from_shape(&line(2), &Flagger);
        let id = sys.particle_at(Point::new(0, 0)).unwrap();
        let ctx = ActivationContext::new(&mut sys, id);
        let mask = ctx.head_occupancy_mask();
        assert!(mask[Direction::E.index()]);
        assert_eq!(mask.iter().filter(|m| **m).count(), 1);
    }
}
