//! Execution statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Statistics of one algorithm execution, as counted by
/// [`crate::scheduler::Runner`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Number of asynchronous rounds until completion.
    pub rounds: u64,
    /// Total number of particle activations.
    pub activations: u64,
    /// Number of plain expansions performed.
    pub expansions: u64,
    /// Number of contractions performed.
    pub contractions: u64,
    /// Number of handovers performed.
    pub handovers: u64,
    /// Whether the occupied shape was ever observed disconnected at a round
    /// boundary (only meaningful when connectivity tracking is enabled).
    pub ever_disconnected: bool,
    /// Number of round boundaries at which the shape was disconnected (only
    /// meaningful when connectivity tracking is enabled).
    pub disconnected_rounds: u64,
    /// Whether the final configuration is connected (`None` before a run).
    pub final_connected: Option<bool>,
}

impl RunStats {
    /// Total number of movement operations.
    pub fn moves(&self) -> u64 {
        self.expansions + self.contractions + self.handovers
    }

    /// Merges another run's counters into this one (used when composing
    /// algorithm phases, e.g. OBD → DLE → Collect).
    pub fn absorb(&mut self, other: &RunStats) {
        self.rounds += other.rounds;
        self.activations += other.activations;
        self.expansions += other.expansions;
        self.contractions += other.contractions;
        self.handovers += other.handovers;
        self.ever_disconnected |= other.ever_disconnected;
        self.disconnected_rounds += other.disconnected_rounds;
        self.final_connected = other.final_connected.or(self.final_connected);
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} activations={} moves={} disconnected={}",
            self.rounds,
            self.activations,
            self.moves(),
            self.ever_disconnected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = RunStats {
            rounds: 3,
            activations: 10,
            expansions: 2,
            ..RunStats::default()
        };
        let b = RunStats {
            rounds: 4,
            activations: 5,
            contractions: 1,
            ever_disconnected: true,
            final_connected: Some(true),
            ..RunStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 7);
        assert_eq!(a.activations, 15);
        assert_eq!(a.moves(), 3);
        assert!(a.ever_disconnected);
        assert_eq!(a.final_connected, Some(true));
    }

    #[test]
    fn display_is_informative() {
        let s = RunStats {
            rounds: 2,
            ..RunStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("rounds=2"));
        assert!(text.contains("moves=0"));
    }
}
