//! Particles: the mobile, constant-memory agents of the amoebot model.

use pm_grid::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable identifier of a particle within a [`crate::system::ParticleSystem`].
///
/// Identifiers exist only at the simulator level: the particles themselves
/// are anonymous (they carry no identifier in their memory), exactly as in
/// the amoebot model. Algorithms must not base decisions on `ParticleId`
/// values; they receive them only as opaque handles for neighbour reads and
/// writes during a single activation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParticleId(pub(crate) usize);

impl ParticleId {
    /// The simulator-level index of this particle.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a particle id from a simulator-level index.
    ///
    /// This is intended for harness code (schedulers, tests, tools) that
    /// addresses particles by their creation index; algorithms must not use
    /// it, since particles are anonymous in the model.
    pub fn from_index(index: usize) -> ParticleId {
        ParticleId(index)
    }
}

impl fmt::Debug for ParticleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ParticleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A particle: occupies its `head` point and, when expanded, also a distinct
/// adjacent `tail` point. Carries an algorithm-specific memory `M` and a
/// `terminated` flag (the paper's *final state*).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Particle<M> {
    pub(crate) head: Point,
    pub(crate) tail: Point,
    pub(crate) memory: M,
    pub(crate) terminated: bool,
}

impl<M> Particle<M> {
    /// Creates a contracted particle at `point` with the given memory.
    pub fn contracted(point: Point, memory: M) -> Particle<M> {
        Particle {
            head: point,
            tail: point,
            memory,
            terminated: false,
        }
    }

    /// The head point (for a contracted particle, its only point).
    pub fn head(&self) -> Point {
        self.head
    }

    /// The tail point (equal to the head iff the particle is contracted).
    pub fn tail(&self) -> Point {
        self.tail
    }

    /// Whether the particle currently occupies two points.
    pub fn is_expanded(&self) -> bool {
        self.head != self.tail
    }

    /// Whether the particle currently occupies a single point.
    pub fn is_contracted(&self) -> bool {
        self.head == self.tail
    }

    /// Whether the particle occupies the given point (as head or tail).
    pub fn occupies(&self, p: Point) -> bool {
        self.head == p || self.tail == p
    }

    /// The points occupied by the particle (one or two).
    pub fn occupied_points(&self) -> impl Iterator<Item = Point> {
        let head = self.head;
        let tail = self.tail;
        std::iter::once(head).chain((head != tail).then_some(tail))
    }

    /// The algorithm memory of the particle.
    pub fn memory(&self) -> &M {
        &self.memory
    }

    /// Mutable access to the algorithm memory.
    pub fn memory_mut(&mut self) -> &mut M {
        &mut self.memory
    }

    /// Whether the particle has reached a final state.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contracted_particle_basics() {
        let p = Particle::contracted(Point::new(1, 2), 7u32);
        assert!(p.is_contracted());
        assert!(!p.is_expanded());
        assert_eq!(p.head(), p.tail());
        assert!(p.occupies(Point::new(1, 2)));
        assert!(!p.occupies(Point::new(0, 0)));
        assert_eq!(p.occupied_points().count(), 1);
        assert_eq!(*p.memory(), 7);
        assert!(!p.is_terminated());
    }

    #[test]
    fn particle_id_display() {
        let id = ParticleId(3);
        assert_eq!(format!("{id}"), "P3");
        assert_eq!(format!("{id:?}"), "P3");
        assert_eq!(id.index(), 3);
    }
}
