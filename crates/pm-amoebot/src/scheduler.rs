//! Fair strong schedulers and the execution runner.
//!
//! The paper assumes a *strong* scheduler: particles are activated one at a
//! time, atomically, and every particle is activated infinitely often (fair
//! executions). An *asynchronous round* is a minimal execution fragment in
//! which every particle is activated at least once; the runner counts rounds
//! by letting the scheduler emit, for each round, an activation order in
//! which every live particle appears at least once.
//!
//! Schedulers write each round's order into a caller-provided buffer
//! ([`Scheduler::fill_round_order`]); the [`Runner`] reuses one buffer (and
//! one live-particle list) across all rounds, so steady-state execution
//! performs no per-round allocation at all.

use crate::algorithm::{ActivationContext, Algorithm};
use crate::particle::ParticleId;
use crate::system::ParticleSystem;
use crate::trace::RunStats;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// A fair strong scheduler: produces, for every round, a sequence of
/// activations in which each provided particle appears at least once.
pub trait Scheduler {
    /// Appends the activation order for one asynchronous round to `out`
    /// (which the runner hands over cleared, with its capacity retained from
    /// the previous round).
    ///
    /// `ids` lists the particles that have not yet reached a final state;
    /// each of them must appear at least once in the appended order (the
    /// runner checks this in debug builds). Particles may appear more than
    /// once — that only makes the adversary stronger.
    fn fill_round_order(&mut self, ids: &[ParticleId], round: u64, out: &mut Vec<ParticleId>);

    /// Allocating convenience wrapper over
    /// [`Scheduler::fill_round_order`], for tests and one-off callers.
    fn round_order(&mut self, ids: &[ParticleId], round: u64) -> Vec<ParticleId> {
        let mut out = Vec::with_capacity(ids.len());
        self.fill_round_order(ids, round, &mut out);
        out
    }

    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn fill_round_order(&mut self, ids: &[ParticleId], round: u64, out: &mut Vec<ParticleId>) {
        (**self).fill_round_order(ids, round, out)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Activates particles in creation order, once per round (the identity
/// permutation: the order is the live list itself, copied without any
/// reordering work).
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin;

impl Scheduler for RoundRobin {
    fn fill_round_order(&mut self, ids: &[ParticleId], _round: u64, out: &mut Vec<ParticleId>) {
        out.extend_from_slice(ids);
    }
    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Activates particles in reverse creation order, once per round.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReverseRoundRobin;

impl Scheduler for ReverseRoundRobin {
    fn fill_round_order(&mut self, ids: &[ParticleId], _round: u64, out: &mut Vec<ParticleId>) {
        out.extend(ids.iter().rev().copied());
    }
    fn name(&self) -> &'static str {
        "reverse-round-robin"
    }
}

/// Activates particles in a fresh uniformly random order each round
/// (deterministic given the seed).
#[derive(Clone, Debug)]
pub struct SeededRandom {
    rng: StdRng,
}

impl SeededRandom {
    /// Creates a random scheduler with the given seed.
    pub fn new(seed: u64) -> SeededRandom {
        SeededRandom {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Default for SeededRandom {
    fn default() -> SeededRandom {
        SeededRandom::new(0x5eed)
    }
}

impl Scheduler for SeededRandom {
    fn fill_round_order(&mut self, ids: &[ParticleId], _round: u64, out: &mut Vec<ParticleId>) {
        // Shuffle only the appended entries: the trait contract is append,
        // and pre-existing buffer contents must stay untouched.
        let start = out.len();
        out.extend_from_slice(ids);
        out[start..].shuffle(&mut self.rng);
    }
    fn name(&self) -> &'static str {
        "seeded-random"
    }
}

/// An adversarial-flavoured scheduler that activates every particle twice per
/// round: once in creation order and once in reverse order. Rounds therefore
/// contain `2n` activations, exercising algorithms under denser interleaving
/// while still being a legal fair strong scheduler.
#[derive(Clone, Copy, Debug, Default)]
pub struct DoubleActivation;

impl Scheduler for DoubleActivation {
    fn fill_round_order(&mut self, ids: &[ParticleId], _round: u64, out: &mut Vec<ParticleId>) {
        out.extend_from_slice(ids);
        out.extend(ids.iter().rev().copied());
    }
    fn name(&self) -> &'static str {
        "double-activation"
    }
}

/// An error from running an algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The algorithm did not complete within the round budget.
    RoundLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// The system contained no particles.
    EmptySystem,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::RoundLimitExceeded { limit } => {
                write!(f, "algorithm did not terminate within {limit} rounds")
            }
            RunError::EmptySystem => write!(f, "the particle system is empty"),
        }
    }
}

impl std::error::Error for RunError {}

/// Executes an [`Algorithm`] on a [`ParticleSystem`] under a [`Scheduler`],
/// counting asynchronous rounds and movement operations.
pub struct Runner<A: Algorithm, S: Scheduler> {
    system: ParticleSystem<A::Memory>,
    algorithm: A,
    scheduler: S,
    /// Live (non-terminated) particles, in creation order. Primed on the
    /// first round and *retained* down thereafter: termination is monotone,
    /// so filtering the previous live list is equivalent to re-filtering all
    /// ids, at `O(live)` instead of `O(n)` per round.
    live: Vec<ParticleId>,
    live_primed: bool,
    /// The activation order buffer, reused (cleared, capacity kept) across
    /// rounds.
    order: Vec<ParticleId>,
    /// When set, connectivity of the occupied shape is checked after every
    /// round and the results are reported in [`RunStats`]. Costs one BFS per
    /// round.
    pub track_connectivity: bool,
}

impl<A: Algorithm, S: Scheduler> Runner<A, S> {
    /// Creates a runner.
    pub fn new(system: ParticleSystem<A::Memory>, algorithm: A, scheduler: S) -> Runner<A, S> {
        Runner {
            system,
            algorithm,
            scheduler,
            live: Vec::new(),
            live_primed: false,
            order: Vec::new(),
            track_connectivity: false,
        }
    }

    /// Enables per-round connectivity tracking (see
    /// [`RunStats::ever_disconnected`]).
    pub fn with_connectivity_tracking(mut self) -> Runner<A, S> {
        self.track_connectivity = true;
        self
    }

    /// The current system (before or after running).
    pub fn system(&self) -> &ParticleSystem<A::Memory> {
        &self.system
    }

    /// The algorithm instance.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// Consumes the runner and returns the system.
    pub fn into_system(self) -> ParticleSystem<A::Memory> {
        self.system
    }

    /// Runs the algorithm until it reports completion, or fails after
    /// `max_rounds` rounds.
    ///
    /// # Errors
    ///
    /// [`RunError::EmptySystem`] if the system has no particles, and
    /// [`RunError::RoundLimitExceeded`] if the round budget is exhausted
    /// before the algorithm completes.
    pub fn run(&mut self, max_rounds: u64) -> Result<RunStats, RunError> {
        self.run_observed(max_rounds, |_, _| {})
    }

    /// Like [`Runner::run`], but invokes `on_round` with the system and the
    /// cumulative statistics after every completed asynchronous round — the
    /// hook behind round-by-round instrumentation (`RunObserver` in
    /// `pm-core`) and tracing tools.
    ///
    /// # Errors
    ///
    /// Same as [`Runner::run`].
    pub fn run_observed<F>(
        &mut self,
        max_rounds: u64,
        mut on_round: F,
    ) -> Result<RunStats, RunError>
    where
        F: FnMut(&ParticleSystem<A::Memory>, &RunStats),
    {
        if self.system.is_empty() {
            return Err(RunError::EmptySystem);
        }
        let mut stats = RunStats::default();
        while !self.algorithm.is_complete(&self.system) {
            if stats.rounds >= max_rounds {
                return Err(RunError::RoundLimitExceeded { limit: max_rounds });
            }
            self.run_round(&mut stats);
            on_round(&self.system, &stats);
        }
        let (e, c, h) = self.system.move_counts();
        stats.expansions = e;
        stats.contractions = c;
        stats.handovers = h;
        stats.final_connected = Some(self.system.is_connected());
        Ok(stats)
    }

    /// Executes a single asynchronous round and updates `stats`.
    pub fn run_round(&mut self, stats: &mut RunStats) {
        if self.live_primed {
            let system = &self.system;
            self.live.retain(|id| !system.particle(*id).is_terminated());
        } else {
            self.live.clear();
            let system = &self.system;
            self.live.extend(
                system
                    .ids()
                    .filter(|id| !system.particle(*id).is_terminated()),
            );
            self.live_primed = true;
        }
        if self.live.is_empty() {
            return;
        }
        self.order.clear();
        self.scheduler
            .fill_round_order(&self.live, stats.rounds, &mut self.order);
        debug_assert!(
            self.live.iter().all(|id| self.order.contains(id)),
            "scheduler must activate every live particle at least once per round"
        );
        for i in 0..self.order.len() {
            let id = self.order[i];
            // A particle in a final state does nothing when activated.
            if self.system.particle(id).is_terminated() {
                continue;
            }
            let mut ctx = ActivationContext::new(&mut self.system, id);
            self.algorithm.activate(&mut ctx);
            stats.activations += 1;
        }
        stats.rounds += 1;
        if self.track_connectivity && !self.system.is_connected() {
            stats.ever_disconnected = true;
            stats.disconnected_rounds += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::InitContext;
    use pm_grid::builder::{hexagon, line};

    /// Each particle counts its activations in memory and terminates after
    /// three of them.
    struct CountToThree;
    impl Algorithm for CountToThree {
        type Memory = u8;
        fn init(&self, _ctx: &InitContext) -> u8 {
            0
        }
        fn activate(&self, ctx: &mut ActivationContext<'_, u8>) {
            *ctx.memory_mut() += 1;
            if *ctx.memory() >= 3 {
                ctx.terminate();
            }
        }
    }

    #[test]
    fn round_robin_counts_three_rounds() {
        let sys = ParticleSystem::from_shape(&line(5), &CountToThree);
        let mut runner = Runner::new(sys, CountToThree, RoundRobin);
        let stats = runner.run(10).unwrap();
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.activations, 15);
        assert_eq!(stats.final_connected, Some(true));
        assert!(!stats.ever_disconnected);
    }

    #[test]
    fn double_activation_halves_round_count() {
        let sys = ParticleSystem::from_shape(&line(5), &CountToThree);
        let mut runner = Runner::new(sys, CountToThree, DoubleActivation);
        let stats = runner.run(10).unwrap();
        assert_eq!(stats.rounds, 2);
    }

    #[test]
    fn random_scheduler_is_deterministic_given_seed() {
        let run = |seed| {
            let sys = ParticleSystem::from_shape(&hexagon(2), &CountToThree);
            let mut runner = Runner::new(sys, CountToThree, SeededRandom::new(seed));
            runner.run(10).unwrap()
        };
        assert_eq!(run(1).activations, run(1).activations);
        assert_eq!(run(1).rounds, 3);
    }

    #[test]
    fn round_limit_is_enforced() {
        /// Never terminates.
        struct Forever;
        impl Algorithm for Forever {
            type Memory = ();
            fn init(&self, _ctx: &InitContext) {}
            fn activate(&self, _ctx: &mut ActivationContext<'_, ()>) {}
        }
        let sys = ParticleSystem::from_shape(&line(3), &Forever);
        let mut runner = Runner::new(sys, Forever, RoundRobin);
        assert_eq!(
            runner.run(5),
            Err(RunError::RoundLimitExceeded { limit: 5 })
        );
    }

    #[test]
    fn empty_system_is_an_error() {
        let sys = ParticleSystem::from_shape(&pm_grid::Shape::new(), &CountToThree);
        let mut runner = Runner::new(sys, CountToThree, RoundRobin);
        assert_eq!(runner.run(5), Err(RunError::EmptySystem));
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(RoundRobin.name(), "round-robin");
        assert_eq!(ReverseRoundRobin.name(), "reverse-round-robin");
        assert_eq!(SeededRandom::default().name(), "seeded-random");
        assert_eq!(DoubleActivation.name(), "double-activation");
    }

    #[test]
    fn reverse_round_robin_reverses() {
        let ids: Vec<ParticleId> = (0..4).map(ParticleId).collect();
        let order = ReverseRoundRobin.round_order(&ids, 0);
        assert_eq!(order.first(), Some(&ParticleId(3)));
        assert_eq!(order.last(), Some(&ParticleId(0)));
    }

    #[test]
    fn identity_schedulers_do_no_reordering_work() {
        // Regression test for the per-round allocation fix: RoundRobin is the
        // identity permutation (the order *is* the live list) and
        // ReverseRoundRobin its mirror — neither may allocate beyond the
        // caller's buffer nor reorder anything else.
        let ids: Vec<ParticleId> = (0..64).map(ParticleId).collect();
        let mut out = Vec::with_capacity(128);
        RoundRobin.fill_round_order(&ids, 0, &mut out);
        assert_eq!(out, ids, "round robin must be the identity permutation");
        let ptr = out.as_ptr();
        let cap = out.capacity();
        for round in 1..50 {
            out.clear();
            RoundRobin.fill_round_order(&ids, round, &mut out);
            assert_eq!(out, ids);
            out.clear();
            ReverseRoundRobin.fill_round_order(&ids, round, &mut out);
            assert!(out.iter().rev().eq(ids.iter()));
        }
        assert_eq!(out.capacity(), cap, "buffer must not grow");
        assert_eq!(out.as_ptr(), ptr, "buffer must not be reallocated");
    }

    #[test]
    fn runner_reuses_its_round_buffers() {
        // The runner's per-round buffers must stop allocating once warm: the
        // order buffer's capacity is bounded by the largest round emitted so
        // far, independent of how many rounds run.
        let sys = ParticleSystem::from_shape(&hexagon(3), &CountToThree);
        let mut runner = Runner::new(sys, CountToThree, RoundRobin);
        let mut stats = RunStats::default();
        runner.run_round(&mut stats);
        let live_cap = runner.live.capacity();
        let order_cap = runner.order.capacity();
        for _ in 0..20 {
            runner.run_round(&mut stats);
        }
        assert_eq!(runner.live.capacity(), live_cap);
        assert_eq!(runner.order.capacity(), order_cap);
    }

    #[test]
    fn live_list_shrinks_as_particles_terminate() {
        // One particle terminates per activation round; the live list must
        // follow the system state exactly.
        struct TerminateAscending;
        impl Algorithm for TerminateAscending {
            type Memory = u8;
            fn init(&self, _ctx: &InitContext) -> u8 {
                0
            }
            fn activate(&self, ctx: &mut ActivationContext<'_, u8>) {
                *ctx.memory_mut() += 1;
                if *ctx.memory() >= 2 {
                    ctx.terminate();
                }
            }
        }
        let sys = ParticleSystem::from_shape(&line(6), &TerminateAscending);
        let mut runner = Runner::new(sys, TerminateAscending, RoundRobin);
        let stats = runner.run(10).unwrap();
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.activations, 12);
        assert!(runner.system().all_terminated());
    }
}
