//! Fair strong schedulers and the execution runner.
//!
//! The paper assumes a *strong* scheduler: particles are activated one at a
//! time, atomically, and every particle is activated infinitely often (fair
//! executions). An *asynchronous round* is a minimal execution fragment in
//! which every particle is activated at least once; the runner counts rounds
//! by letting the scheduler emit, for each round, an activation order in
//! which every live particle appears at least once.
//!
//! Schedulers write each round's order into a caller-provided buffer
//! ([`Scheduler::fill_round_order`]); the [`Runner`] reuses one buffer (and
//! one live-particle list) across all rounds, so steady-state execution
//! performs no per-round allocation at all.

use crate::algorithm::{ActivationContext, Algorithm};
use crate::particle::ParticleId;
use crate::system::{ParticleSystem, SystemControl, SystemSnapshot};
use crate::trace::RunStats;
use pm_grid::{Point, Shape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The portable mutable state of a [`Scheduler`], for execution snapshots.
///
/// Most schedulers are pure functions of the round number and carry no
/// state at all; [`SeededRandom`] carries its RNG words. Snapshots capture
/// this value and [`Scheduler::restore_state`] re-injects it, so a restored
/// execution's scheduler continues the *identical* activation-order stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerState {
    /// The scheduler has no mutable state.
    Stateless,
    /// The internal words of a seeded random generator.
    Rng([u64; 4]),
}

/// A fair strong scheduler: produces, for every round, a sequence of
/// activations in which each provided particle appears at least once.
pub trait Scheduler {
    /// Appends the activation order for one asynchronous round to `out`
    /// (which the runner hands over cleared, with its capacity retained from
    /// the previous round).
    ///
    /// `ids` lists the particles that have not yet reached a final state;
    /// each of them must appear at least once in the appended order (the
    /// runner checks this in debug builds). Particles may appear more than
    /// once — that only makes the adversary stronger.
    fn fill_round_order(&mut self, ids: &[ParticleId], round: u64, out: &mut Vec<ParticleId>);

    /// Allocating convenience wrapper over
    /// [`Scheduler::fill_round_order`], for tests and one-off callers.
    fn round_order(&mut self, ids: &[ParticleId], round: u64) -> Vec<ParticleId> {
        let mut out = Vec::with_capacity(ids.len());
        self.fill_round_order(ids, round, &mut out);
        out
    }

    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }

    /// Captures the scheduler's mutable state for a snapshot. Schedulers
    /// that are pure functions of the round number (the default) report
    /// [`SchedulerState::Stateless`].
    fn state(&self) -> SchedulerState {
        SchedulerState::Stateless
    }

    /// Re-injects state captured by [`Scheduler::state`], so the scheduler
    /// continues the identical activation-order stream.
    ///
    /// # Errors
    ///
    /// Rejects state of the wrong kind for this scheduler (e.g. RNG words
    /// handed to a stateless scheduler).
    fn restore_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        match state {
            SchedulerState::Stateless => Ok(()),
            SchedulerState::Rng(_) => Err(format!(
                "scheduler `{}` carries no RNG state to restore",
                self.name()
            )),
        }
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn fill_round_order(&mut self, ids: &[ParticleId], round: u64, out: &mut Vec<ParticleId>) {
        (**self).fill_round_order(ids, round, out)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn state(&self) -> SchedulerState {
        (**self).state()
    }
    fn restore_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        (**self).restore_state(state)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn fill_round_order(&mut self, ids: &[ParticleId], round: u64, out: &mut Vec<ParticleId>) {
        (**self).fill_round_order(ids, round, out)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn state(&self) -> SchedulerState {
        (**self).state()
    }
    fn restore_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        (**self).restore_state(state)
    }
}

/// Activates particles in creation order, once per round (the identity
/// permutation: the order is the live list itself, copied without any
/// reordering work).
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin;

impl Scheduler for RoundRobin {
    fn fill_round_order(&mut self, ids: &[ParticleId], _round: u64, out: &mut Vec<ParticleId>) {
        out.extend_from_slice(ids);
    }
    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Activates particles in reverse creation order, once per round.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReverseRoundRobin;

impl Scheduler for ReverseRoundRobin {
    fn fill_round_order(&mut self, ids: &[ParticleId], _round: u64, out: &mut Vec<ParticleId>) {
        out.extend(ids.iter().rev().copied());
    }
    fn name(&self) -> &'static str {
        "reverse-round-robin"
    }
}

/// Activates particles in a fresh uniformly random order each round
/// (deterministic given the seed).
#[derive(Clone, Debug)]
pub struct SeededRandom {
    rng: StdRng,
}

impl SeededRandom {
    /// Creates a random scheduler with the given seed.
    pub fn new(seed: u64) -> SeededRandom {
        SeededRandom {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Default for SeededRandom {
    fn default() -> SeededRandom {
        SeededRandom::new(0x5eed)
    }
}

impl Scheduler for SeededRandom {
    fn fill_round_order(&mut self, ids: &[ParticleId], _round: u64, out: &mut Vec<ParticleId>) {
        // Shuffle only the appended entries: the trait contract is append,
        // and pre-existing buffer contents must stay untouched.
        let start = out.len();
        out.extend_from_slice(ids);
        out[start..].shuffle(&mut self.rng);
    }
    fn name(&self) -> &'static str {
        "seeded-random"
    }
    fn state(&self) -> SchedulerState {
        SchedulerState::Rng(self.rng.state())
    }
    fn restore_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        match state {
            SchedulerState::Rng(words) => {
                self.rng = StdRng::from_state(*words);
                Ok(())
            }
            SchedulerState::Stateless => {
                Err("seeded-random scheduler requires RNG state to restore".to_string())
            }
        }
    }
}

/// An adversarial-flavoured scheduler that activates every particle twice per
/// round: once in creation order and once in reverse order. Rounds therefore
/// contain `2n` activations, exercising algorithms under denser interleaving
/// while still being a legal fair strong scheduler.
#[derive(Clone, Copy, Debug, Default)]
pub struct DoubleActivation;

impl Scheduler for DoubleActivation {
    fn fill_round_order(&mut self, ids: &[ParticleId], _round: u64, out: &mut Vec<ParticleId>) {
        out.extend_from_slice(ids);
        out.extend(ids.iter().rev().copied());
    }
    fn name(&self) -> &'static str {
        "double-activation"
    }
}

/// An error from running an algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The algorithm did not complete within the round budget.
    RoundLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// The system contained no particles.
    EmptySystem,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::RoundLimitExceeded { limit } => {
                write!(f, "algorithm did not terminate within {limit} rounds")
            }
            RunError::EmptySystem => write!(f, "the particle system is empty"),
        }
    }
}

impl std::error::Error for RunError {}

/// Executes an [`Algorithm`] on a [`ParticleSystem`] under a [`Scheduler`],
/// counting asynchronous rounds and movement operations.
///
/// The runner is *resumable*: [`Runner::step`] executes exactly one
/// asynchronous round against the persistent [`Runner::stats`], and
/// [`Runner::control`] hands out a [`SystemControl`] for mid-run mutation
/// between rounds — the substrate of the steppable `Execution` handle in
/// `pm-core`. [`Runner::run`] and [`Runner::run_observed`] are loops over
/// the same stepping surface.
pub struct Runner<A: Algorithm, S: Scheduler> {
    system: ParticleSystem<A::Memory>,
    algorithm: A,
    scheduler: S,
    /// Live (non-terminated, non-parked) particles, in creation order.
    /// Primed on the first round and *retained* down thereafter (termination
    /// is monotone), with woken particles merged back in id order — `O(live
    /// + woken)` instead of `O(n)` per round.
    live: Vec<ParticleId>,
    live_primed: bool,
    /// The activation order buffer, reused (cleared, capacity kept) across
    /// rounds.
    order: Vec<ParticleId>,
    /// Scratch buffers for the woken-particle merge, reused across rounds.
    woken: Vec<ParticleId>,
    merge_buf: Vec<ParticleId>,
    /// Cumulative statistics across all rounds stepped so far (persistent:
    /// stepping is resumable, so the counters survive between calls).
    stats: RunStats,
    /// When set, connectivity of the occupied shape is checked after every
    /// round and the results are reported in [`RunStats`]. Costs one BFS per
    /// round.
    pub track_connectivity: bool,
}

/// A portable snapshot of a mid-run [`Runner`]: the system state, the
/// cumulative statistics, and the scheduler's mutable state.
///
/// The live list, activation-order buffer and woken scratch are *not*
/// captured: the live list is always the ascending-id enumeration of
/// non-terminated, non-removed, non-parked particles, so
/// [`Runner::restore_snapshot`] simply un-primes it and the next round
/// rebuilds the identical list.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunnerSnapshot<M> {
    /// The particle system's mid-run state.
    pub system: SystemSnapshot<M>,
    /// Cumulative statistics of all rounds stepped so far.
    pub stats: RunStats,
    /// The scheduler's mutable state.
    pub scheduler: SchedulerState,
}

/// The [`SystemControl`] view handed out by [`Runner::control`]: mutable
/// system access paired with the algorithm (whose initializer
/// [`SystemControl::reinitialize`] needs). Any mutation un-primes the
/// runner's live-particle list, so the next round rebuilds it from the
/// perturbed configuration.
pub struct RunnerControl<'a, A: Algorithm> {
    system: &'a mut ParticleSystem<A::Memory>,
    algorithm: &'a A,
    live_primed: &'a mut bool,
}

impl<A: Algorithm> SystemControl for RunnerControl<'_, A> {
    fn particle_count(&self) -> usize {
        self.system.len()
    }

    fn particle_positions(&self) -> Vec<Point> {
        self.system.particle_positions()
    }

    fn occupied_shape(&self) -> Shape {
        self.system.shape()
    }

    fn is_connected(&self) -> bool {
        self.system.is_connected()
    }

    fn remove_at(&mut self, p: Point) -> bool {
        match self.system.particle_at(p) {
            Some(id) => {
                let removed = self.system.remove_particle(id);
                if removed {
                    // The configuration changed under the algorithm's feet:
                    // rebuild the live list from scratch next round.
                    *self.live_primed = false;
                }
                removed
            }
            None => false,
        }
    }

    fn add_at(&mut self, p: Point) -> bool {
        let added = self.system.add_particle(p, self.algorithm);
        if added {
            *self.live_primed = false;
        }
        added
    }

    fn corrupt_at(&mut self, p: Point, entropy: u64) -> bool {
        match self.system.particle_at(p) {
            Some(id) => {
                let corrupted = self.system.corrupt_particle(id, self.algorithm, entropy);
                if corrupted {
                    // A revoked final state must re-enter the live list.
                    *self.live_primed = false;
                }
                corrupted
            }
            None => false,
        }
    }

    fn reinitialize(&mut self) {
        self.system.reinitialize(self.algorithm);
        *self.live_primed = false;
    }
}

impl<A: Algorithm, S: Scheduler> Runner<A, S> {
    /// Creates a runner.
    pub fn new(mut system: ParticleSystem<A::Memory>, algorithm: A, scheduler: S) -> Runner<A, S> {
        system.set_parking(algorithm.supports_quiescence());
        Runner {
            system,
            algorithm,
            scheduler,
            live: Vec::new(),
            live_primed: false,
            order: Vec::new(),
            woken: Vec::new(),
            merge_buf: Vec::new(),
            stats: RunStats::default(),
            track_connectivity: false,
        }
    }

    /// Enables per-round connectivity tracking (see
    /// [`RunStats::ever_disconnected`]).
    pub fn with_connectivity_tracking(mut self) -> Runner<A, S> {
        self.track_connectivity = true;
        self
    }

    /// The current system (before or after running).
    pub fn system(&self) -> &ParticleSystem<A::Memory> {
        &self.system
    }

    /// The algorithm instance.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// Consumes the runner and returns the system.
    pub fn into_system(self) -> ParticleSystem<A::Memory> {
        self.system
    }

    /// The cumulative statistics of all rounds stepped so far. Movement
    /// counters and final connectivity are folded in by
    /// [`Runner::finalize`]; until then only rounds, activations and the
    /// connectivity-tracking fields are populated.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Whether the algorithm reports completion on the current system state.
    pub fn is_complete(&self) -> bool {
        self.algorithm.is_complete(&self.system)
    }

    /// Mutable access to the particle system between rounds, as the
    /// [`SystemControl`] mutation surface: the entry point for mid-run
    /// perturbations (remove particles, reset the survivors). Mutations
    /// un-prime the live-particle list, so the next [`Runner::step`]
    /// rebuilds it from the perturbed configuration.
    pub fn control(&mut self) -> RunnerControl<'_, A> {
        RunnerControl {
            system: &mut self.system,
            algorithm: &self.algorithm,
            live_primed: &mut self.live_primed,
        }
    }

    /// Captures the runner's mid-run state as a [`RunnerSnapshot`].
    pub fn snapshot(&self) -> RunnerSnapshot<A::Memory>
    where
        A::Memory: Clone,
    {
        RunnerSnapshot {
            system: self.system.snapshot(),
            stats: self.stats,
            scheduler: self.scheduler.state(),
        }
    }

    /// Overwrites this runner's state with a snapshot captured by
    /// [`Runner::snapshot`] of a runner built from the same initial shape,
    /// algorithm and scheduler. The live list is un-primed, so the next
    /// round rebuilds it — byte-identically, since the list is always the
    /// ascending-id enumeration of active particles.
    ///
    /// # Errors
    ///
    /// Rejects snapshots whose system state or scheduler state does not
    /// match this runner; the runner is left unusable for determinism
    /// purposes and should be discarded.
    pub fn restore_snapshot(&mut self, snapshot: &RunnerSnapshot<A::Memory>) -> Result<(), String>
    where
        A::Memory: Clone,
    {
        self.system.restore_snapshot(&snapshot.system)?;
        self.scheduler.restore_state(&snapshot.scheduler)?;
        self.stats = snapshot.stats;
        self.live.clear();
        self.live_primed = false;
        Ok(())
    }

    /// Executes exactly one asynchronous round against the persistent
    /// [`Runner::stats`] and returns the updated statistics. Stepping a
    /// completed algorithm is harmless (every activation is a no-op) but
    /// still counts a round; callers normally consult
    /// [`Runner::is_complete`] first.
    pub fn step(&mut self) -> &RunStats {
        let mut stats = self.stats;
        self.run_round(&mut stats);
        self.stats = stats;
        &self.stats
    }

    /// Folds the movement counters and the final-connectivity check into the
    /// persistent statistics and returns them — the last step of a completed
    /// run.
    pub fn finalize(&mut self) -> RunStats {
        let (e, c, h) = self.system.move_counts();
        self.stats.expansions = e;
        self.stats.contractions = c;
        self.stats.handovers = h;
        self.stats.final_connected = Some(self.system.is_connected());
        self.stats
    }

    /// Runs the algorithm until it reports completion, or fails after
    /// `max_rounds` *total* rounds (the budget spans resumed runs: stepping
    /// is persistent, so a runner that already stepped `k` rounds has
    /// `max_rounds - k` left).
    ///
    /// # Errors
    ///
    /// [`RunError::EmptySystem`] if the system has no particles, and
    /// [`RunError::RoundLimitExceeded`] if the round budget is exhausted
    /// before the algorithm completes.
    pub fn run(&mut self, max_rounds: u64) -> Result<RunStats, RunError> {
        self.run_observed(max_rounds, |_, _| {})
    }

    /// Like [`Runner::run`], but invokes `on_round` with the system and the
    /// cumulative statistics after every completed asynchronous round — the
    /// hook behind round-by-round tracing tools.
    ///
    /// # Errors
    ///
    /// Same as [`Runner::run`].
    pub fn run_observed<F>(
        &mut self,
        max_rounds: u64,
        mut on_round: F,
    ) -> Result<RunStats, RunError>
    where
        F: FnMut(&ParticleSystem<A::Memory>, &RunStats),
    {
        if self.system.is_empty() {
            return Err(RunError::EmptySystem);
        }
        while !self.is_complete() {
            if self.stats.rounds >= max_rounds {
                return Err(RunError::RoundLimitExceeded { limit: max_rounds });
            }
            self.step();
            on_round(&self.system, &self.stats);
        }
        Ok(self.finalize())
    }

    /// Brings the live list up to date: drops terminated, removed and parked
    /// particles, and merges woken particles back in ascending id order.
    fn refresh_live(&mut self) {
        if !self.live_primed {
            self.live.clear();
            let system = &self.system;
            self.live.extend(
                system
                    .ids()
                    .filter(|id| !system.particle(*id).is_terminated() && !system.is_parked(*id)),
            );
            // Queued wakes are already represented in the fresh list.
            self.system.drain_woken(&mut self.woken);
            self.live_primed = true;
            return;
        }
        let system = &self.system;
        self.live.retain(|id| {
            !system.particle(*id).is_terminated()
                && !system.is_removed(*id)
                && !system.is_parked(*id)
        });
        self.system.drain_woken(&mut self.woken);
        if self.woken.is_empty() {
            return;
        }
        self.woken.sort_unstable();
        self.woken.dedup();
        // Merge the woken ids into the ascending live list (skipping any
        // that are already present, or terminated/removed/re-parked since).
        self.merge_buf.clear();
        let mut li = 0;
        let system = &self.system;
        for &w in &self.woken {
            if system.particle(w).is_terminated() || system.is_removed(w) || system.is_parked(w) {
                continue;
            }
            while li < self.live.len() && self.live[li] < w {
                self.merge_buf.push(self.live[li]);
                li += 1;
            }
            if li < self.live.len() && self.live[li] == w {
                continue;
            }
            self.merge_buf.push(w);
        }
        self.merge_buf.extend_from_slice(&self.live[li..]);
        std::mem::swap(&mut self.live, &mut self.merge_buf);
    }

    /// Executes a single asynchronous round and updates `stats`.
    pub fn run_round(&mut self, stats: &mut RunStats) {
        self.refresh_live();
        if self.live.is_empty() {
            // Everything left is parked. The parking invariant says those
            // activations are all no-ops, but fairness demands every
            // particle be activated infinitely often: unpark everyone and
            // retry (liveness fallback — with complete wake hooks this only
            // triggers for genuinely stalled algorithms, e.g. erosion on
            // shapes with holes, which then burn their round budget exactly
            // as without parking).
            if !self.system.all_terminated() && self.system.unpark_all() > 0 {
                self.live_primed = false;
                self.refresh_live();
            }
            if self.live.is_empty() {
                return;
            }
        }
        self.order.clear();
        self.scheduler
            .fill_round_order(&self.live, stats.rounds, &mut self.order);
        debug_assert!(
            self.live.iter().all(|id| self.order.contains(id)),
            "scheduler must activate every live particle at least once per round"
        );
        for i in 0..self.order.len() {
            let id = self.order[i];
            // A particle in a final state — or parked earlier this round
            // with an unchanged view since — does nothing when activated.
            if self.system.particle(id).is_terminated()
                || self.system.is_removed(id)
                || self.system.is_parked(id)
            {
                continue;
            }
            let mut ctx = ActivationContext::new(&mut self.system, id);
            self.algorithm.activate(&mut ctx);
            let quiet = !ctx.has_mutated();
            stats.activations += 1;
            if quiet && self.system.parking_enabled() {
                self.system.park(id);
            }
        }
        stats.rounds += 1;
        if self.track_connectivity && !self.system.is_connected() {
            stats.ever_disconnected = true;
            stats.disconnected_rounds += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::InitContext;
    use pm_grid::builder::{hexagon, line};

    /// Each particle counts its activations in memory and terminates after
    /// three of them.
    struct CountToThree;
    impl Algorithm for CountToThree {
        type Memory = u8;
        fn init(&self, _ctx: &InitContext) -> u8 {
            0
        }
        fn activate(&self, ctx: &mut ActivationContext<'_, u8>) {
            *ctx.memory_mut() += 1;
            if *ctx.memory() >= 3 {
                ctx.terminate();
            }
        }
    }

    #[test]
    fn round_robin_counts_three_rounds() {
        let sys = ParticleSystem::from_shape(&line(5), &CountToThree);
        let mut runner = Runner::new(sys, CountToThree, RoundRobin);
        let stats = runner.run(10).unwrap();
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.activations, 15);
        assert_eq!(stats.final_connected, Some(true));
        assert!(!stats.ever_disconnected);
    }

    #[test]
    fn double_activation_halves_round_count() {
        let sys = ParticleSystem::from_shape(&line(5), &CountToThree);
        let mut runner = Runner::new(sys, CountToThree, DoubleActivation);
        let stats = runner.run(10).unwrap();
        assert_eq!(stats.rounds, 2);
    }

    #[test]
    fn random_scheduler_is_deterministic_given_seed() {
        let run = |seed| {
            let sys = ParticleSystem::from_shape(&hexagon(2), &CountToThree);
            let mut runner = Runner::new(sys, CountToThree, SeededRandom::new(seed));
            runner.run(10).unwrap()
        };
        assert_eq!(run(1).activations, run(1).activations);
        assert_eq!(run(1).rounds, 3);
    }

    #[test]
    fn round_limit_is_enforced() {
        /// Never terminates.
        struct Forever;
        impl Algorithm for Forever {
            type Memory = ();
            fn init(&self, _ctx: &InitContext) {}
            fn activate(&self, _ctx: &mut ActivationContext<'_, ()>) {}
        }
        let sys = ParticleSystem::from_shape(&line(3), &Forever);
        let mut runner = Runner::new(sys, Forever, RoundRobin);
        assert_eq!(
            runner.run(5),
            Err(RunError::RoundLimitExceeded { limit: 5 })
        );
    }

    #[test]
    fn empty_system_is_an_error() {
        let sys = ParticleSystem::from_shape(&pm_grid::Shape::new(), &CountToThree);
        let mut runner = Runner::new(sys, CountToThree, RoundRobin);
        assert_eq!(runner.run(5), Err(RunError::EmptySystem));
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(RoundRobin.name(), "round-robin");
        assert_eq!(ReverseRoundRobin.name(), "reverse-round-robin");
        assert_eq!(SeededRandom::default().name(), "seeded-random");
        assert_eq!(DoubleActivation.name(), "double-activation");
    }

    #[test]
    fn reverse_round_robin_reverses() {
        let ids: Vec<ParticleId> = (0..4).map(ParticleId).collect();
        let order = ReverseRoundRobin.round_order(&ids, 0);
        assert_eq!(order.first(), Some(&ParticleId(3)));
        assert_eq!(order.last(), Some(&ParticleId(0)));
    }

    #[test]
    fn identity_schedulers_do_no_reordering_work() {
        // Regression test for the per-round allocation fix: RoundRobin is the
        // identity permutation (the order *is* the live list) and
        // ReverseRoundRobin its mirror — neither may allocate beyond the
        // caller's buffer nor reorder anything else.
        let ids: Vec<ParticleId> = (0..64).map(ParticleId).collect();
        let mut out = Vec::with_capacity(128);
        RoundRobin.fill_round_order(&ids, 0, &mut out);
        assert_eq!(out, ids, "round robin must be the identity permutation");
        let ptr = out.as_ptr();
        let cap = out.capacity();
        for round in 1..50 {
            out.clear();
            RoundRobin.fill_round_order(&ids, round, &mut out);
            assert_eq!(out, ids);
            out.clear();
            ReverseRoundRobin.fill_round_order(&ids, round, &mut out);
            assert!(out.iter().rev().eq(ids.iter()));
        }
        assert_eq!(out.capacity(), cap, "buffer must not grow");
        assert_eq!(out.as_ptr(), ptr, "buffer must not be reallocated");
    }

    #[test]
    fn runner_reuses_its_round_buffers() {
        // The runner's per-round buffers must stop allocating once warm: the
        // order buffer's capacity is bounded by the largest round emitted so
        // far, independent of how many rounds run.
        let sys = ParticleSystem::from_shape(&hexagon(3), &CountToThree);
        let mut runner = Runner::new(sys, CountToThree, RoundRobin);
        let mut stats = RunStats::default();
        runner.run_round(&mut stats);
        let live_cap = runner.live.capacity();
        let order_cap = runner.order.capacity();
        for _ in 0..20 {
            runner.run_round(&mut stats);
        }
        assert_eq!(runner.live.capacity(), live_cap);
        assert_eq!(runner.order.capacity(), order_cap);
    }

    /// A left-to-right wave: a particle acts only once its west neighbour
    /// has (or it has no west neighbour); everyone else is quiescent. Under
    /// `ReverseRoundRobin` exactly one particle progresses per round, so
    /// without parking a line of `n` burns `Θ(n²)` activations and with
    /// parking only `Θ(n)`.
    #[derive(Clone, Copy)]
    struct Wave {
        quiescence: bool,
    }
    impl Algorithm for Wave {
        type Memory = bool;
        fn init(&self, _ctx: &InitContext) -> bool {
            false
        }
        fn supports_quiescence(&self) -> bool {
            self.quiescence
        }
        fn activate(&self, ctx: &mut ActivationContext<'_, bool>) {
            let west = ctx.neighbor_at_head(pm_grid::Direction::W);
            let ready = match west {
                None => true,
                Some(w) => *ctx.neighbor_memory(w),
            };
            if ready && !*ctx.memory() {
                *ctx.memory_mut() = true;
                ctx.terminate();
            }
        }
    }

    #[test]
    fn quiescence_parking_skips_waiting_particles_without_changing_rounds() {
        let n = 24;
        let run = |quiescence| {
            let algorithm = Wave { quiescence };
            let sys = ParticleSystem::from_shape(&line(n), &algorithm);
            let mut runner = Runner::new(sys, algorithm, ReverseRoundRobin);
            let stats = runner.run(10 * n as u64).unwrap();
            assert!(runner.system().all_terminated());
            stats
        };
        let parked = run(true);
        let unparked = run(false);
        // Parking skips provably-no-op activations; it cannot change what
        // the activations that do run observe, so the wave finishes in the
        // same number of rounds.
        assert_eq!(parked.rounds, unparked.rounds);
        assert_eq!(parked.rounds, n as u64);
        // Without parking every live particle is activated every round
        // (quadratic); with parking only the wavefront is.
        assert_eq!(unparked.activations, (n as u64 * (n as u64 + 1)) / 2);
        assert!(
            parked.activations <= 3 * n as u64,
            "expected Θ(n) activations with parking, got {}",
            parked.activations
        );
    }

    #[test]
    fn stalled_quiescent_algorithms_still_hit_the_round_budget() {
        /// Quiescent and never progresses: every activation is a no-op.
        struct Stuck;
        impl Algorithm for Stuck {
            type Memory = ();
            fn init(&self, _ctx: &InitContext) {}
            fn supports_quiescence(&self) -> bool {
                true
            }
            fn activate(&self, _ctx: &mut ActivationContext<'_, ()>) {}
        }
        let sys = ParticleSystem::from_shape(&line(4), &Stuck);
        let mut runner = Runner::new(sys, Stuck, RoundRobin);
        // The unpark fallback keeps rounds counting, so the budget (not an
        // infinite loop) surfaces the stall.
        assert_eq!(
            runner.run(7),
            Err(RunError::RoundLimitExceeded { limit: 7 })
        );
    }

    #[test]
    fn stepping_is_resumable_and_equals_one_shot_runs() {
        // Driving the runner round by round must produce exactly the
        // statistics of a one-shot `run`, and `run` must resume seamlessly
        // from a partially stepped runner.
        let one_shot = {
            let sys = ParticleSystem::from_shape(&hexagon(2), &CountToThree);
            let mut runner = Runner::new(sys, CountToThree, RoundRobin);
            runner.run(10).unwrap()
        };
        let sys = ParticleSystem::from_shape(&hexagon(2), &CountToThree);
        let mut runner = Runner::new(sys, CountToThree, RoundRobin);
        runner.step();
        assert_eq!(runner.stats().rounds, 1);
        assert!(!runner.is_complete());
        let resumed = runner.run(10).unwrap();
        assert_eq!(resumed, one_shot);
        assert!(runner.is_complete());
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        // Snapshot mid-run, finish the original, then restore the snapshot
        // into a fresh runner and finish that: system state, RNG stream and
        // the rebuilt live list must all survive, so the final statistics
        // agree exactly.
        let sys = ParticleSystem::from_shape(&hexagon(2), &CountToThree);
        let mut original = Runner::new(sys, CountToThree, SeededRandom::new(9));
        original.step();
        original.step();
        let snapshot = original.snapshot();
        let final_stats = original.run(50).unwrap();

        let sys = ParticleSystem::from_shape(&hexagon(2), &CountToThree);
        let mut restored = Runner::new(sys, CountToThree, SeededRandom::new(9));
        restored.restore_snapshot(&snapshot).unwrap();
        assert_eq!(restored.stats().rounds, 2);
        assert_eq!(restored.run(50).unwrap(), final_stats);
    }

    #[test]
    fn snapshot_restore_rejects_mismatches() {
        let sys = ParticleSystem::from_shape(&line(5), &CountToThree);
        let mut source = Runner::new(sys, CountToThree, SeededRandom::new(3));
        source.step();
        let snapshot = source.snapshot();
        // Different particle count: the system restore refuses.
        let sys = ParticleSystem::from_shape(&line(7), &CountToThree);
        let mut other_shape = Runner::new(sys, CountToThree, SeededRandom::new(3));
        assert!(other_shape.restore_snapshot(&snapshot).is_err());
        // Stateless scheduler handed RNG state: the scheduler restore refuses.
        let sys = ParticleSystem::from_shape(&line(5), &CountToThree);
        let mut other_scheduler = Runner::new(sys, CountToThree, RoundRobin);
        assert!(other_scheduler.restore_snapshot(&snapshot).is_err());
    }

    #[test]
    fn control_mutations_rebuild_the_live_list() {
        // Remove a particle and reset between rounds: the run must continue
        // on the perturbed configuration and still complete.
        let sys = ParticleSystem::from_shape(&line(6), &CountToThree);
        let mut runner = Runner::new(sys, CountToThree, RoundRobin);
        runner.step();
        {
            let mut control = runner.control();
            assert_eq!(control.particle_count(), 6);
            assert!(control.remove_at(pm_grid::Point::new(5, 0)));
            assert!(
                !control.remove_at(pm_grid::Point::new(5, 0)),
                "already gone"
            );
            control.reinitialize();
            assert_eq!(control.particle_count(), 5);
            assert!(control.is_connected());
            assert_eq!(control.occupied_shape().len(), 5);
        }
        let stats = runner.run(20).unwrap();
        assert!(runner.system().all_terminated());
        // One round before the reset, three after it (memories restarted).
        assert_eq!(stats.rounds, 4);
    }

    #[test]
    fn live_list_shrinks_as_particles_terminate() {
        // One particle terminates per activation round; the live list must
        // follow the system state exactly.
        struct TerminateAscending;
        impl Algorithm for TerminateAscending {
            type Memory = u8;
            fn init(&self, _ctx: &InitContext) -> u8 {
                0
            }
            fn activate(&self, ctx: &mut ActivationContext<'_, u8>) {
                *ctx.memory_mut() += 1;
                if *ctx.memory() >= 2 {
                    ctx.terminate();
                }
            }
        }
        let sys = ParticleSystem::from_shape(&line(6), &TerminateAscending);
        let mut runner = Runner::new(sys, TerminateAscending, RoundRobin);
        let stats = runner.run(10).unwrap();
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.activations, 12);
        assert!(runner.system().all_terminated());
    }
}
