//! The `metrics` verb end to end: one registry snapshot served as both
//! structured JSON and Prometheus text exposition, fed by real traffic
//! through the stdio transport.

use pm_server::{serve, Response, ServerCore};
use pm_telemetry::MetricsSnapshot;

const SPEC: &str = r#"{"Submit":{"spec":{"name":"metrics-smoke","tags":[],"generator":{"Hexagon":{"radius":3}},"algorithm":"Pipeline","scheduler":{"SeededRandom":7},"options":{"assume_outer_boundary_known":false,"reconnect":true,"track_connectivity":false,"round_budget":null,"seed":7,"occupancy":"Dense"},"perturbations":[],"faults":{"seed":0,"reset":"None","processes":[]}}}}"#;

/// Runs a request script through the stdio-style transport and parses
/// every response line.
fn serve_script(script: &str) -> Vec<Response> {
    let mut core = ServerCore::default();
    let mut out = Vec::new();
    serve(&mut core, script.as_bytes(), &mut out).expect("in-memory serve");
    std::str::from_utf8(&out)
        .expect("utf8 responses")
        .lines()
        .map(|line| serde_json::from_str(line).expect("parseable response"))
        .collect()
}

fn scrape(script: &str) -> (MetricsSnapshot, String) {
    let responses = serve_script(script);
    let scrape = responses
        .iter()
        .rev()
        .find_map(|response| match response {
            Response::Metrics {
                metrics,
                prometheus,
            } => Some((metrics.clone(), prometheus.clone())),
            _ => None,
        })
        .expect("script contained a Metrics verb");
    scrape
}

#[test]
fn metrics_verb_returns_one_consistent_snapshot_in_both_renderings() {
    let script = format!("{SPEC}\n{{\"Run\":{{\"session\":1}}}}\n\"Metrics\"\n\"Shutdown\"\n");
    let (snapshot, prometheus) = scrape(&script);

    // Both renderings come from the same snapshot, taken once.
    assert_eq!(snapshot.to_prometheus(), prometheus);

    // The verbs served so far have non-zero latency observations.
    for verb in ["submit", "run", "metrics"] {
        let series = snapshot
            .histograms
            .iter()
            .find(|h| {
                h.name == "pm_server_verb_latency_us"
                    && h.labels.iter().any(|l| l.key == "verb" && l.value == verb)
            })
            .unwrap_or_else(|| panic!("missing verb series `{verb}`"));
        // The metrics verb's own latency is observed *after* the snapshot,
        // so its count is still zero there; served verbs before it count.
        if verb != "metrics" {
            assert!(series.count > 0, "verb `{verb}` was served");
        }
    }

    // The finished election's per-phase profile was harvested.
    let wall = snapshot
        .histograms
        .iter()
        .filter(|h| h.name == "pm_election_phase_wall_us")
        .count();
    assert!(wall >= 2, "pipeline phases harvested, got {wall} series");
    let rounds: u64 = snapshot
        .counters
        .iter()
        .filter(|c| c.name == "pm_election_phase_rounds_total")
        .map(|c| c.value)
        .sum();
    assert!(rounds > 0, "harvested phases completed rounds");

    // Sweep timing fed by the Run pumping.
    let sweeps = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "pm_server_sweep_duration_us")
        .expect("sweep duration series");
    assert!(sweeps.count > 0, "run pumped at least one sweep");

    // Byte counters counted the script and its responses.
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("missing counter `{name}`"))
            .value
    };
    assert!(counter("pm_server_bytes_read_total") >= SPEC.len() as u64);
    assert!(counter("pm_server_bytes_written_total") > 0);
}

#[test]
fn snapshot_round_trips_through_json_and_prometheus_parses() {
    let script = format!("{SPEC}\n{{\"Run\":{{\"session\":1}}}}\n\"Metrics\"\n\"Shutdown\"\n");
    let (snapshot, prometheus) = scrape(&script);

    // JSON round trip through the wire encoding.
    let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    let back: MetricsSnapshot = serde_json::from_str(&json).expect("snapshot parses");
    assert_eq!(back, snapshot);

    // Prometheus text exposition: every line is a comment or
    // `name{labels} value`, histograms carry cumulative buckets capped by
    // +Inf, and each histogram's _count appears.
    let mut series_lines = 0;
    for line in prometheus.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        series_lines += 1;
        let (name_and_labels, value) = line.rsplit_once(' ').expect("`name value` shape");
        assert!(value.parse::<f64>().is_ok(), "unparseable value in {line}");
        let name = name_and_labels
            .split('{')
            .next()
            .expect("metric name before labels");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in {line}"
        );
    }
    assert!(series_lines > 0, "exposition is not empty");
    for histogram in &snapshot.histograms {
        assert!(
            prometheus.contains(&format!("{}_count", histogram.name)),
            "missing _count for {}",
            histogram.name
        );
        assert!(
            prometheus.contains("le=\"+Inf\""),
            "missing +Inf bucket for {}",
            histogram.name
        );
    }
}

#[test]
fn stats_verb_carries_the_transport_counters() {
    let script = format!("{SPEC}\n{{\"Run\":{{\"session\":1}}}}\n\"Stats\"\n\"Shutdown\"\n");
    let responses = serve_script(&script);
    let stats = responses
        .iter()
        .find_map(|response| match response {
            Response::Stats { stats } => Some(stats.clone()),
            _ => None,
        })
        .expect("script contained a Stats verb");
    assert!(stats.bytes_read >= SPEC.len() as u64);
    assert!(stats.bytes_written > 0);
    // The in-memory transport never registered a connection, so the gauge
    // sits at zero — what matters is that it is reported at all.
    assert_eq!(stats.active_connections, 0);
}

#[test]
fn metrics_stay_out_of_golden_surfaces() {
    // The deterministic protocol responses must not change when telemetry
    // records differently-sized latencies: two identical scripts produce
    // byte-identical non-Metrics responses.
    let script = format!("{SPEC}\n{{\"Run\":{{\"session\":1}}}}\n\"Shutdown\"\n");
    let first: Vec<String> = serve_script(&script)
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    let second: Vec<String> = serve_script(&script)
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    assert_eq!(first, second, "telemetry leaked into protocol payloads");
}
